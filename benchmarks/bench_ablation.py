"""Ablation -- contribution of the design choices called out in DESIGN.md.

Not a table of the paper: this bench quantifies (a) the edit-distance
discrimination stage and (b) the 10x negative-subsample ratio, the two
design decisions Sect. IV-B motivates qualitatively.
"""

from repro.eval.experiments import run_ablation
from repro.eval.reporting import format_table


def test_ablation_pipeline_configurations(benchmark, bench_dataset):
    result = benchmark.pedantic(
        run_ablation,
        kwargs={"dataset": bench_dataset, "n_splits": 3, "random_state": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Ablation: overall identification accuracy per configuration")
    rows = [(name, f"{accuracy:.3f}") for name, accuracy in result.accuracies.items()]
    print(format_table(["configuration", "overall accuracy"], rows))

    full = result.accuracies["full pipeline"]
    without_discrimination = result.accuracies["without edit-distance discrimination"]
    assert 0.0 <= without_discrimination <= 1.0
    # The discrimination stage must not hurt overall accuracy materially.
    assert full >= without_discrimination - 0.05
