"""Ablation -- contribution of the design choices called out in DESIGN.md.

Not a table of the paper: this bench quantifies (a) the edit-distance
discrimination stage, (b) the 10x negative-subsample ratio -- the two
design decisions Sect. IV-B motivates qualitatively -- and (c) the
deterministic per-fingerprint reference draw vs the paper's random draw
(accuracy must not regress; verdict stability must be perfect).
"""

from repro.eval.experiments import run_ablation, run_selection_ablation
from repro.eval.reporting import format_table


def test_ablation_pipeline_configurations(benchmark, bench_dataset):
    result = benchmark.pedantic(
        run_ablation,
        kwargs={"dataset": bench_dataset, "n_splits": 3, "random_state": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Ablation: overall identification accuracy per configuration")
    rows = [(name, f"{accuracy:.3f}") for name, accuracy in result.accuracies.items()]
    print(format_table(["configuration", "overall accuracy"], rows))

    full = result.accuracies["full pipeline"]
    without_discrimination = result.accuracies["without edit-distance discrimination"]
    assert 0.0 <= without_discrimination <= 1.0
    # The discrimination stage must not hurt overall accuracy materially.
    assert full >= without_discrimination - 0.05


def test_ablation_reference_selection(benchmark, bench_dataset):
    """Paper-style random reference draw vs the deterministic draw."""
    result = benchmark.pedantic(
        run_selection_ablation,
        kwargs={"dataset": bench_dataset, "n_splits": 3, "repeats": 5, "random_state": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Ablation: reference-selection policy (accuracy and verdict stability)")
    rows = [
        (
            mode,
            f"{result.accuracies[mode]:.3f}",
            f"{result.verdict_stability[mode]:.3f}",
            str(result.flipped[mode]),
        )
        for mode in result.accuracies
    ]
    print(format_table(["selection", "accuracy", "stability", "flipped"], rows))

    deterministic = result.accuracies["deterministic draw"]
    random_draw = result.accuracies["random draw (paper)"]
    # The deterministic draw is a reference-*selection* change, not a
    # scoring change: accuracy must stay in the same band as the paper's
    # random draw.
    assert deterministic >= random_draw - 0.05
    # The headline of the bugfix: repeated identification of the same
    # fingerprint never flips under the deterministic draw.
    assert result.verdict_stability["deterministic draw"] == 1.0
    assert result.flipped["deterministic draw"] == 0
