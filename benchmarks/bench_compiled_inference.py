"""Compiled vs interpreted forest inference on the identification workload.

The interpreted predict path walks ``_Node`` objects one sample at a time;
the compiled path (:mod:`repro.ml.compiled`) flattens every fitted tree
into contiguous arrays and descends whole batches level by level.  This
benchmark measures both on the paper's fixed-length fingerprints:

* *forest level* -- one Random Forest scoring a large fingerprint batch,
  the unit of work every per-device-type classifier performs; and
* *bank level* -- a full :class:`~repro.identification.ClassifierBank`
  scoring a ``(batch x device-types)`` matrix the way the streaming
  dispatcher now does, against the historical per-sample/per-type loop.

Headline numbers land in ``BENCH_compiled_inference.json`` so CI tracks
the speedup over time.  ``REPRO_BENCH_QUICK=1`` shrinks the batch for
smoke runs.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_QUICK, BENCH_SEED
from repro.ml.forest import RandomForestClassifier

FOREST_BATCH = 2000 if BENCH_QUICK else 6000
BANK_BATCH = 48 if BENCH_QUICK else 192
COMPILED_REPEATS = 3

# The acceptance floor for the subsystem is 5x at full scale.  Quick mode
# runs on small batches on shared CI runners, where single-shot wall-clock
# is noisy; assert only a sanity floor there and let the uploaded
# BENCH_*.json carry the real trajectory.
SPEEDUP_FLOOR = 2.0 if BENCH_QUICK else 5.0


def _timed(function, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock of ``function()`` and its result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_compiled_forest_speedup(bench_dataset, bench_report):
    registry = bench_dataset.to_registry()
    X, labels = registry.training_matrices()
    forest = RandomForestClassifier(n_estimators=10, random_state=BENCH_SEED).fit(X, labels)
    compiled = forest.compile()

    rng = np.random.default_rng(BENCH_SEED)
    batch = X[rng.integers(0, len(X), size=FOREST_BATCH)].astype(np.float64)

    interpreted_seconds, interpreted = _timed(lambda: forest.predict_proba(batch))
    compiled_seconds, vectorized = _timed(
        lambda: compiled.predict_proba(batch), repeats=COMPILED_REPEATS
    )
    speedup = interpreted_seconds / compiled_seconds

    print()
    print("Compiled forest inference (single multiclass forest)")
    print(f"  batch size                     {len(batch)}")
    print(f"  trees / total nodes            {compiled.n_estimators} / {compiled.node_count}")
    print(f"  interpreted predict_proba      {interpreted_seconds * 1000:.1f} ms")
    print(f"  compiled predict_proba         {compiled_seconds * 1000:.2f} ms")
    print(f"  speedup                        {speedup:.1f}x")

    # The compiled path must be a pure optimisation: identical outputs.
    assert np.array_equal(interpreted, vectorized)
    assert speedup >= SPEEDUP_FLOOR

    bench_report(
        "compiled_inference",
        {
            "forest": {
                "batch_size": int(len(batch)),
                "n_estimators": compiled.n_estimators,
                "node_count": compiled.node_count,
                "interpreted_seconds": interpreted_seconds,
                "compiled_seconds": compiled_seconds,
                "speedup": speedup,
            }
        },
    )


def test_bank_batch_scoring_speedup(bench_identifier, bench_dataset, bench_report):
    bank = bench_identifier.bank
    fingerprints = bench_dataset.fingerprints
    rng = np.random.default_rng(BENCH_SEED + 1)
    chosen = [fingerprints[int(i)] for i in rng.integers(0, len(fingerprints), size=BANK_BATCH)]
    matrix = np.stack(
        [fingerprint.to_fixed_vector(bank.fixed_packet_count) for fingerprint in chosen]
    ).astype(np.float64)

    def legacy_nested_loop():
        # The pre-refactor shape: per sample, per type, one interpreted
        # forest call on a single row.
        verdicts = []
        for row in matrix:
            sample = np.atleast_2d(row)
            for device_type in bank.device_types:
                classifier = bank.classifier_of(device_type)
                verdicts.append(classifier.model.predict_proba(sample))
        return verdicts

    legacy_seconds, _ = _timed(legacy_nested_loop)
    batched_seconds, scores = _timed(lambda: bank.score_batch(matrix), repeats=COMPILED_REPEATS)
    speedup = legacy_seconds / batched_seconds

    print()
    print("Classifier bank batch scoring (batch x device-types)")
    print(f"  batch size                     {len(matrix)}")
    print(f"  device-types                   {len(bank.device_types)}")
    print(f"  legacy nested loop             {legacy_seconds * 1000:.1f} ms")
    print(f"  compiled batch scoring         {batched_seconds * 1000:.2f} ms")
    print(f"  speedup                        {speedup:.1f}x")

    assert scores.positive.shape == (len(matrix), len(bank.device_types))
    assert speedup >= SPEEDUP_FLOOR

    bench_report(
        "bank_batch_scoring",
        {
            "bank": {
                "batch_size": int(len(matrix)),
                "device_types": len(bank.device_types),
                "legacy_seconds": legacy_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
            }
        },
    )
