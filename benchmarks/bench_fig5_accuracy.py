"""Fig. 5 -- ratio of correct identification for the 27 device-types.

Paper result: accuracy >= 0.95 for 17 device-types (most of them 1.0),
around 0.5 for the 10 mutually confusable devices, global accuracy 0.815.
"""

from repro.devices.catalog import TABLE_III_DEVICES
from repro.eval.reporting import format_fig5


def test_fig5_identification_accuracy(benchmark, bench_dataset, evaluation_cache):
    evaluation = benchmark.pedantic(
        evaluation_cache.get, args=(bench_dataset,), rounds=1, iterations=1
    )

    per_type = evaluation.per_type_accuracy
    print()
    print("Fig. 5: ratio of correct identification per device-type")
    print(format_fig5(per_type, evaluation.overall_accuracy))
    print(
        f"fingerprints accepted by >1 classifier (needed discrimination): "
        f"{evaluation.discrimination_fraction:.0%}"
    )

    confusable = [per_type[name] for name in TABLE_III_DEVICES]
    distinctive = [per_type[name] for name in per_type if name not in TABLE_III_DEVICES]

    # Shape checks mirroring the paper's headline claims.
    assert evaluation.overall_accuracy > 0.6
    assert sum(accuracy >= 0.8 for accuracy in distinctive) >= len(distinctive) * 0.7
    assert sum(distinctive) / len(distinctive) > sum(confusable) / len(confusable)
