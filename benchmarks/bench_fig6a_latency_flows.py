"""Fig. 6a -- latency against the number of concurrent flows.

Paper result: between 20 and 150 concurrent flows the latency of both
monitored device pairs grows only marginally, and the filtering and
no-filtering curves stay on top of each other.
"""

from repro.eval.experiments import run_latency_vs_flows
from repro.eval.reporting import format_series


def test_fig6a_latency_vs_concurrent_flows(benchmark):
    series = benchmark.pedantic(
        run_latency_vs_flows,
        kwargs={"flow_counts": tuple(range(20, 160, 10)), "iterations": 15, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Fig. 6a: latency (ms) vs number of concurrent flows")
    print(format_series(series.x_label, series.x_values, series.series, unit="ms"))

    with_filtering = series.series_of("D1-D2 w/ filtering")
    without_filtering = series.series_of("D1-D2 w/o filtering")

    # The increase over the whole sweep stays small (insignificant for UX).
    assert max(with_filtering) - min(with_filtering) < 8.0
    # Filtering and no-filtering curves stay close at every point.
    for filtered, plain in zip(with_filtering, without_filtering):
        assert abs(filtered - plain) < 6.0
