"""Fig. 6b -- Security Gateway CPU utilisation against concurrent flows.

Paper result: CPU utilisation climbs mildly (roughly from ~37 % to ~48 %)
as the number of concurrent flows grows to 150, with the filtering curve
sitting only marginally above the no-filtering curve.
"""

from repro.eval.experiments import run_cpu_vs_flows
from repro.eval.reporting import format_series


def test_fig6b_cpu_vs_concurrent_flows(benchmark):
    series = benchmark.pedantic(
        run_cpu_vs_flows,
        kwargs={"flow_counts": tuple(range(0, 160, 10)), "samples_per_point": 5, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Fig. 6b: CPU utilisation (%) vs number of concurrent flows")
    print(format_series(series.x_label, series.x_values, series.series, unit="%"))

    with_filtering = series.series_of("With Filtering")
    without_filtering = series.series_of("Without Filtering")

    assert 33.0 < with_filtering[0] < 45.0  # idle band of Fig. 6b
    assert with_filtering[-1] < 60.0  # far from saturating the Raspberry Pi
    assert with_filtering[-1] > with_filtering[0]  # grows with load
    # Filtering adds well under a couple of percentage points of CPU.
    gaps = [f - p for f, p in zip(with_filtering, without_filtering)]
    assert max(gaps) < 3.0
