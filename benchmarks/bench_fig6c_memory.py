"""Fig. 6c -- Security Gateway memory consumption against enforcement rules.

Paper result: memory grows roughly linearly with the number of cached
enforcement rules when filtering is enabled (reaching on the order of
100 MB at 20 000 rules) while the no-filtering memory stays flat.
"""

import numpy as np

from repro.eval.experiments import run_memory_vs_rules
from repro.eval.reporting import format_series


def test_fig6c_memory_vs_enforcement_rules(benchmark):
    rule_counts = (0, 2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000)
    series = benchmark.pedantic(
        run_memory_vs_rules,
        kwargs={"rule_counts": rule_counts, "samples_per_point": 5, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Fig. 6c: memory consumption (MB) vs number of enforcement rules")
    print(format_series(series.x_label, series.x_values, series.series, unit="MB"))

    with_filtering = np.array(series.series_of("With Filtering"))
    without_filtering = np.array(series.series_of("Without Filtering"))

    # Linear-ish growth with filtering; flat without.
    assert with_filtering[-1] - with_filtering[0] > 25.0
    assert with_filtering[-1] < 150.0
    assert abs(without_filtering[-1] - without_filtering[0]) < 10.0
    # Monotone non-decreasing trend (within measurement noise).
    increments = np.diff(with_filtering)
    assert (increments > -3.0).all()
