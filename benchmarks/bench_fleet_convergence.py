"""Fleet convergence: one push propagating to N serving gateways.

An N-member fleet serves model v1; the trainer pushes v2 at a fresh
epoch and the measured path is everything ``FleetCoordinator.sync_all``
does per member: load the bundle, hot-swap the identifier between
batches, adopt the epoch into the lifecycle coordinator (clearing every
registered cache), repoint the security service and write the ledger
apply record.

Checked properties:

* before the sync every member lags the watermark by exactly one epoch;
  after it the :class:`~repro.fleet.FleetHealthView` reports the fleet
  converged (zero laggards);
* post-convergence the members *agree*: the same traffic replayed
  through every member yields identical per-device verdict maps (the
  determinism guarantee doing fleet duty);
* a replayed push applies nowhere (idempotent no-op).

The wall-clock swap latency is reported as the headline of the
``BENCH_fleet_convergence.json`` trajectory, not asserted.
"""

from __future__ import annotations

import time

from repro.api import GatewayConfig
from repro.datasets.builder import generate_fingerprint_dataset
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.fleet import FleetCoordinator, FleetHealthView
from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.model_store import save_identifier
from repro.streaming import SimulatedSource

from benchmarks.conftest import BENCH_QUICK, BENCH_SEED, make_section_reporter

KNOWN_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch"]
LATE_TYPE = "TP-LinkPlugHS110"
FLEET_SIZE = 3 if BENCH_QUICK else 8
TRAINING_RUNS = 6

#: The benchmarks in this file merge into BENCH_fleet_convergence.json.
_report = make_section_reporter("fleet_convergence")


def make_source() -> SimulatedSource:
    simulator = SetupTrafficSimulator(seed=BENCH_SEED + 1)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(KNOWN_TYPES + [LATE_TYPE])
    ]
    return SimulatedSource(traces=traces)


def build_fleet(tmp_path):
    """A served fleet at epoch 1 plus a v2 bundle staged at epoch 2."""
    dataset_v1 = generate_fingerprint_dataset(
        runs_per_type=TRAINING_RUNS, device_names=KNOWN_TYPES, seed=BENCH_SEED
    )
    v1 = DeviceTypeIdentifier.train(dataset_v1.to_registry(), random_state=BENCH_SEED)
    bundle_v1 = tmp_path / "model-v1.json"
    save_identifier(bundle_v1, v1, epoch=1)

    dataset_v2 = generate_fingerprint_dataset(
        runs_per_type=TRAINING_RUNS,
        device_names=KNOWN_TYPES + [LATE_TYPE],
        seed=BENCH_SEED,
    )
    v2 = DeviceTypeIdentifier.train(dataset_v2.to_registry(), random_state=BENCH_SEED)
    v2.revision = v1.revision + 1
    bundle_v2 = tmp_path / "model-v2.json"
    save_identifier(bundle_v2, v2, epoch=2)

    fleet = FleetCoordinator()
    fleet.push(bundle_v1, note="initial rollout")
    template = GatewayConfig(max_batch=4, shards=4)
    handles = [
        fleet.spawn_gateway(f"gw-{index}", template) for index in range(FLEET_SIZE)
    ]
    for handle in handles:
        handle.run_until_idle(make_source())
    return fleet, handles, bundle_v2


def verdict_map(handle) -> dict:
    return {
        str(record.mac): record.device_type
        for record in handle.gateway.devices.values()
    }


def test_fleet_convergence(benchmark, bench_report, tmp_path):
    fleet, handles, bundle_v2 = build_fleet(tmp_path)
    view = FleetHealthView(fleet)

    before = view.collect()
    assert before.converged and before.target_epoch == 1

    fleet.push(bundle_v2, note="adds " + LATE_TYPE)
    staged = view.collect()
    assert not staged.converged
    assert staged.max_lag == 1 and len(staged.laggards) == FLEET_SIZE

    start = time.perf_counter()
    applied = benchmark.pedantic(fleet.sync_all, rounds=1, iterations=1)
    sync_seconds = time.perf_counter() - start

    assert applied == {f"gw-{index}": 1 for index in range(FLEET_SIZE)}
    after = view.collect()
    assert after.converged and after.target_epoch == 2 and after.max_lag == 0

    # Replayed push: absorbed at the channel, applies nowhere.
    fleet.push(bundle_v2)
    assert fleet.duplicate_pushes == 1
    assert all(count == 0 for count in fleet.sync_all().values())

    # Post-convergence agreement: identical traffic -> identical verdicts.
    for handle in handles:
        handle.run_until_idle(make_source())
    maps = [verdict_map(handle) for handle in handles]
    assert all(current == maps[0] for current in maps)
    assert LATE_TYPE in maps[0].values()  # v2 actually took effect

    print()
    print("Fleet convergence (push -> every member serving the new epoch)")
    print(f"  fleet size                     {FLEET_SIZE} gateways")
    print(f"  pre-sync lag                   {staged.max_lag} epoch on every member")
    print(f"  sync_all wall time             {sync_seconds * 1000:.1f} ms "
          f"({sync_seconds / FLEET_SIZE * 1000:.1f} ms/gateway)")
    print(f"  post-sync                      epoch {after.target_epoch}, "
          f"0 laggards, verdict maps identical")

    _report(
        bench_report,
        "convergence",
        {
            "fleet_size": FLEET_SIZE,
            "sync_seconds": sync_seconds,
            "sync_seconds_per_gateway": sync_seconds / FLEET_SIZE,
            "pre_sync_max_lag": staged.max_lag,
            "post_sync_max_lag": after.max_lag,
            "duplicate_pushes_absorbed": fleet.duplicate_pushes,
            "verdict_maps_identical": True,
        },
        cache_epoch=after.target_epoch,
    )
