"""Fleet re-identification throughput after a runtime type registration.

An N-device fleet of one unknown model is quarantined under strict
isolation; the operator then registers the missing device-type through the
:class:`~repro.identification.lifecycle.LifecycleCoordinator`.  The
measured path is everything `learn_device_type` does: incremental
training of the new classifier, epoch bump + cache invalidation, batch
re-identification of the quarantined fleet through ``identify_many``
(compiled forests), and the enforcement-sink pass that replaces each
device's strict gateway rule.

Checked properties:

* every quarantined device is re-identified to the learned type and its
  gateway rule upgraded away from strict;
* the dispatcher cache registered with the coordinator is invalidated.

The batched-vs-per-fingerprint timing is *reported* (headline of the
``BENCH_relearn.json`` trajectory) but not asserted: a single-round
wall-clock comparison on a shared CI runner is noise-prone, and the batch
speedup itself is already gated by ``bench_compiled_inference.py``.
"""

from __future__ import annotations

import time

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.features.fingerprint import Fingerprint
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.autopilot import LifecycleAutopilot, TriggerPolicy
from repro.identification.identifier import (
    DeviceTypeIdentifier,
    IdentificationResult,
    UNKNOWN_DEVICE_TYPE,
)
from repro.identification.lifecycle import LifecycleCoordinator
from repro.net.addresses import MACAddress
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService
from repro.streaming import GatewayEnforcementSink, IdentifiedDevice

from benchmarks.conftest import BENCH_QUICK, BENCH_SEED, make_section_reporter

KNOWN_TYPES = ("Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110", "D-LinkCam")
LEARNED_TYPE = "HomeMaticPlug"
FLEET_SIZE = 10 if BENCH_QUICK else 60
TRAINING_RUNS = 8
#: Unknown singleton devices mixed into the quarantine for the autopilot
#: benchmark: cluster detection must pick the real cluster out of noise.
NOISE_DEVICES = 4 if BENCH_QUICK else 16

#: The benchmarks in this file merge their sections into BENCH_relearn.json.
_report = make_section_reporter("relearn")


def build_quarantined_stack():
    """An identifier that does not know the fleet's model, fleet quarantined."""
    from repro.datasets.builder import generate_fingerprint_dataset

    dataset = generate_fingerprint_dataset(
        runs_per_type=TRAINING_RUNS, device_names=list(KNOWN_TYPES), seed=BENCH_SEED
    )
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=BENCH_SEED)

    service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(security_service=service)
    coordinator = LifecycleCoordinator(identifier=identifier)
    coordinator.sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, lifecycle=coordinator
    )
    cache = coordinator.make_cache(capacity=256)

    simulator = SetupTrafficSimulator(seed=BENCH_SEED + 1)
    profile = DEVICE_CATALOG[LEARNED_TYPE]
    for trace in simulator.simulate_many(profile, FLEET_SIZE):
        coordinator.quarantine.record(
            trace.device_mac,
            Fingerprint.from_packets(trace.packets),
            completion_reason="idle",
        )
    training = [
        Fingerprint.from_packets(trace.packets, device_type=LEARNED_TYPE)
        for trace in simulator.simulate_many(profile, TRAINING_RUNS)
    ]
    return identifier, gateway, coordinator, cache, training


def test_relearn_throughput(benchmark, bench_report):
    identifier, gateway, coordinator, cache, training = build_quarantined_stack()
    fleet = coordinator.quarantine.devices()
    assert len(fleet) == FLEET_SIZE

    # The fleet's model really is unknown to the pre-learning bank.
    probe = identifier.identify(fleet[0].fingerprint)
    assert probe.is_new_device_type
    cache.put(b"pre-learning", probe)  # must be unreachable afterwards

    report = benchmark.pedantic(
        coordinator.learn_device_type,
        args=(LEARNED_TYPE, training),
        kwargs={"snapshot": False},
        rounds=1,
        iterations=1,
    )

    # Baseline: the same quarantined fingerprints identified one call at
    # a time -- the shape a consumer without the lifecycle batch path had.
    start = time.perf_counter()
    baseline = [identifier.identify(entry.fingerprint) for entry in fleet]
    baseline_seconds = time.perf_counter() - start

    print()
    print("Fleet re-identification after runtime type registration")
    print(f"  quarantined fleet              {report.quarantined} devices")
    print(f"  upgraded                       {len(report.upgraded)}")
    print(f"  still unknown                  {len(report.still_unknown)}")
    print(f"  re-identification (batched)    {report.identify_seconds * 1000:.1f} ms "
          f"({report.devices_per_second:,.0f} devices/s)")
    print(f"  re-identification (per-fp)     {baseline_seconds * 1000:.1f} ms")
    print(f"  cache epoch                    {report.generation} "
          f"(stale rejections {cache.stale_rejections})")

    # Every quarantined device was re-identified and its rule upgraded.
    assert len(report.upgraded) == FLEET_SIZE
    assert not report.still_unknown
    assert len(coordinator.quarantine) == 0
    for entry in fleet:
        rule = gateway.rule_cache.lookup(entry.mac)
        assert rule is not None
        assert rule.isolation_level is not IsolationLevel.STRICT
        assert gateway.device_record(entry.mac).device_type == LEARNED_TYPE

    # The verdicts agree with the one-at-a-time baseline.
    agreements = sum(1 for result in baseline if result.device_type == LEARNED_TYPE)
    assert agreements >= int(0.9 * FLEET_SIZE)

    # Timing sanity only; the batched/sequential ratio is trajectory data.
    assert report.identify_seconds > 0

    # The pre-learning cache entry is unreachable (epoch + clear).
    assert cache.get(b"pre-learning") is None

    _report(
        bench_report,
        "relearn",
        {
            "fleet_size": FLEET_SIZE,
            "upgraded": len(report.upgraded),
            "still_unknown": len(report.still_unknown),
            "identify_seconds_batched": report.identify_seconds,
            "identify_seconds_per_fingerprint_baseline": baseline_seconds,
            "devices_per_second": report.devices_per_second,
            "epoch_generation": report.generation,
        },
    )


# --------------------------------------------------------------------- #
# The autopilot trigger path.
# --------------------------------------------------------------------- #
def build_autopilot_stack():
    """A cluster of identical unseen-model devices buried in noise.

    The measured path is everything ``LifecycleAutopilot.poll`` does:
    group the quarantine log into same-model clusters, apply the trigger
    policy, train the provisional classifier, bump the epoch, batch
    re-identify the fleet and replace every upgraded strict rule.
    """
    from repro.datasets.builder import generate_fingerprint_dataset

    dataset = generate_fingerprint_dataset(
        runs_per_type=TRAINING_RUNS, device_names=list(KNOWN_TYPES), seed=BENCH_SEED
    )
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=BENCH_SEED)

    service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(security_service=service)
    coordinator = LifecycleCoordinator(identifier=identifier)
    sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, lifecycle=coordinator
    )
    coordinator.sink = sink
    gateway.attach_lifecycle(coordinator)
    autopilot = LifecycleAutopilot(
        coordinator,
        policy=TriggerPolicy(min_cluster_size=FLEET_SIZE),
        security_service=service,
    )

    def quarantine_through_sink(mac, fingerprint):
        sink(
            IdentifiedDevice(
                mac=mac,
                fingerprint=fingerprint,
                result=IdentificationResult(
                    device_type=UNKNOWN_DEVICE_TYPE, matched_types=()
                ),
                completion_reason="idle",
            )
        )

    profile = DEVICE_CATALOG[LEARNED_TYPE]
    cluster_macs = []
    for index in range(FLEET_SIZE):
        # Same seed, distinct MACs: one model performing one identical
        # setup procedure -- the sharing cluster detection keys on.
        mac = MACAddress.from_string(f"02:be:7c:00:{index // 256:02x}:{index % 256:02x}")
        trace = SetupTrafficSimulator(seed=BENCH_SEED + 1).simulate(profile, device_mac=mac)
        quarantine_through_sink(mac, Fingerprint.from_packets(trace.packets))
        cluster_macs.append(mac)
    noise_simulator = SetupTrafficSimulator(seed=BENCH_SEED + 2)
    for index in range(NOISE_DEVICES):
        trace = noise_simulator.simulate(DEVICE_CATALOG["SmarterCoffee"])
        quarantine_through_sink(trace.device_mac, Fingerprint.from_packets(trace.packets))
    return gateway, coordinator, autopilot, cluster_macs


def test_autopilot_trigger_throughput(benchmark, bench_report):
    gateway, coordinator, autopilot, cluster_macs = build_autopilot_stack()
    assert len(coordinator.quarantine) == FLEET_SIZE + NOISE_DEVICES

    start = time.perf_counter()
    decisions = benchmark.pedantic(
        autopilot.poll, kwargs={"now": 1_000.0}, rounds=1, iterations=1
    )
    poll_seconds = time.perf_counter() - start

    assert [decision.action for decision in decisions] == ["learned"]
    report = decisions[0].report
    assert len(report.upgraded) == FLEET_SIZE
    # The noise singletons never reach the threshold and stay parked.
    assert len(coordinator.quarantine) >= NOISE_DEVICES - len(report.still_unknown)
    for mac in cluster_macs:
        rule = gateway.rule_cache.lookup(mac)
        assert rule is not None
        assert rule.isolation_level is not IsolationLevel.STRICT

    print()
    print("Autopilot trigger path (cluster detection -> learn -> enforce)")
    print(f"  quarantined                    {FLEET_SIZE + NOISE_DEVICES} devices "
          f"({FLEET_SIZE} clustered + {NOISE_DEVICES} noise)")
    print(f"  poll wall time                 {poll_seconds * 1000:.1f} ms")
    print(f"  re-identification              {report.identify_seconds * 1000:.1f} ms "
          f"({report.devices_per_second:,.0f} devices/s)")
    print(f"  upgraded                       {len(report.upgraded)} "
          f"(provisional label {report.device_type!r})")

    _report(
        bench_report,
        "autopilot",
        {
            "cluster_size": FLEET_SIZE,
            "noise_devices": NOISE_DEVICES,
            "poll_seconds": poll_seconds,
            "identify_seconds": report.identify_seconds,
            "devices_per_second": report.devices_per_second,
            "upgraded": len(report.upgraded),
            "triggers_fired": autopilot.triggers_fired,
        },
    )


# --------------------------------------------------------------------- #
# Bit-reproducible relearn: two gateways, one bundle, identical verdicts.
# --------------------------------------------------------------------- #
def test_relearn_is_bit_reproducible(benchmark, bench_report):
    """Two identical stacks learning the same type agree bit-for-bit.

    The epoch-aware multi-gateway story requires the fleet
    re-identification inside ``learn_device_type`` to be reproducible:
    the deterministic reference draw (salted with the bumped identifier
    revision) makes two gateways that learned the same type produce
    identical upgraded/still-unknown partitions and identical
    per-device verdict provenance.  Timing is recorded to confirm the
    deterministic draw adds no relearn-path regression.
    """
    first_stack = build_quarantined_stack()
    second_stack = build_quarantined_stack()

    report_one = benchmark.pedantic(
        first_stack[2].learn_device_type,
        args=(LEARNED_TYPE, first_stack[4]),
        kwargs={"snapshot": False},
        rounds=1,
        iterations=1,
    )
    report_two = second_stack[2].learn_device_type(
        LEARNED_TYPE, second_stack[4], snapshot=False
    )

    assert report_one.upgraded == report_two.upgraded
    assert report_one.still_unknown == report_two.still_unknown
    assert report_one.generation == report_two.generation

    # The verdicts themselves (not just the partition) are identical,
    # including the discrimination provenance.
    probes = list(first_stack[4])[:8]
    one = first_stack[0].identify_many(probes)
    two = second_stack[0].identify_many(probes)
    for left, right in zip(one, two):
        assert left.device_type == right.device_type
        assert left.discrimination_scores == right.discrimination_scores

    print()
    print("Relearn reproducibility across two identical gateways")
    print(f"  upgraded                       {len(report_one.upgraded)} (identical partitions)")
    print(f"  re-identification (gateway 1)  {report_one.identify_seconds * 1000:.1f} ms")
    print(f"  re-identification (gateway 2)  {report_two.identify_seconds * 1000:.1f} ms")

    _report(
        bench_report,
        "deterministic_relearn",
        {
            "fleet_size": FLEET_SIZE,
            "upgraded": len(report_one.upgraded),
            "partitions_identical": True,
            "identify_seconds_first": report_one.identify_seconds,
            "identify_seconds_second": report_two.identify_seconds,
        },
    )
