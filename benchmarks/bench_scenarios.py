"""Hostile-campaign wall time: the cost of running the scenario gate.

Each stock campaign in :mod:`repro.scenarios` is a full ``build_gateway``
stack under attack, so its runtime bounds how often the scenario-smoke
gate can run in CI.  This benchmark times one seeded pass of every
campaign (quick mode trims the device population, not the scenario
shape) and reports the suite wall time as the headline of
``BENCH_scenarios.json``.

Checked properties (the perf run doubles as a contract run):

* every campaign's reconciliation flags hold -- timing pressure must not
  be bought by skipping the evidence accounting;
* a second pass of one campaign at the same seed is byte-identical over
  the artifact digests (the determinism contract, measured hot).

Wall-clock numbers are reported, not asserted.
"""

from __future__ import annotations

import time

from repro.scenarios import (
    BurstOverload,
    DhcpChurnCampaign,
    FirmwareDriftCampaign,
    MacRandomizationStorm,
    MimicryCampaign,
    artifact_digests,
)

from benchmarks.conftest import BENCH_QUICK, BENCH_SEED, make_section_reporter

KNOBS = (
    dict(trained_types=("Aria", "HueBridge", "EdnetCam"), runs_per_type=4)
    if BENCH_QUICK
    else dict(runs_per_type=8)
)

#: The benchmarks in this file merge into BENCH_scenarios.json.
_report = make_section_reporter("scenarios")


def make_campaigns():
    return [
        MimicryCampaign(**KNOBS),
        MacRandomizationStorm(joins=5 if BENCH_QUICK else 8, **KNOBS),
        FirmwareDriftCampaign(
            fleet_size=2 if BENCH_QUICK else 3,
            retype_device="HueBridge",
            **KNOBS,
        ),
        DhcpChurnCampaign(**KNOBS),
        BurstOverload(devices=10 if BENCH_QUICK else 24, **KNOBS),
    ]


def test_campaign_wall_time(benchmark, bench_report, tmp_path):
    campaigns = make_campaigns()

    timings: dict[str, float] = {}
    reports = {}

    def run_suite():
        for campaign in campaigns:
            start = time.perf_counter()
            report = campaign.run(seed=BENCH_SEED, out_dir=tmp_path / "suite")
            timings[campaign.name] = time.perf_counter() - start
            reports[campaign.name] = report

    suite_start = time.perf_counter()
    benchmark.pedantic(run_suite, rounds=1, iterations=1)
    suite_seconds = time.perf_counter() - suite_start

    # The perf pass is also a contract pass: accounting must reconcile.
    for name, report in reports.items():
        for flag, value in report.metrics["reconciliation"].items():
            assert value is True, f"{name}: reconciliation flag {flag} failed"

    # Determinism, measured hot: rerun one campaign at the same seed.
    rerun_start = time.perf_counter()
    rerun = DhcpChurnCampaign(**KNOBS).run(seed=BENCH_SEED, out_dir=tmp_path / "rerun")
    rerun_seconds = time.perf_counter() - rerun_start
    assert artifact_digests(rerun.run_dir) == artifact_digests(
        reports["dhcp-churn"].run_dir
    )

    print()
    print("Hostile-campaign suite (one seeded pass per scenario)")
    for name, seconds in sorted(timings.items()):
        print(f"  {name:28s} {seconds * 1000:8.1f} ms")
    print(f"  {'suite total':28s} {suite_seconds * 1000:8.1f} ms")
    print(f"  {'determinism rerun':28s} {rerun_seconds * 1000:8.1f} ms")

    _report(
        bench_report,
        "campaigns",
        {
            "suite_seconds": round(suite_seconds, 4),
            "per_campaign_seconds": {
                name: round(seconds, 4) for name, seconds in timings.items()
            },
            "rerun_seconds": round(rerun_seconds, 4),
            "quick_mode": BENCH_QUICK,
        },
    )
