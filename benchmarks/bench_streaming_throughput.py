"""Streaming pipeline throughput: online identification of a device fleet.

A fleet of devices joins the network at staggered times; a third of them
are duplicate models (identical setup behaviour, different MACs), the
workload the dispatcher's LRU result cache targets.  The whole stream is
pushed through source -> sharded assembler -> batch dispatcher and three
properties are checked:

* the stream is identified end to end (every device gets a verdict and the
  verdicts match the ground-truth profiles almost everywhere);
* the result cache hits on the duplicate models (>0% hit rate);
* cached batch dispatch spends less time in identification than
  identifying the same fingerprints one call at a time with no cache.
  (The saving comes from the cache hits skipping the classifier bank;
  batching itself shapes latency and overload behaviour, not CPU.)
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.devices.catalog import profile_of
from repro.devices.simulator import SetupTrafficSimulator
from repro.distance.discrimination import (
    DETERMINISTIC_SELECTION,
    RANDOM_SELECTION,
    EditDistanceDiscriminator,
)
from repro.net.addresses import MACAddress
from repro.obs import Observability, VerdictLedger, replay_ledger
from repro.streaming import (
    BatchDispatcher,
    IdentificationCache,
    IterableSource,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
    replay_trace,
)

from benchmarks.conftest import BENCH_QUICK, make_section_reporter

STREAM_TYPES = ("Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110", "D-LinkCam")
FRESH_DEVICES = 18
REPLAYS_PER_DUPLICATED_DEVICE = 2
DUPLICATED_DEVICES = 6

#: The sustained stream for the columnar-datapath comparison: every fresh
#: device gets replayed many times, so the batched walk sees long stretches
#: of steady-state traffic (the regime the refactor targets) instead of the
#: short mostly-cold stream above.
#: Quick mode keeps enough replays that the batched-vs-scalar speedup is
#: near its sustained-stream asymptote -- the CI regression guard compares
#: the quick-mode ratio against the committed full-mode one.
SUSTAINED_REPLAYS = 12 if BENCH_QUICK else 60
COLUMNAR_BATCH_SIZE = 2048

#: The benchmarks in this file merge their sections into
#: BENCH_streaming_throughput.json.
_report = make_section_reporter("streaming_throughput")


def build_stream(
    seed: int = 7,
    duplicated: int = DUPLICATED_DEVICES,
    replays: int = REPLAYS_PER_DUPLICATED_DEVICE,
) -> SimulatedSource:
    """A fleet: fresh devices first, duplicate models joining later."""
    simulator = SetupTrafficSimulator(seed=seed)
    traces = []
    for index in range(FRESH_DEVICES):
        profile = profile_of(STREAM_TYPES[index % len(STREAM_TYPES)])
        traces.append(simulator.simulate(profile, start_time=index * 2.0))
    fleet_end = max(packet.timestamp for trace in traces for packet in trace.packets)
    clone = 0
    for trace in traces[:duplicated]:
        for _ in range(replays):
            mac = MACAddress.from_string(f"02:00:5e:00:{clone >> 8:02x}:{clone & 0xFF:02x}")
            # Clones join one idle-timeout after the fleet has gone quiet, so
            # the original fingerprints are already assembled and cached.
            traces.append(replay_trace(trace, mac, fleet_end + 30.0 + clone * 2.0))
            clone += 1
    return SimulatedSource(traces=traces)


def run_stream(identifier, source: SimulatedSource, observability=None):
    dispatcher = BatchDispatcher(
        identifier,
        max_batch=8,
        queue_capacity=64,
        cache=IdentificationCache(capacity=256),
    )
    pipeline = StreamingPipeline(
        source=source,
        dispatcher=dispatcher,
        assembler=ShardedFingerprintAssembler(shards=8),
        observability=observability,
    )
    identified = []
    pipeline.on_identified = identified.append
    stats = pipeline.run()
    return stats, identified


def test_streaming_throughput(benchmark, bench_identifier, bench_report):
    source = build_stream()
    total_devices = len(source.traces)

    stats, identified = benchmark.pedantic(
        run_stream,
        kwargs={"identifier": bench_identifier, "source": source},
        rounds=1,
        iterations=1,
    )

    # Baseline: the same fingerprints identified one call at a time, no
    # batching, no cache -- the shape every consumer used before this
    # subsystem existed.
    start = time.perf_counter()
    baseline_results = [bench_identifier.identify(item.fingerprint) for item in identified]
    baseline_seconds = time.perf_counter() - start

    print()
    print("Streaming identification throughput")
    print(f"  devices on the wire            {total_devices}")
    print(f"  packets streamed               {stats.packets}")
    print(f"  fingerprints assembled         {stats.fingerprints}")
    print(f"  throughput                     {stats.packets_per_second:,.0f} packets/s")
    print(f"  assembly time                  {stats.assemble_seconds * 1000:.1f} ms")
    print(f"  identification time (batched)  {stats.identify_seconds * 1000:.1f} ms")
    print(f"  identification time (per-fp)   {baseline_seconds * 1000:.1f} ms")
    print(f"  batches                        {stats.dispatcher.batches} "
          f"(mean size {stats.dispatcher.mean_batch_size:.1f})")
    print(f"  cache hit rate                 {stats.cache_hit_rate:.0%}")

    # Every device on the wire got a verdict, and the stream's verdicts
    # agree with the one-at-a-time baseline on the same fingerprints.
    assert stats.identified >= total_devices
    agreements = sum(
        1
        for item, base in zip(identified, baseline_results)
        if item.result.device_type == base.device_type
    )
    assert agreements >= int(0.9 * len(identified))

    # The duplicate models hit the result cache.
    assert stats.cache_hits > 0
    assert stats.cache_hit_rate > 0.0

    # Batch dispatch + caching beats per-fingerprint identification on the
    # very same stream (cache hits skip the classifier bank entirely).
    assert stats.identify_seconds < baseline_seconds

    # Throughput is sane: the pipeline keeps up with thousands of packets
    # per second even with identification inline.
    assert stats.packets_per_second > 500

    _report(
        bench_report,
        "stream",
        {
            "devices": total_devices,
            "packets": stats.packets,
            "fingerprints": stats.fingerprints,
            "packets_per_second": stats.packets_per_second,
            "assemble_seconds": stats.assemble_seconds,
            "identify_seconds_batched": stats.identify_seconds,
            "identify_seconds_per_fingerprint_baseline": baseline_seconds,
            "batches": stats.dispatcher.batches,
            "mean_batch_size": stats.dispatcher.mean_batch_size,
            "cache_hit_rate": stats.cache_hit_rate,
        },
        identifier=bench_identifier,
    )


# --------------------------------------------------------------------- #
# Columnar datapath: batched pipeline vs the per-packet reference path.
# --------------------------------------------------------------------- #
def test_columnar_datapath_speedup(bench_identifier, bench_report):
    """``run_batched`` vs ``run`` on one sustained, pre-captured stream.

    The stream is materialised once and both pipelines replay the very
    same packet list, so the comparison isolates the datapath: per-packet
    object flow against the columnar PacketBatch flow (vectorised parse,
    prepared-batch assembly, batched discrimination).  Verdict parity per
    device is asserted alongside the timing -- the speedup only counts if
    the batched path says exactly what the scalar path says.

    ``packets_per_second`` of this section is the headline number for the
    >=10x throughput target; ``speedup_over_scalar`` is the
    machine-independent ratio the CI regression guard keys on.
    """
    source = build_stream(duplicated=FRESH_DEVICES, replays=SUSTAINED_REPLAYS)
    total_devices = len(source.traces)
    packets = list(source.packets())

    def run_once(batched: bool):
        dispatcher = BatchDispatcher(
            bench_identifier,
            max_batch=8,
            queue_capacity=64,
            cache=IdentificationCache(capacity=256),
        )
        pipeline = StreamingPipeline(
            source=IterableSource(list(packets)),
            dispatcher=dispatcher,
            assembler=ShardedFingerprintAssembler(shards=8),
        )
        identified = []
        pipeline.on_identified = identified.append
        # Collect before timing: earlier benchmarks in this file leave
        # allocator/GC debt behind that would otherwise be charged to
        # whichever path runs first.
        gc.collect()
        start = time.perf_counter()
        stats = (
            pipeline.run_batched(COLUMNAR_BATCH_SIZE) if batched else pipeline.run()
        )
        wall = time.perf_counter() - start
        return wall, stats, identified

    def best_of(batched: bool, rounds: int):
        runs = [run_once(batched) for _ in range(rounds)]
        return min(runs, key=lambda run: run[0])

    run_once(True)  # warmup: numpy/classifier code paths, allocator
    rounds = 2 if BENCH_QUICK else 3
    scalar_wall, scalar_stats, scalar_identified = best_of(False, rounds)
    batched_wall, batched_stats, batched_identified = best_of(True, rounds)

    scalar_pps = scalar_stats.packets / scalar_wall
    batched_pps = batched_stats.packets / batched_wall
    speedup = batched_pps / scalar_pps

    print()
    print("Columnar datapath speedup")
    print(f"  devices on the wire            {total_devices}")
    print(f"  packets streamed               {batched_stats.packets}")
    print(f"  fingerprints assembled         {batched_stats.fingerprints}")
    print(f"  batch size                     {COLUMNAR_BATCH_SIZE}")
    print(f"  throughput (per-packet)        {scalar_pps:,.0f} packets/s")
    print(f"  throughput (batched)           {batched_pps:,.0f} packets/s")
    print(f"  speedup over scalar            {speedup:.2f}x")
    print(f"  assembly   scalar/batched      {scalar_stats.assemble_seconds * 1000:.1f}"
          f" / {batched_stats.assemble_seconds * 1000:.1f} ms")
    print(f"  identify   scalar/batched      {scalar_stats.identify_seconds * 1000:.1f}"
          f" / {batched_stats.identify_seconds * 1000:.1f} ms")

    # Both paths did identical work and reached identical verdicts.
    assert batched_stats.packets == scalar_stats.packets == len(packets)
    assert batched_stats.fingerprints == scalar_stats.fingerprints
    scalar_verdicts = {
        item.mac: (item.result.device_type, item.fingerprint.vectors.tobytes())
        for item in scalar_identified
    }
    batched_verdicts = {
        item.mac: (item.result.device_type, item.fingerprint.vectors.tobytes())
        for item in batched_identified
    }
    assert batched_verdicts == scalar_verdicts
    assert len(batched_verdicts) >= total_devices

    # The batched path is strictly the faster one; the full 10x claim
    # lives in the committed BENCH json (this machine) and is guarded by
    # tools/check_bench_regression.py on the machine-independent ratio.
    assert speedup > 1.5
    assert batched_pps > 1000

    _report(
        bench_report,
        "columnar_datapath",
        {
            "devices": total_devices,
            "packets": batched_stats.packets,
            "fingerprints": batched_stats.fingerprints,
            "batch_size": COLUMNAR_BATCH_SIZE,
            "rounds": rounds,
            "scalar_packets_per_second": scalar_pps,
            "packets_per_second": batched_pps,
            "speedup_over_scalar": speedup,
            "scalar_assemble_seconds": scalar_stats.assemble_seconds,
            "assemble_seconds": batched_stats.assemble_seconds,
            "scalar_identify_seconds": scalar_stats.identify_seconds,
            "identify_seconds": batched_stats.identify_seconds,
            "cache_hit_rate": batched_stats.cache_hit_rate,
        },
        identifier=bench_identifier,
    )


# --------------------------------------------------------------------- #
# Deterministic discrimination: reproducibility + hot-path cost.
# --------------------------------------------------------------------- #
def test_deterministic_discrimination_hot_path(benchmark, bench_identifier, bench_report):
    """The seeded reference draw costs ~one SHA-256 per candidate type.

    Confirms (a) repeated identification of the same stream returns
    bit-identical verdicts under the deterministic draw and (b) the
    deterministic draw adds no material hot-path cost over the retired
    random draw (the timing ratio is trajectory data; only a very
    generous bound is asserted to stay robust on noisy CI runners).
    """
    source = build_stream()
    _, identified = run_stream(bench_identifier, source)
    fingerprints = [item.fingerprint for item in identified]
    references_per_type = bench_identifier.discriminator.references_per_type
    original_discriminator = bench_identifier.discriminator
    try:
        bench_identifier.discriminator = EditDistanceDiscriminator(
            references_per_type=references_per_type, selection=DETERMINISTIC_SELECTION
        )
        start = time.perf_counter()
        first = benchmark.pedantic(
            bench_identifier.identify_many, args=(fingerprints,), rounds=1, iterations=1
        )
        deterministic_seconds = time.perf_counter() - start
        second = bench_identifier.identify_many(fingerprints)

        bench_identifier.discriminator = EditDistanceDiscriminator(
            references_per_type=references_per_type,
            selection=RANDOM_SELECTION,
            rng=np.random.default_rng(0),
        )
        start = time.perf_counter()
        bench_identifier.identify_many(fingerprints)
        random_seconds = time.perf_counter() - start
    finally:
        bench_identifier.discriminator = original_discriminator

    # Bit-identical verdicts: type, scores and reference provenance.
    for one, two in zip(first, second):
        assert one.device_type == two.device_type
        assert one.matched_types == two.matched_types
        assert one.discrimination_scores == two.discrimination_scores

    ratio = deterministic_seconds / random_seconds if random_seconds else 1.0
    print()
    print("Deterministic discrimination hot path")
    print(f"  fingerprints                   {len(fingerprints)}")
    print(f"  identify (deterministic draw)  {deterministic_seconds * 1000:.1f} ms")
    print(f"  identify (random draw)         {random_seconds * 1000:.1f} ms")
    print(f"  deterministic / random         {ratio:.2f}x")

    # No hot-path regression: the seeding cost must stay within noise of
    # the random draw (generous bound -- shared CI runners are noisy).
    assert deterministic_seconds <= random_seconds * 2.5 + 0.05

    _report(
        bench_report,
        "deterministic_discrimination",
        {
            "fingerprints": len(fingerprints),
            "identify_seconds_deterministic": deterministic_seconds,
            "identify_seconds_random": random_seconds,
            "deterministic_over_random_ratio": ratio,
        },
        identifier=bench_identifier,
    )


# --------------------------------------------------------------------- #
# Observability overhead: the ledger + metrics must be near-free.
# --------------------------------------------------------------------- #
def test_observability_overhead(benchmark, bench_identifier, bench_report, tmp_path):
    """A fully wired hub (ledger included) stays within 1.1x of disabled.

    The hot path pays one ``is None`` test per packet-stage call, one
    histogram observe per identify batch, and one ``os.write`` per
    *verdict* (tens per stream, not per packet) -- so wall-clock with
    observability enabled must track the disabled baseline.  The 1.1x
    bound carries a small absolute floor to stay robust on noisy CI
    runners where a sub-second run's jitter exceeds 10%.
    """
    run_stream(bench_identifier, build_stream())  # warmup: caches, JIT-ish paths

    start = time.perf_counter()
    base_stats, base_identified = run_stream(bench_identifier, build_stream())
    base_wall = time.perf_counter() - start

    hub = Observability(ledger=VerdictLedger(tmp_path / "ledger.ndjson"))
    start = time.perf_counter()
    obs_stats, obs_identified = benchmark.pedantic(
        run_stream,
        kwargs={
            "identifier": bench_identifier,
            "source": build_stream(),
            "observability": hub,
        },
        rounds=1,
        iterations=1,
    )
    obs_wall = time.perf_counter() - start
    hub.ledger.close()

    ratio = obs_wall / base_wall if base_wall else 1.0
    print()
    print("Observability overhead")
    print(f"  wall (observability off)       {base_wall * 1000:.1f} ms")
    print(f"  wall (ledger + metrics on)     {obs_wall * 1000:.1f} ms")
    print(f"  overhead ratio                 {ratio:.2f}x")

    # Identical work was done, every verdict landed in the ledger, and
    # the metrics surface saw the batches the dispatcher ran.
    assert len(obs_identified) == len(base_identified)
    replay = replay_ledger(tmp_path / "ledger.ndjson")
    verdicts = [record for record in replay.records if record.kind == "verdict"]
    assert len(verdicts) == len(obs_identified)
    snapshot = hub.snapshot()
    assert snapshot["dispatcher.identify_batch_seconds.count"] == obs_stats.dispatcher.batches

    # The acceptance bound: observability must be near-free.
    assert obs_wall <= base_wall * 1.1 + 0.05

    _report(
        bench_report,
        "observability_overhead",
        {
            "wall_seconds_disabled": base_wall,
            "wall_seconds_enabled": obs_wall,
            "overhead_ratio": ratio,
            "ledger_records": len(replay.records),
            "verdict_records": len(verdicts),
        },
        identifier=bench_identifier,
        cache_epoch=0,
    )
