"""Table III -- confusion matrix of the 10 low-accuracy (confusable) devices.

Paper result: misidentifications stay within vendor families -- the four
D-Link smart-home devices are confused among themselves, the two TP-Link
plugs with each other, the two Edimax plugs with each other and the two
Smarter appliances with each other; no confusion crosses family boundaries.
"""

import numpy as np

from repro.devices.catalog import CONFUSABLE_FAMILIES, TABLE_III_DEVICES
from repro.eval.experiments import table_iii_confusion
from repro.eval.reporting import format_confusion_matrix


def test_table3_confusion_matrix(benchmark, bench_dataset, evaluation_cache):
    evaluation = evaluation_cache.get(bench_dataset)
    matrix, labels = benchmark.pedantic(
        table_iii_confusion, args=(evaluation,), rounds=1, iterations=1
    )

    print()
    print("Table III: confusion matrix of the 10 confusable devices (actual \\ predicted)")
    print(format_confusion_matrix(matrix, labels))

    index_of = {name: position for position, name in enumerate(labels)}
    total = matrix.sum()
    in_family = 0
    for family_members in CONFUSABLE_FAMILIES.values():
        rows = [index_of[name] for name in family_members]
        in_family += matrix[np.ix_(rows, rows)].sum()
    cross_family_fraction = 1.0 - in_family / total

    print(f"identifications landing inside the correct vendor family: {in_family / total:.0%}")

    assert list(labels) == list(TABLE_III_DEVICES)
    assert total > 0
    # The paper's key observation: confusion is almost entirely intra-family.
    assert cross_family_fraction < 0.25
