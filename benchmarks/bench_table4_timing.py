"""Table IV -- time consumption of the device-type identification steps.

Paper result (on their hardware): one Random-Forest classification 0.014 ms,
one edit-distance computation 23.4 ms, fingerprint extraction 0.85 ms,
27 classifications 0.385 ms, 7 discriminations 156.5 ms, total type
identification ~158 ms.  Absolute numbers differ on other hardware and with
our simulated traces (shorter fingerprints make the edit distance cheaper);
the *structure* -- classification orders of magnitude cheaper than
discrimination, which dominates the total -- must hold.
"""

from repro.eval.experiments import run_timing
from repro.eval.reporting import format_timing_table


def test_table4_identification_timing(benchmark, bench_dataset, bench_identifier):
    summary = benchmark.pedantic(
        run_timing,
        kwargs={"dataset": bench_dataset, "identifier": bench_identifier, "samples": 40},
        rounds=1,
        iterations=1,
    )

    print()
    print("Table IV: time consumption for device-type identification (ms)")
    print(format_timing_table(summary.rows))

    single_classification = summary.mean_of("1 Classification (Random Forest)")
    single_discrimination = summary.mean_of("1 Discrimination (edit distance)")
    type_identification = summary.mean_of("Type Identification")
    all_classifications = summary.mean_of(
        f"{len(bench_identifier.known_device_types)} Classifications (Random Forest)"
    )

    # Shape checks: classification is far cheaper than edit-distance
    # discrimination, and discrimination dominates the total.
    assert single_classification < single_discrimination
    assert all_classifications < type_identification
    assert type_identification < 1000.0  # stays sub-second, as the paper argues
