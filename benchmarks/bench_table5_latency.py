"""Table V -- latency experienced by users with and without traffic filtering.

Paper result: for every source device (D1-D3) and destination (D4, local
server, remote server) the mean latency with filtering is within a fraction
of a millisecond of the latency without filtering (24.8 vs 24.5 ms for
D1-D4, etc.) -- i.e. the enforcement mechanism does not measurably impact
user-perceived latency.
"""

from repro.eval.experiments import run_latency_table
from repro.eval.reporting import format_latency_table


def test_table5_user_latency(benchmark):
    table = benchmark.pedantic(
        run_latency_table, kwargs={"iterations": 15, "seed": 0}, rounds=1, iterations=1
    )

    print()
    print("Table V: latency (ms) per source/destination pair")
    print(format_latency_table(table.rows))

    for source, destination, filtering_mean, _, plain_mean, _ in table.rows:
        relative_overhead = (filtering_mean - plain_mean) / plain_mean
        # Who wins: no-filtering is (slightly) faster, but by far less than
        # the run-to-run noise -- the paper's headline claim.
        assert relative_overhead < 0.20, (source, destination, relative_overhead)

    device_pair = table.row("D1", "D4")[0]
    local_server = table.row("D1", "S_local")[0]
    remote_server = table.row("D1", "S_remote")[0]
    # Ordering of the paths matches the paper: device-to-device over two
    # wireless hops is the slowest, the local server the fastest.
    assert device_pair > remote_server > local_server
