"""Table VI -- overhead due to the filtering mechanism.

Paper result: +5.84 % latency on the D1-D2 pair, +0.71 % on D1-D3,
+0.63 % CPU utilisation and +7.6 % memory usage -- all small.
"""

from repro.eval.experiments import run_overhead_table
from repro.eval.reporting import format_overhead_table


def test_table6_filtering_overhead(benchmark):
    table = benchmark.pedantic(
        run_overhead_table,
        kwargs={"iterations": 15, "repetitions": 10, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print("Table VI: overhead due to the filtering mechanism")
    print(format_overhead_table(table.rows))

    # The filtering mechanism costs something, but single-digit percentages.
    assert -2.0 < table.overhead_of("D1D2 Latency") < 12.0
    assert -2.0 < table.overhead_of("D1D3 Latency") < 12.0
    assert 0.0 <= table.overhead_of("CPU utilization") < 5.0
    assert 0.0 <= table.overhead_of("Memory usage") < 15.0
