"""Shared fixtures and configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  The identification
benchmarks are the expensive ones; their scale is controlled through
environment variables so that a full paper-scale run can be requested
explicitly:

* ``REPRO_BENCH_RUNS``   -- setup runs per device-type (paper: 20, default: 12)
* ``REPRO_BENCH_FOLDS``  -- cross-validation folds      (paper: 10, default: 5)
* ``REPRO_BENCH_REPEATS``-- cross-validation repetitions (paper: 10, default: 1)
* ``REPRO_BENCH_QUICK``  -- set to ``1`` for CI smoke runs (small batches)
* ``REPRO_BENCH_OUT``    -- directory for ``BENCH_*.json`` trajectory files
  (default: the repository root)

Example paper-scale invocation::

    REPRO_BENCH_RUNS=20 REPRO_BENCH_FOLDS=10 pytest benchmarks/ --benchmark-only

Benchmarks that track the performance trajectory write their headline
numbers to ``BENCH_<name>.json`` through the :func:`write_bench_json`
helper (exposed as the ``bench_report`` fixture); CI uploads those files
as artifacts on every run.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.builder import generate_fingerprint_dataset
from repro.eval.experiments import evaluate_identification
from repro.identification.identifier import DeviceTypeIdentifier

BENCH_RUNS_PER_TYPE = int(os.environ.get("REPRO_BENCH_RUNS", "12"))
BENCH_FOLDS = int(os.environ.get("REPRO_BENCH_FOLDS", "5"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
BENCH_OUTPUT_DIR = Path(os.environ.get("REPRO_BENCH_OUT", str(Path(__file__).resolve().parent.parent)))


def write_bench_json(name: str, payload: dict) -> Path:
    """Record a benchmark's headline numbers as ``BENCH_<name>.json``.

    The file is the perf trajectory CI uploads as an artifact; keep the
    payload small (headline scalars, not raw samples).
    """
    BENCH_OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "quick_mode": BENCH_QUICK,
        "config": {
            "runs_per_type": BENCH_RUNS_PER_TYPE,
            "folds": BENCH_FOLDS,
            "repeats": BENCH_REPEATS,
            "seed": BENCH_SEED,
        },
        **payload,
    }
    path = BENCH_OUTPUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def make_section_reporter(name: str):
    """A per-file accumulator for multi-benchmark ``BENCH_<name>.json``.

    Several benchmarks in one file report into one trajectory document;
    each records its section through the returned callable and the merged
    document is rewritten, so the file is complete whenever every
    benchmark ran and partial (but valid) for a lone run.

    Each section is stamped with ``run_metadata`` (python/numpy version,
    machine) so a trajectory point can be attributed to its toolchain;
    pass ``identifier=`` and/or ``cache_epoch=`` to additionally record
    the identifier revision and cache generation the numbers were
    measured under -- the same stamps the evidence ledger carries.
    """
    sections: dict = {}

    def report(
        bench_report,
        section: str,
        payload: dict,
        identifier=None,
        cache_epoch=None,
    ) -> None:
        metadata = {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        }
        if identifier is not None:
            metadata["identifier_revision"] = identifier.revision
        if cache_epoch is not None:
            metadata["cache_epoch"] = cache_epoch
        sections[section] = {**payload, "run_metadata": metadata}
        bench_report(name, dict(sections))

    return report


@pytest.fixture(scope="session")
def bench_report():
    """The ``BENCH_*.json`` writer, as a fixture for the benchmark files."""
    return write_bench_json


@pytest.fixture(scope="session")
def bench_dataset():
    """The synthetic evaluation dataset (27 device-types, Table II)."""
    return generate_fingerprint_dataset(runs_per_type=BENCH_RUNS_PER_TYPE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_identifier(bench_dataset):
    """An identifier trained on the full benchmark dataset (for Table IV)."""
    return DeviceTypeIdentifier.train(bench_dataset.to_registry(), random_state=BENCH_SEED)


class _EvaluationCache:
    """Caches the cross-validated evaluation so Fig. 5 and Table III share it."""

    def __init__(self) -> None:
        self.evaluation = None

    def get(self, dataset):
        if self.evaluation is None:
            self.evaluation = evaluate_identification(
                dataset,
                n_splits=BENCH_FOLDS,
                repetitions=BENCH_REPEATS,
                random_state=BENCH_SEED,
            )
        return self.evaluation


@pytest.fixture(scope="session")
def evaluation_cache():
    return _EvaluationCache()
