"""Shared fixtures and configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  The identification
benchmarks are the expensive ones; their scale is controlled through
environment variables so that a full paper-scale run can be requested
explicitly:

* ``REPRO_BENCH_RUNS``   -- setup runs per device-type (paper: 20, default: 12)
* ``REPRO_BENCH_FOLDS``  -- cross-validation folds      (paper: 10, default: 5)
* ``REPRO_BENCH_REPEATS``-- cross-validation repetitions (paper: 10, default: 1)

Example paper-scale invocation::

    REPRO_BENCH_RUNS=20 REPRO_BENCH_FOLDS=10 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.builder import generate_fingerprint_dataset
from repro.eval.experiments import evaluate_identification
from repro.identification.identifier import DeviceTypeIdentifier

BENCH_RUNS_PER_TYPE = int(os.environ.get("REPRO_BENCH_RUNS", "12"))
BENCH_FOLDS = int(os.environ.get("REPRO_BENCH_FOLDS", "5"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_dataset():
    """The synthetic evaluation dataset (27 device-types, Table II)."""
    return generate_fingerprint_dataset(runs_per_type=BENCH_RUNS_PER_TYPE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_identifier(bench_dataset):
    """An identifier trained on the full benchmark dataset (for Table IV)."""
    return DeviceTypeIdentifier.train(bench_dataset.to_registry(), random_state=BENCH_SEED)


class _EvaluationCache:
    """Caches the cross-validated evaluation so Fig. 5 and Table III share it."""

    def __init__(self) -> None:
        self.evaluation = None

    def get(self, dataset):
        if self.evaluation is None:
            self.evaluation = evaluate_identification(
                dataset,
                n_splits=BENCH_FOLDS,
                repetitions=BENCH_REPEATS,
                random_state=BENCH_SEED,
            )
        return self.evaluation


@pytest.fixture(scope="session")
def evaluation_cache():
    return _EvaluationCache()
