#!/usr/bin/env python3
"""The autonomous lifecycle: trigger policies, durable quarantine, re-profiling.

``examples/online_learning.py`` shows the *operator-driven* lifecycle:
a human notices the quarantine filling up and calls
``learn_device_type`` by hand.  This variant is the self-driving
counterpart (see ``docs/operations.md``), with the entire stack --
gateway, lifecycle coordinator with durable quarantine, enforcement
sink, autopilot -- declared in one :class:`~repro.api.GatewayConfig`:

1. train the identifier on a fleet that does *not* include HomeMatic
   plugs and ``build_gateway`` the full stack;
2. three identical HomeMatic plugs join and identify as unknown: they
   are parked under strict isolation and the quarantine log is persisted
   write-through beside the model bundle;
3. ``autopilot.poll`` notices the unseen-model cluster crossing the
   ``TriggerPolicy`` threshold and learns the type automatically under a
   provisional label -- capped at *restricted* isolation until an
   operator promotes it;
4. the operator reviews and ``promote``\\ s the label: the fleet relaxes
   to its full assessed isolation;
5. a simulated restart: ``build_gateway(GatewayConfig(resume=True,
   ...))`` rebuilds the whole gateway from the persisted bundle +
   quarantine log at the learned epoch;
6. a steady-state re-profiling pass (sticky off) demonstrates drift
   detection: a device whose fingerprint shifted re-enters quarantine.

Run with ``python examples/autopilot_gateway.py``.
"""

import tempfile
from pathlib import Path

from repro import GatewayConfig, GatewayHandle, build_gateway
from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.features import Fingerprint
from repro.identification import DeviceTypeIdentifier, ReprofileScheduler, TriggerPolicy
from repro.net.addresses import MACAddress

KNOWN_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110"]
UNKNOWN_TYPE = "HomeMaticPlug"
CLUSTER_SIZE = 3
#: One seed per *firmware build*: re-running the same seed replays the
#: identical setup procedure, which is what makes distinct devices of one
#: model share a fingerprint content key.
FIRMWARE_SEED = 55
#: The "updated firmware" overhauls the setup procedure entirely (modelled
#: with a different device profile), so the drifted fingerprint matches no
#: classifier -- the Sect. VIII-B scenario.
UPDATED_FIRMWARE_TYPE = "SmarterCoffee"


def print_fleet(handle: GatewayHandle) -> None:
    for record in sorted(handle.gateway.devices.values(), key=lambda r: str(r.mac)):
        print(
            f"   {str(record.mac):18s} {record.device_type:22s} "
            f"{record.isolation_level.value}"
        )


def device_mac(index: int) -> MACAddress:
    return MACAddress.from_string(f"02:de:ad:be:ef:{index:02x}")


def plug_fingerprint(
    mac: MACAddress, seed: int = FIRMWARE_SEED, model: str = UNKNOWN_TYPE
) -> Fingerprint:
    trace = SetupTrafficSimulator(seed=seed).simulate(
        DEVICE_CATALOG[model], device_mac=mac
    )
    return Fingerprint.from_packets(trace.packets)


def main() -> None:
    print("== 1. Boot: one config -> the full autonomous stack ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=KNOWN_TYPES, seed=3)
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=3)
    state_dir = Path(tempfile.mkdtemp(prefix="iot-sentinel-autopilot-"))

    handle = build_gateway(
        GatewayConfig(
            identifier=identifier,
            max_batch=8,
            store_path=state_dir / "model.npz",
            quarantine_path=state_dir / "quarantine.npz",
            autopilot=True,
            trigger_policy=TriggerPolicy(
                min_cluster_size=CLUSTER_SIZE, cooldown_seconds=60.0
            ),
        )
    )
    handle.lifecycle.save_snapshot()
    print(f"   known types: {', '.join(identifier.known_device_types)}")
    print(f"   durable state under {state_dir}")

    print(f"== 2. {CLUSTER_SIZE} identical {UNKNOWN_TYPE}s join; all unknown ==")
    macs = [device_mac(index + 1) for index in range(CLUSTER_SIZE)]
    for mac in macs:
        handle.identify(mac, plug_fingerprint(mac))
    print_fleet(handle)
    print(f"   quarantined: {len(handle.lifecycle.quarantine)} (persisted write-through)")

    print("== 3. The autopilot notices the cluster and learns the type ==")
    decisions = handle.autopilot.poll(now=120.0)
    for decision in decisions:
        report = decision.report
        print(
            f"   {decision.action}: {report.device_type!r} "
            f"(cluster of {decision.proposal.cluster_size}, "
            f"re-identified {report.quarantined} at "
            f"{report.devices_per_second:,.0f} devices/s, epoch {report.generation})"
        )
    print_fleet(handle)
    print("   (provisional label: capped at restricted until promoted)")

    print("== 4. The operator reviews and promotes the label ==")
    label = decisions[0].report.device_type
    upgraded = handle.autopilot.promote(label)
    print(f"   promoted {label!r}: {upgraded} device(s) re-assessed")
    print_fleet(handle)

    print("== 5. Restart: resume the whole gateway from persisted state ==")
    resumed = build_gateway(
        GatewayConfig(
            resume=True,
            store_path=state_dir / "model.npz",
            quarantine_path=state_dir / "quarantine.npz",
        )
    )
    print(
        f"   resumed at epoch {resumed.epoch}, "
        f"{len(resumed.lifecycle.quarantine)} pending device(s), "
        f"{len(resumed.identifier.known_device_types)} known types"
    )

    print("== 6. Steady-state re-profiling detects fingerprint drift ==")
    scheduler = ReprofileScheduler(handle.lifecycle, interval=3600.0, batch_budget=64)
    drifted_mac = macs[0]
    fleet = [
        (
            mac,
            plug_fingerprint(
                mac, model=UPDATED_FIRMWARE_TYPE if mac == drifted_mac else UNKNOWN_TYPE
            ),
        )
        for mac in macs
    ]
    report = scheduler.run(fleet, now=4000.0)
    print(
        f"   examined {report.examined}: {len(report.unchanged)} unchanged, "
        f"{len(report.drifted)} drifted, {len(report.retyped)} retyped"
    )
    print_fleet(handle)
    print(f"   quarantined again: {handle.lifecycle.quarantine.macs()}")
    print("   (from here the same quarantine -> learn flow takes over)")


if __name__ == "__main__":
    main()
