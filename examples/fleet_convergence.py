#!/usr/bin/env python3
"""Fleet-scale serving: one trainer, three gateways, epoch-coordinated.

The paper evaluates one gateway; a deployment runs many, and they must
*agree* -- same model, same epoch, bit-identical verdicts for the same
traffic (PR 5's determinism makes that an assertable property).  This
demo drives the whole fleet workflow:

1. train model v1, stamp it into a bundle at epoch 1 and ``push`` it to
   the :class:`~repro.fleet.FleetCoordinator`'s distribution channel;
2. spawn three gateways from the channel watermark (one declarative
   :class:`~repro.api.GatewayConfig` template) and stream the same
   traffic through each: every gateway produces the identical verdict
   map;
3. train model v2 (it knows a device model v1 quarantines), push it at
   epoch 2 and ``sync_all()``: each member hot-swaps the bundle between
   batches and invalidates its verdict cache by epoch;
4. replay a duplicate push -- a counted idempotent no-op;
5. roll back to v1: the channel re-publishes the old bundle under a
   *fresh higher* epoch, so caches still invalidate and the evidence
   ledger's epoch monotonicity audit stays clean;
6. the coordinator's ledger holds the full distribution audit trail
   (``push`` and ``apply`` records) -- validate it with
   ``tools/check_ledger.py``.

Run with ``python examples/fleet_convergence.py [--out DIR]``.
"""

import argparse
from pathlib import Path

from repro import (
    DeviceTypeIdentifier,
    FleetCoordinator,
    FleetHealthView,
    GatewayConfig,
    Observability,
    VerdictLedger,
)
from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.identification.model_store import save_identifier
from repro.streaming import SimulatedSource

V1_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch"]
LATE_MODEL = "TP-LinkPlugHS110"  # v1 never saw it; v2 does
FLEET_SIZE = 3


def make_source() -> SimulatedSource:
    """The same traffic for every gateway (verdicts must agree on it)."""
    simulator = SetupTrafficSimulator(seed=42)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(V1_TYPES + [LATE_MODEL])
    ]
    return SimulatedSource(traces=traces)


def verdict_map(handle) -> dict:
    return {
        str(record.mac): record.device_type
        for record in handle.gateway.devices.values()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("fleet-artifacts"),
        help="directory for bundles + the fleet ledger (default: fleet-artifacts/)",
    )
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    print("== 1. Train v1, stamp it at epoch 1, push it to the channel ==")
    dataset_v1 = generate_fingerprint_dataset(
        runs_per_type=10, device_names=V1_TYPES, seed=0
    )
    v1 = DeviceTypeIdentifier.train(dataset_v1.to_registry(), random_state=0)
    bundle_v1 = args.out / "model-v1.json"
    save_identifier(bundle_v1, v1, epoch=1)

    fleet = FleetCoordinator(
        observability=Observability(
            ledger=VerdictLedger(args.out / "fleet-ledger.ndjson")
        )
    )
    record = fleet.push(bundle_v1, note="initial rollout")
    print(f"   pushed {record.bundle_path} @ epoch {record.epoch} rev {record.revision}")

    print(f"== 2. Spawn {FLEET_SIZE} gateways from the watermark; stream the fleet ==")
    template = GatewayConfig(max_batch=4, shards=4)
    handles = [
        fleet.spawn_gateway(f"gw-{index}", template) for index in range(FLEET_SIZE)
    ]
    for handle in handles:
        stats = handle.run_until_idle(make_source())
        print(f"   {handle.name}: {stats.summary()}")
    maps = [verdict_map(handle) for handle in handles]
    assert all(m == maps[0] for m in maps), "gateways disagree on identical traffic"
    unknowns = sorted(m for m, t in maps[0].items() if t == "unknown")
    print(f"   all {FLEET_SIZE} gateways agree; v1 quarantines {unknowns}")
    print(FleetHealthView(fleet).collect().describe())

    print(f"== 3. Train v2 (knows {LATE_MODEL}), push @ epoch 2, sync ==")
    dataset_v2 = generate_fingerprint_dataset(
        runs_per_type=10, device_names=V1_TYPES + [LATE_MODEL], seed=0
    )
    v2 = DeviceTypeIdentifier.train(dataset_v2.to_registry(), random_state=0)
    v2.revision = v1.revision + 1
    bundle_v2 = args.out / "model-v2.json"
    save_identifier(bundle_v2, v2, epoch=2)
    fleet.push(bundle_v2, note="adds " + LATE_MODEL)
    applied = fleet.sync_all()
    print(f"   applied per member: {applied}")
    for handle in handles:
        handle.run_until_idle(make_source())
    maps = [verdict_map(handle) for handle in handles]
    assert all(m == maps[0] for m in maps)
    print(f"   {LATE_MODEL} now identified on every member")
    print(FleetHealthView(fleet).collect().describe())

    print("== 4. A replayed push is a counted idempotent no-op ==")
    fleet.push(bundle_v2)
    print(f"   duplicate_pushes = {fleet.duplicate_pushes}; "
          f"sync applies nothing: {fleet.sync_all()}")

    print("== 5. Roll back to v1 -- by moving the epoch *forward* ==")
    rollback = fleet.rollback(note="v2 misbehaving in prod")
    print(f"   re-published {rollback.bundle_path} @ epoch {rollback.epoch}")
    print(f"   applied per member: {fleet.sync_all()}")
    report = FleetHealthView(fleet).collect()
    print(report.describe())
    assert report.converged

    print("== 6. The distribution audit trail ==")
    ledger = fleet.observability.ledger
    snapshot = fleet.observability.snapshot()
    for key in ("ledger.push_records", "ledger.apply_records"):
        print(f"   {key} = {snapshot[key]}")
    for handle in handles:
        handle.close()
    ledger.close()
    print(f"   validate with: python tools/check_ledger.py {ledger.path}")


if __name__ == "__main__":
    main()
