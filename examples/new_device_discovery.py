#!/usr/bin/env python3
"""New-device-type discovery and incremental learning.

IoT SENTINEL's "one classifier per device-type" design means a fingerprint
can be rejected by every classifier, signalling a previously unseen
device-type, and a new type can be added later without retraining the
existing models.  This example demonstrates both properties and also shows
how a firmware update changes a device's fingerprint enough to be treated
as a distinct device-type (Sect. VIII-B of the paper).

Run with ``python examples/new_device_discovery.py``.
"""

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.devices.profiles import SetupStep, StepKind
from repro.features import Fingerprint
from repro.identification import DeviceTypeIdentifier

KNOWN_TYPES = ["Aria", "HueBridge", "WeMoSwitch", "EdimaxPlug1101W", "D-LinkCam"]


def identify_and_report(identifier, trace, label):
    fingerprint = Fingerprint.from_packets(trace.packets)
    result = identifier.identify(fingerprint)
    flag = " (new device-type!)" if result.is_new_device_type else ""
    print(f"   {label:38s} -> {result.device_type}{flag}")
    return result


def main() -> None:
    print("== Training on the initially known device-types ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=KNOWN_TYPES, seed=7)
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=7)
    print(f"   known: {', '.join(identifier.known_device_types)}")

    simulator = SetupTrafficSimulator(seed=123)

    print("== A known device joins ==")
    identify_and_report(identifier, simulator.simulate(DEVICE_CATALOG["WeMoSwitch"]), "WeMo Switch")

    print("== A device of an unknown type joins ==")
    identify_and_report(
        identifier, simulator.simulate(DEVICE_CATALOG["HomeMaticPlug"]), "Homematic plug (never seen)"
    )

    print("== The IoTSSP adds the new type without touching existing classifiers ==")
    training = [
        Fingerprint.from_packets(trace.packets, device_type="HomeMaticPlug")
        for trace in simulator.simulate_many(DEVICE_CATALOG["HomeMaticPlug"], 10)
    ]
    identifier.add_device_type("HomeMaticPlug", training)
    print(f"   known types now: {len(identifier.known_device_types)}")
    identify_and_report(
        identifier, simulator.simulate(DEVICE_CATALOG["HomeMaticPlug"]), "Homematic plug (after learning)"
    )

    print("== A firmware update changes the fingerprint ==")
    updated_profile = DEVICE_CATALOG["WeMoSwitch"].with_firmware(
        "2.00.10966",
        extra_steps=(
            SetupStep(StepKind.DNS_QUERY, target="firmware.xbcs.net"),
            SetupStep(StepKind.HTTPS_CONNECT, target="firmware.xbcs.net", payload_size=420, size_jitter=24),
        ),
    )
    result = identify_and_report(
        identifier, simulator.simulate(updated_profile), "WeMo Switch with new firmware"
    )
    if not result.is_new_device_type:
        print("   (still close enough to the old firmware to match; larger behavioural")
        print("    changes would push it into a new device-type, cf. Sect. VIII-B)")

    print("== Registering the new firmware as its own device-type ==")
    updated_training = [
        Fingerprint.from_packets(trace.packets, device_type="WeMoSwitch-fw2")
        for trace in simulator.simulate_many(updated_profile, 10)
    ]
    identifier.add_device_type("WeMoSwitch-fw2", updated_training)
    identify_and_report(
        identifier, simulator.simulate(updated_profile), "WeMo Switch with new firmware"
    )
    identify_and_report(
        identifier, simulator.simulate(DEVICE_CATALOG["WeMoSwitch"]), "WeMo Switch with old firmware"
    )


if __name__ == "__main__":
    main()
