#!/usr/bin/env python3
"""The gateway explaining itself: evidence ledger + metrics snapshot.

``streaming_gateway.py`` shows the dataflow; this demo shows the *audit
trail*.  The :class:`~repro.api.GatewayConfig` facade wires one
:class:`~repro.obs.Observability` hub through the whole serving path --
dispatcher, pipeline, enforcement sink, lifecycle coordinator and
autopilot -- so that:

1. every verdict, enforcement change, quarantine transition, learn and
   promotion lands in an append-only NDJSON ledger (``ledger.ndjson``);
2. every counter the subsystems already keep is readable through one
   ``snapshot()`` call (written to ``snapshot.json``);
3. a verdict can be *reconstructed* afterwards: the ledger carries the
   fingerprint key, the provenance of the discrimination draw, the
   identifier revision and the cache epoch of the moment it was made.

The traffic deliberately exercises the full record surface: a fleet of
known devices, plus three devices of a model the identifier was never
trained on -- they are quarantined, the autopilot learns the unknown
model under a provisional label, and the label is then promoted.

Run with ``python examples/observability_gateway.py [--out DIR]``.
"""

import argparse
from pathlib import Path

from repro import GatewayConfig, build_gateway
from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.identification import DeviceTypeIdentifier
from repro.identification.autopilot import TriggerPolicy
from repro.net.addresses import MACAddress
from repro.obs import replay_ledger
from repro.streaming import SimulatedSource, replay_trace

TRAINED_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch"]
UNKNOWN_MODEL = "TP-LinkPlugHS110"  # never trained: will be quarantined


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("obs-artifacts"),
        help="directory for ledger.ndjson + snapshot.json (default: obs-artifacts/)",
    )
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    print("== 1. Training the identifier (unknown model deliberately left out) ==")
    dataset = generate_fingerprint_dataset(
        runs_per_type=10, device_names=TRAINED_TYPES, seed=0
    )
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=0)
    print(f"   known device-types: {', '.join(identifier.known_device_types)}")

    print("== 2. One config: the hub wired through the whole serving path ==")
    simulator = SetupTrafficSimulator(seed=42)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(TRAINED_TYPES * 2)
    ]
    quiet = max(packet.timestamp for trace in traces for packet in trace.packets)
    unknown = simulator.simulate(DEVICE_CATALOG[UNKNOWN_MODEL], start_time=quiet + 10.0)
    traces.append(unknown)
    for index in range(2):
        mac = MACAddress.from_string(f"02:50:f0:00:00:{index + 1:02x}")
        traces.append(replay_trace(unknown, mac, quiet + 20.0 + index * 2.0))

    handle = build_gateway(
        GatewayConfig(
            identifier=identifier,
            source=SimulatedSource(traces=traces),
            max_batch=4,
            shards=4,
            autopilot=True,
            trigger_policy=TriggerPolicy(min_cluster_size=3),
            ledger_path=args.out / "ledger.ndjson",
            # A small rotation threshold so the demo ledger exercises the
            # rotated chain too; production would use the (4 MiB) default.
            ledger_max_bytes=4096,
            ledger_max_files=16,
        )
    )
    hub = handle.observability
    print(f"   metric sources wired: {', '.join(hub.metrics.sources)}")

    print("== 3. Streaming a fleet (including 3 devices of the unknown model) ==")
    stats = handle.run_until_idle()
    print(f"   {stats.summary()}")
    print(f"   quarantined unknowns: {len(handle.lifecycle.quarantine)}")

    print("== 4. Autopilot: learn the unknown model, then promote the label ==")
    decisions = handle.autopilot.poll(now=handle.clock.now())
    for decision in decisions:
        print(f"   {decision.action}: {decision.proposal.label} "
              f"(cluster of {decision.proposal.cluster_size})")
    for decision in decisions:
        if decision.action == "learned":
            upgraded = handle.autopilot.promote(decision.proposal.label)
            print(f"   promoted {decision.proposal.label}: {upgraded} rules relaxed")

    print("== 5. The gateway explains itself ==")
    snapshot = handle.snapshot()
    snapshot_path = args.out / "snapshot.json"
    snapshot_path.write_text(hub.snapshot_json() + "\n", encoding="utf-8")
    for key in (
        "ledger.verdict_records",
        "ledger.enforcement_records",
        "ledger.quarantine_records",
        "ledger.learn_records",
        "ledger.promotion_records",
        "identification_cache.hit_rate",
        "rule_cache.hit_rate",
        "cache_epoch.generation",
    ):
        print(f"   {key} = {snapshot[key]}")
    handle.close()

    replay = replay_ledger(hub.ledger.path)
    print(f"   ledger: {len(replay.records)} records across {len(replay.files)} file(s)")
    mac = str(unknown.device_mac)
    print(f"   evidence trail of {mac}:")
    for record in replay.for_mac(mac):
        extra = record.enforcement_action or record.detail.get("transition") or record.verdict
        print(f"     #{record.sequence:<3} {record.kind:<12} {extra}")
    print(f"   artifacts: {hub.ledger.path}, {snapshot_path}")


if __name__ == "__main__":
    main()
