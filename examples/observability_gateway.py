#!/usr/bin/env python3
"""The gateway explaining itself: evidence ledger + metrics snapshot.

``streaming_gateway.py`` shows the dataflow; this demo shows the *audit
trail*.  One :class:`~repro.obs.Observability` hub is wired through the
whole serving path -- dispatcher, pipeline, enforcement sink, lifecycle
coordinator and autopilot -- so that:

1. every verdict, enforcement change, quarantine transition, learn and
   promotion lands in an append-only NDJSON ledger (``ledger.ndjson``);
2. every counter the subsystems already keep is readable through one
   ``snapshot()`` call (written to ``snapshot.json``);
3. a verdict can be *reconstructed* afterwards: the ledger carries the
   fingerprint key, the provenance of the discrimination draw, the
   identifier revision and the cache epoch of the moment it was made.

The traffic deliberately exercises the full record surface: a fleet of
known devices, plus three devices of a model the identifier was never
trained on -- they are quarantined, the autopilot learns the unknown
model under a provisional label, and the label is then promoted.

Run with ``python examples/observability_gateway.py [--out DIR]``.
"""

import argparse
import json
from pathlib import Path

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.gateway import SecurityGateway
from repro.identification import DeviceTypeIdentifier
from repro.identification.autopilot import LifecycleAutopilot, TriggerPolicy
from repro.identification.lifecycle import LifecycleCoordinator
from repro.net.addresses import MACAddress
from repro.obs import Observability, VerdictLedger, replay_ledger
from repro.security_service import IoTSecurityService
from repro.simulation.clock import SimulatedClock
from repro.streaming import (
    BatchDispatcher,
    GatewayEnforcementSink,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
    replay_trace,
)

TRAINED_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch"]
UNKNOWN_MODEL = "TP-LinkPlugHS110"  # never trained: will be quarantined


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("obs-artifacts"),
        help="directory for ledger.ndjson + snapshot.json (default: obs-artifacts/)",
    )
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    print("== 1. Training the identifier (unknown model deliberately left out) ==")
    dataset = generate_fingerprint_dataset(
        runs_per_type=10, device_names=TRAINED_TYPES, seed=0
    )
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=0)
    print(f"   known device-types: {', '.join(identifier.known_device_types)}")

    print("== 2. Wiring the observability hub through the serving path ==")
    # A small rotation threshold so the demo ledger exercises the rotated
    # chain too; production would use the (4 MiB) default.
    ledger = VerdictLedger(args.out / "ledger.ndjson", max_bytes=4096, max_files=16)
    hub = Observability(ledger=ledger)

    # One stream clock shared by the pipeline and the gateway, so ledger
    # stream_time stamps agree across verdict and enforcement records.
    clock = SimulatedClock()
    gateway = SecurityGateway(clock=clock)
    service = IoTSecurityService(identifier=identifier)
    sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, observability=hub
    )
    coordinator = LifecycleCoordinator(
        identifier=identifier, sink=sink, observability=hub
    )
    sink.lifecycle = coordinator
    gateway.attach_lifecycle(coordinator)
    autopilot = LifecycleAutopilot(
        coordinator,
        policy=TriggerPolicy(min_cluster_size=3),
        security_service=service,
    )
    print(f"   metric sources wired: {', '.join(hub.metrics.sources)}")

    print("== 3. Streaming a fleet (including 3 devices of the unknown model) ==")
    simulator = SetupTrafficSimulator(seed=42)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(TRAINED_TYPES * 2)
    ]
    quiet = max(packet.timestamp for trace in traces for packet in trace.packets)
    unknown = simulator.simulate(DEVICE_CATALOG[UNKNOWN_MODEL], start_time=quiet + 10.0)
    traces.append(unknown)
    for index in range(2):
        mac = MACAddress.from_string(f"02:50:f0:00:00:{index + 1:02x}")
        traces.append(replay_trace(unknown, mac, quiet + 20.0 + index * 2.0))
    source = SimulatedSource(traces=traces)

    pipeline = StreamingPipeline(
        source=source,
        dispatcher=BatchDispatcher(identifier, max_batch=4, cache=coordinator.make_cache()),
        assembler=ShardedFingerprintAssembler(shards=4),
        on_identified=sink,
        clock=clock,
        observability=hub,
    )
    stats = pipeline.run()
    print(f"   {stats.summary()}")
    print(f"   quarantined unknowns: {len(coordinator.quarantine)}")

    print("== 4. Autopilot: learn the unknown model, then promote the label ==")
    decisions = autopilot.poll(now=pipeline.clock.now())
    for decision in decisions:
        print(f"   {decision.action}: {decision.proposal.label} "
              f"(cluster of {decision.proposal.cluster_size})")
    for decision in decisions:
        if decision.action == "learned":
            upgraded = autopilot.promote(decision.proposal.label)
            print(f"   promoted {decision.proposal.label}: {upgraded} rules relaxed")

    print("== 5. The gateway explains itself ==")
    snapshot = hub.snapshot()
    snapshot_path = args.out / "snapshot.json"
    snapshot_path.write_text(hub.snapshot_json() + "\n", encoding="utf-8")
    for key in (
        "ledger.verdict_records",
        "ledger.enforcement_records",
        "ledger.quarantine_records",
        "ledger.learn_records",
        "ledger.promotion_records",
        "identification_cache.hit_rate",
        "rule_cache.hit_rate",
        "cache_epoch.generation",
    ):
        print(f"   {key} = {snapshot[key]}")
    ledger.close()

    replay = replay_ledger(ledger.path)
    print(f"   ledger: {len(replay.records)} records across {len(replay.files)} file(s)")
    mac = str(unknown.device_mac)
    print(f"   evidence trail of {mac}:")
    for record in replay.for_mac(mac):
        extra = record.enforcement_action or record.detail.get("transition") or record.verdict
        print(f"     #{record.sequence:<3} {record.kind:<12} {extra}")
    print(f"   artifacts: {ledger.path}, {snapshot_path}")


if __name__ == "__main__":
    main()
