#!/usr/bin/env python3
"""The online-learning lifecycle: quarantine -> learn -> re-identify -> enforce.

IoT SENTINEL's per-type classifier bank grows one classifier at a time as
new device models appear -- but a runtime registration only stays honest
if every consumer of identification verdicts is brought along: the
dispatcher's result cache must stop serving pre-learning verdicts,
devices quarantined under strict isolation must be re-identified and
their gateway rules upgraded, and model-store snapshots must be re-rolled
so a reloaded bundle matches the live bank.  This demo runs that whole
lifecycle:

1. train the identifier on a fleet that does *not* include HomeMatic
   plugs;
2. stream a mixed fleet through the gateway -- the HomeMatic plugs
   identify as unknown and are parked under strict isolation, their
   fingerprints retained in the quarantine log;
3. register the missing type through the lifecycle coordinator: the new
   classifier is trained incrementally, every verdict cache is
   invalidated (epoch bump + clear), the quarantined fleet is batch
   re-identified and its strict rules replaced with the assessed
   isolation levels, and a fresh epoch-stamped model snapshot is rolled;
4. show that a pre-learning snapshot is rejected as stale while the
   fresh one reloads to the live verdicts.

Run with ``python examples/online_learning.py``.
"""

import tempfile
from pathlib import Path

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.exceptions import ModelStoreError
from repro.features import Fingerprint
from repro.gateway import SecurityGateway
from repro.identification import DeviceTypeIdentifier, LifecycleCoordinator, bundle_epoch
from repro.security_service import IoTSecurityService
from repro.streaming import (
    BatchDispatcher,
    GatewayEnforcementSink,
    SimulatedSource,
    StreamingPipeline,
)

KNOWN_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110"]
UNKNOWN_TYPE = "HomeMaticPlug"
UNKNOWN_DEVICES = 3


def print_fleet(gateway: SecurityGateway) -> None:
    for record in sorted(gateway.devices.values(), key=lambda r: str(r.mac)):
        print(
            f"   {str(record.mac):18s} {record.device_type:16s} "
            f"{record.isolation_level.value}"
        )


def main() -> None:
    print("== 1. Training on the initially known device-types ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=KNOWN_TYPES, seed=3)
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=3)
    print(f"   known: {', '.join(identifier.known_device_types)}")

    store_dir = Path(tempfile.mkdtemp(prefix="iot-sentinel-lifecycle-"))
    service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(security_service=service)
    coordinator = LifecycleCoordinator(
        identifier=identifier, store_path=store_dir / "model.npz"
    )
    sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, lifecycle=coordinator
    )
    coordinator.sink = sink
    dispatcher = BatchDispatcher(identifier, max_batch=8, cache=coordinator.make_cache())

    print("== 2. A mixed fleet joins; the HomeMatic plugs are unknown ==")
    simulator = SetupTrafficSimulator(seed=7)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(KNOWN_TYPES)
    ]
    for index in range(UNKNOWN_DEVICES):
        traces.append(
            simulator.simulate(
                DEVICE_CATALOG[UNKNOWN_TYPE], start_time=20.0 + index * 3.0
            )
        )
    pipeline = StreamingPipeline(
        source=SimulatedSource(traces=traces), dispatcher=dispatcher, on_identified=sink
    )
    pipeline.run()
    print_fleet(gateway)
    print(f"   quarantined: {len(coordinator.quarantine)} device(s)")

    stale_snapshot = coordinator.save_snapshot(store_dir / "pre_learning.npz")

    print("== 3. The IoTSSP learns the missing type; coherence is restored ==")
    training = [
        Fingerprint.from_packets(trace.packets, device_type=UNKNOWN_TYPE)
        for trace in simulator.simulate_many(DEVICE_CATALOG[UNKNOWN_TYPE], 10)
    ]
    report = coordinator.learn_device_type(UNKNOWN_TYPE, training)
    print(
        f"   epoch {report.generation}: re-identified {report.quarantined} quarantined "
        f"device(s) at {report.devices_per_second:,.0f} devices/s"
    )
    print(f"   upgraded: {len(report.upgraded)}, still unknown: {len(report.still_unknown)}")
    print(f"   WPS re-keys so far: {gateway.wps.rekey_count}")
    print_fleet(gateway)

    print("== 4. Snapshots know which epoch they belong to ==")
    print(f"   pre-learning bundle epoch:  {bundle_epoch(stale_snapshot)!r}")
    print(f"   post-learning bundle epoch: {bundle_epoch(report.snapshot_path)!r}")
    try:
        coordinator.load_snapshot(stale_snapshot)
    except ModelStoreError as error:
        print(f"   stale bundle rejected: {error}")
    reloaded = coordinator.load_snapshot()
    probe = Fingerprint.from_packets(
        simulator.simulate(DEVICE_CATALOG[UNKNOWN_TYPE]).packets
    )
    print(
        f"   fresh bundle serves the live verdict: "
        f"{reloaded.identify(probe).device_type}"
    )


if __name__ == "__main__":
    main()
