#!/usr/bin/env python3
"""Working with pcap capture files and persisted fingerprint datasets.

The public IoT SENTINEL dataset ships as one pcap per device setup run,
organised in one directory per device-type.  This example recreates that
layout with simulated traffic, ingests it with the pcap pipeline, persists
the extracted fingerprints as JSON and evaluates identification accuracy on
the reloaded dataset -- exactly the workflow one would use with the real
captures.

Run with ``python examples/pcap_workflow.py``.
"""

import tempfile
from pathlib import Path

from repro.datasets import DatasetBuilder, load_fingerprints, save_fingerprints
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.eval import evaluate_identification
from repro.eval.reporting import format_fig5
from repro.net.pcap import write_pcap

DEVICE_TYPES = ["Aria", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110", "TP-LinkPlugHS100"]
RUNS_PER_TYPE = 8


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="iot-sentinel-pcap-"))
    capture_root = workdir / "captures"

    print(f"== 1. Writing {RUNS_PER_TYPE} pcap captures per device-type to {capture_root} ==")
    simulator = SetupTrafficSimulator(seed=5)
    for name in DEVICE_TYPES:
        type_dir = capture_root / name
        type_dir.mkdir(parents=True)
        for run in range(RUNS_PER_TYPE):
            trace = simulator.simulate(DEVICE_CATALOG[name])
            write_pcap(type_dir / f"setup_{run:02d}.pcap", trace.packets)
    pcap_count = len(list(capture_root.glob("*/*.pcap")))
    print(f"   wrote {pcap_count} capture files")

    print("== 2. Ingesting the capture directory ==")
    dataset = DatasetBuilder().build_from_pcap_directory(capture_root)
    print(f"   extracted {len(dataset)} fingerprints: {dataset.counts()}")

    print("== 3. Persisting and reloading the fingerprint dataset as JSON ==")
    dataset_path = workdir / "fingerprints.json"
    save_fingerprints(dataset_path, dataset)
    reloaded = load_fingerprints(dataset_path)
    print(f"   {dataset_path} ({dataset_path.stat().st_size // 1024} KiB), {len(reloaded)} fingerprints")

    print("== 4. Cross-validated identification on the reloaded dataset ==")
    evaluation = evaluate_identification(reloaded, n_splits=4, random_state=0)
    print(format_fig5(evaluation.per_type_accuracy, evaluation.overall_accuracy))
    print(f"   fingerprints needing edit-distance discrimination: "
          f"{evaluation.discrimination_fraction:.0%}")


if __name__ == "__main__":
    main()
