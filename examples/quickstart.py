#!/usr/bin/env python3
"""Quickstart: fingerprint one IoT device's setup traffic and identify its type.

The script mirrors the paper's core loop end to end:

1. build a training set of fingerprints for a handful of device-types by
   simulating their setup procedures (stand-in for the lab captures);
2. train one Random-Forest classifier per device-type;
3. simulate a brand-new device joining the network;
4. identify its device-type from the captured setup packets.

Run with ``python examples/quickstart.py``.
"""

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.features import Fingerprint
from repro.identification import DeviceTypeIdentifier


def main() -> None:
    device_types = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110"]

    print("== 1. Building the training dataset (simulated lab captures) ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=device_types, seed=0)
    print(f"   {len(dataset)} fingerprints for {len(dataset.device_types)} device-types")

    print("== 2. Training one classifier per device-type ==")
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=0)
    print(f"   known device-types: {', '.join(identifier.known_device_types)}")

    print("== 3. A new device joins the network and performs its setup ==")
    simulator = SetupTrafficSimulator(seed=42)
    trace = simulator.simulate(DEVICE_CATALOG["EdnetCam"])
    print(f"   captured {len(trace)} setup packets from {trace.device_mac}")
    for packet in trace.packets[:6]:
        print(f"     {packet.summary}")
    print("     ...")

    print("== 4. Identifying the device-type from its fingerprint ==")
    fingerprint = Fingerprint.from_packets(trace.packets)
    result = identifier.identify(fingerprint)
    print(f"   classifiers that accepted the fingerprint: {list(result.matched_types)}")
    print(f"   identified device-type: {result.device_type}")
    print(f"   ground truth:           {trace.device_type}")
    print(f"   identification time:    {result.total_seconds * 1000:.2f} ms")


if __name__ == "__main__":
    main()
