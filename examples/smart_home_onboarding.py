#!/usr/bin/env python3
"""Smart-home onboarding: the full IoT SENTINEL loop with security enforcement.

A Security Gateway watches a (simulated) home network.  Several consumer IoT
devices are connected one after the other; for each one the gateway captures
the setup traffic, asks the IoT Security Service for an assessment and
enforces the returned isolation level (trusted / restricted / strict) with
per-device rules on its software switch.  Finally a few packets are pushed
through the datapath to show the policy in action.

Run with ``python examples/smart_home_onboarding.py``.
"""

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.eval.reporting import format_table
from repro.gateway import SecurityGateway
from repro.identification import DeviceTypeIdentifier
from repro.net.addresses import MACAddress
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPv4Header, PROTO_TCP
from repro.net.layers.tcp import TCPSegment
from repro.net.packet import Packet
from repro.security_service import IoTSecurityService


def make_tcp_packet(src_mac, dst_mac, src_ip, dst_ip, dst_port=443):
    """A minimal TCP probe packet between two endpoints."""
    return Packet(
        ethernet=EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE.IPV4),
        ipv4=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP),
        tcp=TCPSegment(src_port=51000, dst_port=dst_port),
    )

TRAINING_TYPES = [
    "Aria",
    "HueBridge",
    "EdnetCam",
    "EdimaxCam",
    "WeMoSwitch",
    "D-LinkCam",
    "TP-LinkPlugHS110",
    "SmarterCoffee",
]

NEW_DEVICES = ["Aria", "EdnetCam", "D-LinkCam", "MAXGateway"]


def main() -> None:
    print("== Training the IoT Security Service ==")
    dataset = generate_fingerprint_dataset(runs_per_type=20, device_names=TRAINING_TYPES, seed=1)
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=1)
    service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(security_service=service)
    simulator = SetupTrafficSimulator(environment=service.environment, seed=99)

    print("== Onboarding devices through the Security Gateway ==")
    records = []
    for name in NEW_DEVICES:
        trace = simulator.simulate(DEVICE_CATALOG[name])
        record = gateway.onboard_device(trace.packets)
        records.append((name, record))

    rows = []
    for actual, record in records:
        rows.append(
            (
                actual,
                record.device_type,
                record.isolation_level.value,
                record.overlay.value,
                len(record.enforcement_rule.allowed_destinations) if record.enforcement_rule else 0,
                record.vulnerability_count,
            )
        )
    print(
        format_table(
            ["actual device", "identified as", "isolation", "overlay", "allowed dst", "vulns"], rows
        )
    )

    print()
    print("== Enforcement in action ==")
    external = MACAddress.from_string("02:ee:ee:ee:ee:01")
    restricted = next(
        (record for _, record in records if record.isolation_level.value == "restricted"), None
    )
    trusted = next(
        (record for _, record in records if record.isolation_level.value == "trusted"), None
    )
    strict = next(
        (record for _, record in records if record.isolation_level.value == "strict"), None
    )

    probes = []
    if restricted is not None and restricted.enforcement_rule.allowed_destinations:
        probes.append(
            ("restricted device -> its vendor cloud",
             make_tcp_packet(restricted.mac, external, restricted.ip_address,
                             restricted.enforcement_rule.allowed_destinations[0], dst_port=443))
        )
        probes.append(
            ("restricted device -> arbitrary internet host",
             make_tcp_packet(restricted.mac, external, restricted.ip_address, "8.8.8.8", dst_port=80))
        )
    if trusted is not None:
        probes.append(
            ("trusted device -> arbitrary internet host",
             make_tcp_packet(trusted.mac, external, trusted.ip_address, "93.184.216.34", dst_port=443))
        )
    if trusted is not None and restricted is not None:
        probes.append(
            ("trusted device -> untrusted (restricted) device",
             make_tcp_packet(trusted.mac, restricted.mac, trusted.ip_address,
                             restricted.ip_address, dst_port=80))
        )
    if strict is not None:
        probes.append(
            ("strict (unknown) device -> internet host",
             make_tcp_packet(strict.mac, external, strict.ip_address, "1.1.1.1", dst_port=443))
        )
    for label, packet in probes:
        decision = gateway.authorize(packet)
        verdict = "ALLOW" if decision.allowed else "BLOCK"
        print(f"   [{verdict}] {label}  ({decision.reason})")

    if gateway.notifications:
        print()
        print("== User notifications ==")
        for note in gateway.notifications:
            print(f"   ! {note}")

    print()
    print(f"Switch flow rules installed: {gateway.switch.rule_count}")
    print(f"Enforcement rules cached:    {len(gateway.rule_cache)}")
    print(f"Gateway processing delay:    {gateway.processing_delay_ms():.2f} ms per traversal")


if __name__ == "__main__":
    main()
