#!/usr/bin/env python3
"""Online identification at the Security Gateway, packet by packet.

Where ``quickstart.py`` identifies one pre-captured fingerprint offline,
this demo runs the full streaming dataflow of the paper's gateway:

1. train the identifier on simulated lab captures;
2. let a fleet of devices (including two identical models joining later)
   perform their setup procedures, interleaved on the wire;
3. stand the whole serving stack up from one declarative
   :class:`~repro.api.GatewayConfig` -- assembler, dispatcher, cache,
   enforcement sink and observability are wired by ``build_gateway``;
4. enforce each verdict on the Security Gateway the moment it is ready.

Run with ``python examples/streaming_gateway.py``.
"""

from repro import GatewayConfig, build_gateway
from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.identification import DeviceTypeIdentifier
from repro.net.addresses import MACAddress
from repro.streaming import SimulatedSource, replay_trace

DEVICE_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110"]


def main() -> None:
    print("== 1. Training the identifier (simulated lab captures) ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=DEVICE_TYPES, seed=0)
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=0)
    print(f"   known device-types: {', '.join(identifier.known_device_types)}")

    print("== 2. A fleet of devices joins the network ==")
    simulator = SetupTrafficSimulator(seed=42)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(DEVICE_TYPES * 2)
    ]
    quiet = max(packet.timestamp for trace in traces for packet in trace.packets)
    # Two more Hue bridges of the same model join once the fleet is quiet.
    hue = next(trace for trace in traces if trace.device_type == "HueBridge")
    for index in range(2):
        mac = MACAddress.from_string(f"00:17:88:00:00:{index + 1:02x}")
        traces.append(replay_trace(hue, mac, quiet + 30.0 + index * 2.0))
    source = SimulatedSource(traces=traces)
    print(f"   {len(traces)} devices, {len(source)} packets on the wire")

    print("== 3. One config, one call: the assembled serving stack ==")
    handle = build_gateway(
        GatewayConfig(identifier=identifier, source=source, max_batch=4, shards=4)
    )
    for identified in handle.stream():
        origin = "cache " if identified.from_cache else "forest"
        record = handle.gateway.device_record(identified.mac)
        print(
            f"   [{origin}] {identified.mac} -> {identified.result.device_type:<18}"
            f" isolation={record.isolation_level.name.lower()}"
        )

    print("== 4. Pipeline statistics ==")
    stats = handle.pipeline.stats
    print(f"   {stats.summary()}")
    print(f"   cache hit rate:    {stats.cache_hit_rate:.0%}")
    print(f"   rules enforced:    {handle.sink.enforced}")
    print(f"   devices known to the gateway: {handle.gateway.connected_device_count}")


if __name__ == "__main__":
    main()
