#!/usr/bin/env python3
"""Train once, save, and serve identifications from a fresh process.

The paper's deployment splits roles: the IoT Security Service trains the
per-device-type classifiers from lab captures, while every home gateway
only *serves* them.  This script walks that lifecycle end to end:

1. train a two-stage identifier (classifier bank + discrimination
   references) on simulated lab captures;
2. save the whole trained stack to one versioned ``.npz`` bundle with
   :func:`repro.save_identifier` -- the forests are stored in their
   compiled (flattened-array) form, no retraining material needed;
3. reload the bundle the way a gateway process would with
   :func:`repro.load_identifier` and verify the verdicts match;
4. serve a batch of new devices through the reloaded identifier's
   vectorized batch path.

Run with ``python examples/train_save_serve.py``.
"""

import tempfile
import time
from pathlib import Path

from repro.datasets import generate_fingerprint_dataset
from repro.devices import DEVICE_CATALOG, SetupTrafficSimulator
from repro.features import Fingerprint
from repro.identification import DeviceTypeIdentifier, load_identifier, save_identifier


def main() -> None:
    device_types = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch", "TP-LinkPlugHS110", "D-LinkCam"]

    print("== 1. Training (the Security Service side, done once) ==")
    dataset = generate_fingerprint_dataset(runs_per_type=10, device_names=device_types, seed=0)
    start = time.perf_counter()
    identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=0)
    train_seconds = time.perf_counter() - start
    print(f"   trained {len(identifier.known_device_types)} classifiers "
          f"in {train_seconds:.2f}s")

    print("== 2. Saving the trained stack to a model bundle ==")
    bundle = Path(tempfile.mkdtemp()) / "iot-sentinel-model.npz"
    save_identifier(bundle, identifier)
    print(f"   wrote {bundle} ({bundle.stat().st_size / 1024:.0f} KiB)")

    print("== 3. Loading in the serving process (a gateway, every boot) ==")
    start = time.perf_counter()
    served = load_identifier(bundle)
    load_seconds = time.perf_counter() - start
    print(f"   loaded {len(served.known_device_types)} compiled classifiers "
          f"in {load_seconds * 1000:.1f} ms "
          f"({train_seconds / load_seconds:.0f}x faster than retraining)")

    print("== 4. Serving: a fleet of new devices joins the network ==")
    simulator = SetupTrafficSimulator(seed=42)
    fingerprints = []
    truths = []
    for index in range(12):
        profile = DEVICE_CATALOG[device_types[index % len(device_types)]]
        trace = simulator.simulate(profile)
        fingerprints.append(Fingerprint.from_packets(trace.packets))
        truths.append(trace.device_type)
    start = time.perf_counter()
    results = served.identify_many(fingerprints)
    serve_seconds = time.perf_counter() - start
    correct = sum(
        1 for result, truth in zip(results, truths) if result.device_type == truth
    )
    print(f"   identified {len(results)} devices in {serve_seconds * 1000:.1f} ms "
          f"({correct}/{len(results)} correct)")
    for result, truth in zip(results[:6], truths[:6]):
        marker = "ok " if result.device_type == truth else "MISS"
        print(f"     [{marker}] predicted {result.device_type:<18} truth {truth}")
    print("     ...")


if __name__ == "__main__":
    main()
