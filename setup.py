"""Legacy setup shim: the environment has no `wheel` package, so editable
installs fall back to `python setup.py develop`, which this file enables.
All real packaging metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
