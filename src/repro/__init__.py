"""Reproduction of IoT SENTINEL (Miettinen et al., ICDCS 2017).

The package is organised in layers that mirror the paper's system design:

* :mod:`repro.net` -- packet dissection/serialisation and pcap I/O
  (stand-in for scapy, which is not available offline).
* :mod:`repro.features` -- the 23 per-packet features of Table I and the
  variable-length / fixed-length device fingerprints ``F`` and ``F'``.
* :mod:`repro.ml` -- CART decision trees, Random Forests, cross-validation
  and metrics (stand-in for scikit-learn).
* :mod:`repro.distance` -- Damerau-Levenshtein edit distance over packet
  sequences used by the discrimination stage.
* :mod:`repro.identification` -- the two-stage device-type identification
  pipeline (one binary classifier per device-type + edit-distance
  discrimination), plus the online-learning lifecycle: unknown-device
  quarantine, epoch-based cache invalidation and fleet re-identification
  when a device-type is registered at runtime.
* :mod:`repro.devices` -- behaviour profiles and setup-traffic simulation
  for the 27 device-types of Table II.
* :mod:`repro.datasets` -- fingerprint dataset construction and persistence.
* :mod:`repro.streaming` -- the online identification pipeline: packet
  sources, sharded incremental fingerprint assembly, batched/cached
  dispatch and the bridge into gateway enforcement.
* :mod:`repro.sdn`, :mod:`repro.gateway`, :mod:`repro.security_service` --
  the enforcement half of the paper: OpenFlow-like switch and controller,
  Security Gateway with enforcement-rule cache and isolation overlays, and
  the IoT Security Service with its vulnerability repository.
* :mod:`repro.simulation` -- simulated clock, latency and resource models
  used by the enforcement evaluation.
* :mod:`repro.obs` -- the observability surface: an append-only,
  schema-versioned evidence ledger of every verdict and lifecycle event,
  and a unified metrics registry behind one ``snapshot()``.
* :mod:`repro.api` -- the declarative gateway-construction facade:
  :class:`~repro.api.GatewayConfig` in, fully wired
  :class:`~repro.api.GatewayHandle` out.
* :mod:`repro.fleet` -- epoch-coordinated multi-gateway serving: the
  model-distribution channel, hot bundle swaps and the fleet health /
  convergence view.
* :mod:`repro.eval` -- experiment runners that regenerate every table and
  figure of the paper's evaluation section.
* :mod:`repro.scenarios` -- hostile-campaign harness: seeded adversarial
  and churn scenarios (mimicry, MAC-randomization storms, firmware drift,
  DHCP churn, burst overload) scored against the evidence ledger, with
  byte-deterministic per-scenario artifacts.

The most commonly used entry points of every layer are re-exported here;
``from repro import GatewayConfig, build_gateway`` is the intended way
to stand up a serving gateway, and
``from repro import DeviceTypeIdentifier, StreamingPipeline`` the way to
reach the underlying layers.
"""

from repro.api import GatewayConfig, GatewayHandle, SwapReport, build_gateway
from repro.exceptions import ConfigError, FleetError
from repro.features.fingerprint import Fingerprint, fingerprint_from_packets
from repro.fleet import (
    BundleSubscriber,
    ConvergenceReport,
    FleetCoordinator,
    FleetHealthView,
    GatewayHealth,
    PushRecord,
)
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.autopilot import (
    LearnProposal,
    LifecycleAutopilot,
    ReprofileReport,
    ReprofileScheduler,
    TriggerPolicy,
)
from repro.identification.identifier import (
    DeviceTypeIdentifier,
    IdentificationResult,
    UNKNOWN_DEVICE_TYPE,
)
from repro.identification.lifecycle import (
    CacheEpoch,
    LifecycleCoordinator,
    QuarantineLog,
    RelearnReport,
    load_quarantine_log,
    save_quarantine_log,
)
from repro.identification.model_store import (
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)
from repro.identification.registry import FingerprintRegistry
from repro.obs import (
    EvidenceRecord,
    MetricsRegistry,
    Observability,
    VerdictLedger,
    replay_ledger,
)
from repro.security_service.service import IoTSecurityService, SecurityAssessment
from repro.streaming import (
    BatchDispatcher,
    GatewayEnforcementSink,
    IdentificationCache,
    IdentifiedDevice,
    PacketSource,
    PcapReplaySource,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "build_gateway",
    "BundleSubscriber",
    "ConfigError",
    "ConvergenceReport",
    "FleetCoordinator",
    "FleetError",
    "FleetHealthView",
    "GatewayConfig",
    "GatewayHandle",
    "GatewayHealth",
    "PushRecord",
    "SwapReport",
    "Fingerprint",
    "fingerprint_from_packets",
    "SecurityGateway",
    "DeviceTypeIdentifier",
    "IdentificationResult",
    "UNKNOWN_DEVICE_TYPE",
    "CacheEpoch",
    "LearnProposal",
    "LifecycleAutopilot",
    "LifecycleCoordinator",
    "QuarantineLog",
    "RelearnReport",
    "ReprofileReport",
    "ReprofileScheduler",
    "TriggerPolicy",
    "FingerprintRegistry",
    "load_bank",
    "load_identifier",
    "load_quarantine_log",
    "save_bank",
    "save_identifier",
    "save_quarantine_log",
    "EvidenceRecord",
    "MetricsRegistry",
    "Observability",
    "VerdictLedger",
    "replay_ledger",
    "IoTSecurityService",
    "SecurityAssessment",
    "BatchDispatcher",
    "GatewayEnforcementSink",
    "IdentificationCache",
    "IdentifiedDevice",
    "PacketSource",
    "PcapReplaySource",
    "ShardedFingerprintAssembler",
    "SimulatedSource",
    "StreamingPipeline",
]
