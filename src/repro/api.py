"""The gateway-construction facade: one config, one call, one handle.

Standing up a gateway used to mean hand-wiring seven constructors --
``PacketSource`` -> :class:`~repro.streaming.assembler.ShardedFingerprintAssembler`
-> :class:`~repro.streaming.dispatcher.BatchDispatcher`
-> :class:`~repro.streaming.pipeline.StreamingPipeline`
-> :class:`~repro.streaming.pipeline.GatewayEnforcementSink`
-> :class:`~repro.identification.lifecycle.LifecycleCoordinator`
-> :class:`~repro.identification.autopilot.LifecycleAutopilot` -- each
threading ``observability=`` / ``lifecycle=`` / ``clock=`` keyword
arguments, with half a dozen cross-references (sink to coordinator,
coordinator back to sink, gateway to lifecycle, cache to epoch) that are
easy to forget and silent when missed.  An N-gateway fleet multiplied
that pain by N.

This module replaces the hand-wiring with a declarative
:class:`GatewayConfig` and a :func:`build_gateway` call that assembles
the whole stack -- validated, fully cross-wired, the observability hub
single-sourced through every layer.  The existing constructors are
unchanged underneath: anything the facade builds can still be built (or
post-tweaked) by hand, and the returned :class:`GatewayHandle` exposes
every component it assembled.

The handle is also the *fleet unit*: :meth:`GatewayHandle.swap_bundle`
is the hot model swap a :class:`~repro.fleet.FleetCoordinator` push
lands on, installing a new identifier between batches without dropping
in-flight fingerprints and adopting the bundle's epoch watermark across
the dispatcher cache, the lifecycle coordinator and the security
service in one atomic step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.exceptions import ConfigError, FleetError, ObservabilityError
from repro.features.fingerprint import Fingerprint
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.autopilot import LifecycleAutopilot, TriggerPolicy
from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.lifecycle import CacheEpoch, LifecycleCoordinator
from repro.identification.model_store import load_identifier_with_epoch
from repro.net.addresses import MACAddress
from repro.obs.hub import Observability
from repro.obs.ledger import VerdictLedger
from repro.security_service.service import IoTSecurityService
from repro.simulation.clock import SimulatedClock
from repro.streaming.assembler import ReadyFingerprint, ShardedFingerprintAssembler
from repro.streaming.backpressure import BackpressurePolicy
from repro.streaming.dispatcher import BatchDispatcher, IdentificationCache, IdentifiedDevice
from repro.streaming.pipeline import GatewayEnforcementSink, PipelineStats, StreamingPipeline
from repro.streaming.sources import IterableSource, PacketSource


@dataclass
class GatewayConfig:
    """Everything :func:`build_gateway` needs, validated before wiring.

    Exactly one model source must be set: ``identifier`` (an in-memory
    trained identifier), ``bundle_path`` (load from a model-store
    bundle, adopting its epoch stamp), or ``resume=True`` with
    ``store_path`` (rebuild lifecycle state persisted by a previous
    process, quarantine log included).

    Attributes:
        identifier: a trained two-stage identifier to serve.
        bundle_path: a model-store bundle to load and serve; its epoch
            stamp becomes the gateway's starting cache generation.
        resume: rebuild from ``store_path`` (+ ``quarantine_path``) via
            :meth:`LifecycleCoordinator.resume` -- the restart path.
        name: the gateway's name (ledger apply records and fleet health
            rows are keyed by it).
        source: optional packet source consumed by
            :meth:`GatewayHandle.run_until_idle`; one can also be passed
            per run.
        max_batch: fingerprints per classifier-bank invocation.
        queue_capacity: bounded staging queue in front of the dispatcher.
        backpressure: ``"block"`` or ``"drop"`` (or a
            :class:`~repro.streaming.backpressure.BackpressurePolicy`).
        cache_capacity: LRU verdict-cache entries; ``0`` disables caching.
        use_discrimination: forward the edit-distance stage flag.
        max_linger: stream-seconds a queued fingerprint may wait before a
            partial batch is forced.
        shards: fingerprint-assembler shard count.
        eviction_interval: stream-seconds between idle-eviction sweeps.
        sticky: enforcement stickiness (unknown verdicts never downgrade
            an identified device).
        lifecycle: build a :class:`LifecycleCoordinator` (quarantine,
            epoch coherence, runtime learning).  Required by
            ``autopilot`` and by fleet membership.
        store_path: model snapshots land here after every learn (and
            ``resume`` reads from here).
        quarantine_path: write-through quarantine persistence.
        autopilot: build a :class:`LifecycleAutopilot` over the
            coordinator.
        trigger_policy: autopilot trigger knobs (defaults to
            :class:`TriggerPolicy`'s defaults).
        observability: build an :class:`Observability` hub and
            single-source it through every layer.  Without it there is
            no ``snapshot()`` and no ledger.
        ledger_path: when set (requires ``observability``), evidence
            records are written to this NDJSON ledger.
        ledger_max_bytes: ledger rotation threshold.
        clock: shared stream clock for the pipeline *and* the gateway
            (one clock means verdict and enforcement ledger stamps
            agree); a fresh one is created when omitted.
    """

    identifier: Optional[DeviceTypeIdentifier] = None
    bundle_path: Optional[Union[str, Path]] = None
    resume: bool = False
    name: str = "gateway"
    source: Optional[PacketSource] = None
    # Dispatch stage.
    max_batch: int = 16
    queue_capacity: int = 64
    backpressure: Union[str, BackpressurePolicy] = BackpressurePolicy.BLOCK
    cache_capacity: int = 512
    use_discrimination: bool = True
    max_linger: float = 5.0
    # Assembly stage.
    shards: int = 4
    eviction_interval: float = 1.0
    # Enforcement.
    sticky: bool = True
    # Lifecycle.
    lifecycle: bool = True
    store_path: Optional[Union[str, Path]] = None
    quarantine_path: Optional[Union[str, Path]] = None
    # Autopilot.
    autopilot: bool = False
    trigger_policy: Optional[TriggerPolicy] = None
    # Observability.
    observability: bool = True
    ledger_path: Optional[Union[str, Path]] = None
    ledger_max_bytes: int = 4 * 1024 * 1024
    ledger_max_files: int = 4
    clock: Optional[SimulatedClock] = None

    def resolved_policy(self) -> BackpressurePolicy:
        if isinstance(self.backpressure, BackpressurePolicy):
            return self.backpressure
        try:
            return BackpressurePolicy[str(self.backpressure).upper()]
        except KeyError:
            raise ConfigError(
                f"backpressure: unknown policy {self.backpressure!r} "
                f"(expected one of {[p.name.lower() for p in BackpressurePolicy]})"
            ) from None

    def validate(self) -> None:
        """Raise :class:`ConfigError` naming every offending field."""
        problems: list[str] = []
        model_sources = [
            self.identifier is not None,
            self.bundle_path is not None,
            self.resume,
        ]
        if sum(model_sources) == 0:
            problems.append(
                "identifier/bundle_path/resume: set exactly one model source "
                "(an identifier, a bundle to load, or resume=True)"
            )
        elif sum(model_sources) > 1:
            problems.append(
                "identifier/bundle_path/resume: these are mutually exclusive; "
                "set exactly one model source"
            )
        if self.resume:
            if self.store_path is None:
                problems.append("store_path: resume=True reads the bundle from store_path")
            if not self.lifecycle:
                problems.append("lifecycle: resume=True rebuilds lifecycle state; set lifecycle=True")
        if not self.name:
            problems.append("name: must be non-empty")
        if self.max_batch <= 0:
            problems.append(f"max_batch: must be positive, got {self.max_batch}")
        if self.queue_capacity <= 0:
            problems.append(f"queue_capacity: must be positive, got {self.queue_capacity}")
        if self.cache_capacity < 0:
            problems.append(f"cache_capacity: must be >= 0 (0 disables), got {self.cache_capacity}")
        if self.max_linger < 0:
            problems.append(f"max_linger: must be non-negative, got {self.max_linger}")
        if self.shards <= 0:
            problems.append(f"shards: must be positive, got {self.shards}")
        if self.eviction_interval <= 0:
            problems.append(
                f"eviction_interval: must be positive, got {self.eviction_interval}"
            )
        if self.autopilot and not self.lifecycle:
            problems.append("autopilot: requires lifecycle=True (the coordinator it drives)")
        if self.trigger_policy is not None and not self.autopilot:
            problems.append("trigger_policy: set autopilot=True to use it")
        if self.ledger_path is not None and not self.observability:
            problems.append("ledger_path: requires observability=True (the hub owns the ledger)")
        if self.ledger_max_bytes <= 0:
            problems.append(f"ledger_max_bytes: must be positive, got {self.ledger_max_bytes}")
        if self.ledger_max_files <= 0:
            problems.append(f"ledger_max_files: must be positive, got {self.ledger_max_files}")
        if not isinstance(self.backpressure, BackpressurePolicy):
            try:
                self.resolved_policy()
            except ConfigError as error:
                problems.append(str(error))
        if problems:
            raise ConfigError("invalid GatewayConfig: " + "; ".join(problems))


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`GatewayHandle.swap_bundle` call did."""

    applied: bool
    epoch: int
    revision: int
    previous_epoch: int
    previous_revision: int
    reason: str = ""


@dataclass
class GatewayHandle:
    """One assembled gateway: every component, plus the operating surface.

    Built only by :func:`build_gateway`.  The operating surface is four
    calls -- :meth:`run_until_idle`, :meth:`swap_bundle`,
    :meth:`snapshot`, :meth:`close` -- with :meth:`stream` and
    :meth:`identify` as finer-grained variants; the assembled components
    stay reachable as attributes for tests and advanced tooling.
    """

    config: GatewayConfig
    identifier: DeviceTypeIdentifier
    gateway: SecurityGateway
    security_service: IoTSecurityService
    sink: GatewayEnforcementSink
    dispatcher: BatchDispatcher
    assembler: ShardedFingerprintAssembler
    clock: SimulatedClock
    cache: Optional[IdentificationCache] = None
    lifecycle: Optional[LifecycleCoordinator] = None
    autopilot: Optional[LifecycleAutopilot] = None
    observability: Optional[Observability] = None
    pipeline: Optional[StreamingPipeline] = None
    applied_swaps: int = 0
    duplicate_swaps: int = 0
    _closed: bool = field(default=False, repr=False)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def epoch(self) -> int:
        """The cache generation this gateway is serving at."""
        if self.lifecycle is not None:
            return self.lifecycle.epoch.generation
        if self.cache is not None:
            return self.cache.epoch.generation
        return self._epoch.generation

    @property
    def revision(self) -> int:
        """The identifier revision this gateway is serving (the draw salt)."""
        return self.dispatcher.identifier.revision

    def __post_init__(self) -> None:
        # Epoch bookkeeping for the (cache-less, lifecycle-less) minimal
        # gateway, so swap_bundle still tracks the watermark it serves.
        self._epoch = CacheEpoch()

    # ------------------------------------------------------------------ #
    # Running.
    # ------------------------------------------------------------------ #
    def _build_pipeline(self, source: PacketSource) -> StreamingPipeline:
        self.pipeline = StreamingPipeline(
            source=source,
            dispatcher=self.dispatcher,
            assembler=self.assembler,
            on_identified=self.sink,
            clock=self.clock,
            eviction_interval=self.config.eviction_interval,
            observability=self.observability,
        )
        return self.pipeline

    def _resolve_source(self, source: Optional[PacketSource]) -> PacketSource:
        resolved = source if source is not None else self.config.source
        if resolved is None:
            raise ConfigError(
                "source: no packet source to run; set GatewayConfig.source "
                "or pass one to run_until_idle()/stream()"
            )
        return resolved

    def run_until_idle(self, source: Optional[PacketSource] = None) -> PipelineStats:
        """Consume a packet source to exhaustion and drain every verdict.

        Uses ``config.source`` unless one is passed.  Each call runs a
        fresh :class:`StreamingPipeline` over the shared warm components
        (assembler, dispatcher + cache, sink, clock, hub), so per-run
        stats start clean while caches stay hot -- the multi-run warm
        start the pipeline layer already supports, without the caller
        re-wiring anything.
        """
        return self._build_pipeline(self._resolve_source(source)).run()

    def stream(self, source: Optional[PacketSource] = None) -> Iterator[IdentifiedDevice]:
        """Like :meth:`run_until_idle` but yielding verdicts as they happen."""
        return self._build_pipeline(self._resolve_source(source)).results()

    def identify(
        self,
        mac: MACAddress,
        fingerprint: Fingerprint,
        reason: str = "budget",
        flush: bool = True,
    ) -> list[IdentifiedDevice]:
        """Identify one pre-assembled fingerprint through the full path.

        The operator-tool entry point: the fingerprint skips assembly but
        flows through dispatch, caching, the ledger and enforcement
        exactly like a streamed one.  With ``flush`` (default) the
        dispatcher is drained so the verdict is returned immediately
        instead of waiting for a full batch.
        """
        pipeline = self.pipeline if self.pipeline is not None else self._build_pipeline(
            IterableSource([])
        )
        ready = ReadyFingerprint(
            mac=mac, fingerprint=fingerprint, reason=reason, completed_at=self.clock.now()
        )
        identified = pipeline.inject(ready)
        if flush:
            identified = identified + pipeline.finish()
        return identified

    # ------------------------------------------------------------------ #
    # Hot model swap (the fleet push lands here).
    # ------------------------------------------------------------------ #
    def swap_bundle(
        self,
        bundle_path: Union[str, Path],
        epoch: Optional[int] = None,
        push_id: Optional[int] = None,
    ) -> SwapReport:
        """Install a pushed model bundle between batches (hot swap).

        Loads the bundle, then -- in one step from the serving path's
        point of view -- swaps the identifier into the dispatcher
        (in-flight fingerprints stay queued and are identified by the
        *new* model), adopts the epoch watermark into the lifecycle
        coordinator (every registered cache cleared, stale entries
        unreachable via the generation stamp) and repoints the security
        service, and records an epoch-stamped ``apply`` event in the
        evidence ledger.

        Idempotent: re-applying the bundle the gateway already serves
        (same epoch *and* same identifier revision) is a counted no-op
        (:attr:`duplicate_swaps`) -- a replayed push changes nothing.
        ``epoch`` overrides the bundle's own stamp (the rollback path
        re-publishes an old bundle under a fresh higher watermark).
        """
        identifier, stamped = load_identifier_with_epoch(bundle_path)
        target = epoch if epoch is not None else (stamped if stamped is not None else 0)
        previous_epoch = self.epoch
        previous_revision = self.revision

        if target == previous_epoch and identifier.revision == previous_revision:
            self.duplicate_swaps += 1
            self._record_apply(target, identifier.revision, applied=False,
                               push_id=push_id, reason="duplicate")
            return SwapReport(
                applied=False,
                epoch=previous_epoch,
                revision=previous_revision,
                previous_epoch=previous_epoch,
                previous_revision=previous_revision,
                reason="duplicate",
            )
        if target < previous_epoch:
            raise FleetError(
                f"gateway {self.name!r} serves epoch {previous_epoch}; bundle "
                f"{bundle_path} carries older epoch {target} -- roll back by "
                "re-publishing it under a fresh higher watermark "
                "(FleetCoordinator.rollback)"
            )
        if target == previous_epoch:
            raise FleetError(
                f"bundle {bundle_path} carries epoch {target}, which gateway "
                f"{self.name!r} already serves, but a different identifier "
                f"revision ({identifier.revision} vs {previous_revision}); "
                "re-stamp the bundle with a fresh epoch before pushing"
            )

        pipeline = self.pipeline if self.pipeline is not None else self._build_pipeline(
            IterableSource([])
        )
        pipeline.swap_identifier(identifier)
        if self.lifecycle is not None:
            self.lifecycle.adopt_identifier(identifier, target)
        else:
            self.adopt_epoch(target)
        self.security_service.identifier = identifier
        self.identifier = identifier
        self.applied_swaps += 1
        self._record_apply(target, identifier.revision, applied=True, push_id=push_id)
        return SwapReport(
            applied=True,
            epoch=target,
            revision=identifier.revision,
            previous_epoch=previous_epoch,
            previous_revision=previous_revision,
        )

    def adopt_epoch(self, generation: int) -> int:
        """Advance this gateway's cache generation to a fleet watermark.

        Routed through whichever layer owns the epoch here (lifecycle
        coordinator when present, else the dispatcher cache, else the
        handle's own bookkeeping counter); refuses to move backwards.
        """
        if self.lifecycle is not None:
            return self.lifecycle.adopt_epoch(generation)
        if self.cache is not None:
            return self.cache.epoch.advance_to(generation)
        return self._epoch.advance_to(generation)

    def _record_apply(
        self,
        epoch: int,
        revision: int,
        applied: bool,
        push_id: Optional[int],
        reason: str = "",
    ) -> None:
        if self.observability is not None:
            self.observability.record_apply(
                gateway=self.name,
                epoch=epoch,
                revision=revision,
                applied=applied,
                push_id=push_id,
                reason=reason,
                stream_time=self.clock.now(),
            )

    # ------------------------------------------------------------------ #
    # Reading and shutdown.
    # ------------------------------------------------------------------ #
    def snapshot(self, include_timings: bool = True) -> dict:
        """The gateway's unified metrics snapshot (requires observability)."""
        if self.observability is None:
            raise ObservabilityError(
                f"gateway {self.name!r} was built with observability=False; "
                "no snapshot surface exists"
            )
        return self.observability.snapshot(include_timings=include_timings)

    def close(self) -> None:
        """Flush and release durable resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.observability is not None and self.observability.ledger is not None:
            self.observability.ledger.close()


def build_gateway(config: GatewayConfig) -> GatewayHandle:
    """Assemble the seven-object gateway stack from one declarative config.

    Validates the config (:class:`ConfigError` names every bad field),
    then wires source -> assembler -> dispatcher -> pipeline -> sink ->
    lifecycle -> autopilot with the observability hub single-sourced
    through every constructor -- the cross-references the hand-wired
    path was prone to missing (sink <-> coordinator, gateway lifecycle
    attachment, cache <-> epoch) are always made.  The underlying
    constructors are unchanged; the facade only removes the wiring
    burden.
    """
    config.validate()
    policy = config.resolved_policy()

    hub: Optional[Observability] = None
    if config.observability:
        ledger = None
        if config.ledger_path is not None:
            ledger = VerdictLedger(
                config.ledger_path,
                max_bytes=config.ledger_max_bytes,
                max_files=config.ledger_max_files,
            )
        hub = Observability(ledger=ledger)

    clock = config.clock if config.clock is not None else SimulatedClock()

    coordinator: Optional[LifecycleCoordinator] = None
    if config.resume:
        coordinator = LifecycleCoordinator.resume(
            config.store_path,
            quarantine_path=config.quarantine_path,
            use_discrimination=config.use_discrimination,
        )
        if hub is not None:
            coordinator.observability = hub
            hub.register_lifecycle(coordinator)
        identifier = coordinator.identifier
        epoch = coordinator.epoch
    else:
        if config.bundle_path is not None:
            identifier, stamped = load_identifier_with_epoch(config.bundle_path)
            epoch = CacheEpoch(stamped if stamped is not None else 0)
        else:
            identifier = config.identifier
            epoch = CacheEpoch()
        if config.lifecycle:
            coordinator = LifecycleCoordinator(
                identifier=identifier,
                epoch=epoch,
                store_path=config.store_path,
                quarantine_path=config.quarantine_path,
                use_discrimination=config.use_discrimination,
                observability=hub,
            )

    security_service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(
        security_service=security_service, clock=clock, name=config.name
    )
    sink = GatewayEnforcementSink(
        gateway=gateway,
        security_service=security_service,
        sticky=config.sticky,
        lifecycle=coordinator,
        observability=hub,
    )
    if coordinator is not None:
        coordinator.sink = sink
        gateway.attach_lifecycle(coordinator)

    cache: Optional[IdentificationCache] = None
    if config.cache_capacity > 0:
        if coordinator is not None:
            cache = coordinator.make_cache(capacity=config.cache_capacity)
        else:
            cache = IdentificationCache(capacity=config.cache_capacity, epoch=epoch)

    dispatcher = BatchDispatcher(
        identifier,
        max_batch=config.max_batch,
        queue_capacity=config.queue_capacity,
        policy=policy,
        cache=cache,
        use_discrimination=config.use_discrimination,
        max_linger=config.max_linger,
        observability=hub,
    )
    assembler = ShardedFingerprintAssembler(shards=config.shards)

    autopilot: Optional[LifecycleAutopilot] = None
    if config.autopilot:
        autopilot = LifecycleAutopilot(
            coordinator,
            policy=config.trigger_policy,
            security_service=security_service,
            observability=hub,
        )

    handle = GatewayHandle(
        config=config,
        identifier=identifier,
        gateway=gateway,
        security_service=security_service,
        sink=sink,
        dispatcher=dispatcher,
        assembler=assembler,
        clock=clock,
        cache=cache,
        lifecycle=coordinator,
        autopilot=autopilot,
        observability=hub,
    )
    # The pipeline is built eagerly when a source is configured so the
    # hub's pipeline/assembler sources are registered from construction
    # (snapshot key-set stability); otherwise lazily on first run.
    if config.source is not None:
        handle._build_pipeline(config.source)
    elif hub is not None:
        handle._build_pipeline(IterableSource([]))
    return handle
