"""Fingerprint dataset construction and persistence."""

from repro.datasets.builder import DatasetBuilder, FingerprintDataset, generate_fingerprint_dataset
from repro.datasets.storage import load_fingerprints, save_fingerprints

__all__ = [
    "DatasetBuilder",
    "FingerprintDataset",
    "generate_fingerprint_dataset",
    "save_fingerprints",
    "load_fingerprints",
]
