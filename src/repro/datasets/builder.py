"""Building fingerprint datasets, either synthetically or from pcap captures.

The paper's evaluation dataset consists of 540 fingerprints: 27 device-types
with the setup procedure repeated ``n = 20`` times each.  The synthetic
builder reproduces exactly that shape from the device catalog; the pcap
ingestion path accepts a directory of real captures laid out as
``<root>/<DeviceType>/*.pcap`` (the layout used by the public IoT SENTINEL
dataset) and extracts fingerprints from them instead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.devices.catalog import DEVICE_CATALOG, DEVICE_NAMES
from repro.devices.simulator import LabEnvironment, SetupTrafficSimulator
from repro.exceptions import DatasetError
from repro.features.fingerprint import Fingerprint
from repro.features.session import SetupPhaseDetector, split_by_source
from repro.identification.registry import FingerprintRegistry
from repro.net.pcap import PcapReader

#: Number of setup repetitions per device-type in the paper's dataset.
DEFAULT_RUNS_PER_TYPE = 20


@dataclass
class FingerprintDataset:
    """A labelled collection of fingerprints plus bookkeeping metadata."""

    fingerprints: list[Fingerprint] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def device_types(self) -> list[str]:
        """All labels present, sorted."""
        return sorted({fingerprint.device_type for fingerprint in self.fingerprints})

    @property
    def labels(self) -> np.ndarray:
        return np.array([fingerprint.device_type for fingerprint in self.fingerprints], dtype=object)

    def counts(self) -> dict[str, int]:
        """Number of fingerprints per device-type."""
        return dict(Counter(fingerprint.device_type for fingerprint in self.fingerprints))

    def of_type(self, device_type: str) -> list[Fingerprint]:
        return [
            fingerprint
            for fingerprint in self.fingerprints
            if fingerprint.device_type == device_type
        ]

    def subset(self, indices: Sequence[int]) -> "FingerprintDataset":
        """A new dataset containing only the given fingerprint indices."""
        return FingerprintDataset(
            fingerprints=[self.fingerprints[int(index)] for index in indices],
            metadata=dict(self.metadata),
        )

    def to_registry(self, indices: Optional[Sequence[int]] = None) -> FingerprintRegistry:
        """Load (a subset of) the dataset into a fingerprint registry."""
        registry = FingerprintRegistry()
        source = self.fingerprints if indices is None else [self.fingerprints[int(i)] for i in indices]
        registry.add_all(source)
        return registry

    def fixed_matrix(self) -> np.ndarray:
        """The stacked fixed-length vectors F' of the whole dataset."""
        if not self.fingerprints:
            raise DatasetError("the dataset is empty")
        return np.stack([fingerprint.to_fixed_vector() for fingerprint in self.fingerprints])

    def validate(self) -> None:
        """Raise :class:`DatasetError` when the dataset is unusable."""
        if not self.fingerprints:
            raise DatasetError("the dataset is empty")
        for index, fingerprint in enumerate(self.fingerprints):
            if not fingerprint.device_type:
                raise DatasetError(f"fingerprint {index} has no device-type label")
            if fingerprint.packet_count == 0:
                raise DatasetError(f"fingerprint {index} contains no packets")
        counts = self.counts()
        minimum = min(counts.values())
        if minimum < 2:
            sparse = [name for name, count in counts.items() if count < 2]
            raise DatasetError(f"device-types with fewer than two fingerprints: {sparse}")

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __iter__(self):
        return iter(self.fingerprints)


@dataclass
class DatasetBuilder:
    """Builds fingerprint datasets from the device catalog or pcap captures.

    Attributes:
        runs_per_type: setup repetitions per device-type (20 in the paper).
        seed: seed of the traffic simulator (synthetic path only).
        environment: simulated lab network; a fresh one is created per build
            so that repeated builds are independent yet reproducible.
    """

    runs_per_type: int = DEFAULT_RUNS_PER_TYPE
    seed: Optional[int] = 0
    environment: Optional[LabEnvironment] = None

    def build_synthetic(self, device_names: Optional[Sequence[str]] = None) -> FingerprintDataset:
        """Simulate setup traffic and extract fingerprints for each device-type."""
        if self.runs_per_type <= 0:
            raise DatasetError("runs_per_type must be positive")
        names = list(device_names) if device_names is not None else list(DEVICE_NAMES)
        unknown = [name for name in names if name not in DEVICE_CATALOG]
        if unknown:
            raise DatasetError(f"unknown device-types requested: {unknown}")

        simulator = SetupTrafficSimulator(
            environment=self.environment or LabEnvironment(), seed=self.seed
        )
        dataset = FingerprintDataset(
            metadata={
                "source": "synthetic",
                "runs_per_type": self.runs_per_type,
                "seed": self.seed,
                "device_types": names,
            }
        )
        for name in names:
            profile = DEVICE_CATALOG[name]
            for trace in simulator.simulate_many(profile, self.runs_per_type):
                dataset.fingerprints.append(
                    Fingerprint.from_packets(
                        trace.packets,
                        device_type=name,
                        device_mac=str(trace.device_mac),
                    )
                )
        dataset.validate()
        return dataset

    def build_from_pcap_directory(self, root: Union[str, Path]) -> FingerprintDataset:
        """Extract fingerprints from ``<root>/<DeviceType>/*.pcap`` captures.

        Each capture file is treated as one setup run: the packets of the
        dominant non-gateway source MAC are isolated, cut to the setup phase
        and fingerprinted.
        """
        root = Path(root)
        if not root.is_dir():
            raise DatasetError(f"{root} is not a directory")
        detector = SetupPhaseDetector()
        dataset = FingerprintDataset(metadata={"source": "pcap", "root": str(root)})
        for type_dir in sorted(path for path in root.iterdir() if path.is_dir()):
            for capture_path in sorted(type_dir.glob("*.pcap")):
                packets = list(PcapReader(capture_path).packets())
                if not packets:
                    continue
                by_source = split_by_source(packets)
                # The device being set up is the busiest source in its capture.
                device_mac = max(by_source, key=lambda mac: len(by_source[mac]))
                setup_packets = detector.setup_slice(by_source[device_mac])
                dataset.fingerprints.append(
                    Fingerprint.from_packets(
                        setup_packets,
                        device_type=type_dir.name,
                        device_mac=str(device_mac),
                    )
                )
        dataset.validate()
        return dataset


def generate_fingerprint_dataset(
    runs_per_type: int = DEFAULT_RUNS_PER_TYPE,
    device_names: Optional[Sequence[str]] = None,
    seed: Optional[int] = 0,
) -> FingerprintDataset:
    """Convenience wrapper: synthesize the paper-shaped fingerprint dataset."""
    builder = DatasetBuilder(runs_per_type=runs_per_type, seed=seed)
    return builder.build_synthetic(device_names)
