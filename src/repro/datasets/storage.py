"""JSON persistence for fingerprints and fingerprint datasets.

This stores *raw training material* (labelled fingerprints) in a
human-inspectable form.  Trained models -- the classifier bank plus the
registry it serves from -- are persisted separately, as compact binary
bundles, by :mod:`repro.identification.model_store`; gateways that only
serve identifications load those bundles and never touch this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.builder import FingerprintDataset
from repro.exceptions import DatasetError
from repro.features.fingerprint import Fingerprint

FORMAT_VERSION = 1


def _fingerprint_to_dict(fingerprint: Fingerprint) -> dict:
    return {
        "device_type": fingerprint.device_type,
        "device_mac": fingerprint.device_mac,
        "vectors": fingerprint.vectors.tolist(),
        "metadata": fingerprint.metadata,
    }


def _fingerprint_from_dict(payload: dict) -> Fingerprint:
    try:
        return Fingerprint(
            vectors=np.asarray(payload["vectors"], dtype=np.int64),
            device_type=payload.get("device_type"),
            device_mac=payload.get("device_mac"),
            metadata=payload.get("metadata", {}),
        )
    except KeyError as exc:
        raise DatasetError(f"fingerprint record is missing field {exc}") from exc


def save_fingerprints(path: Union[str, Path], dataset: FingerprintDataset) -> None:
    """Serialise a fingerprint dataset to a JSON file."""
    document = {
        "format_version": FORMAT_VERSION,
        "metadata": dataset.metadata,
        "fingerprints": [_fingerprint_to_dict(fingerprint) for fingerprint in dataset.fingerprints],
    }
    Path(path).write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")


def load_fingerprints(path: Union[str, Path]) -> FingerprintDataset:
    """Load a fingerprint dataset previously written by :func:`save_fingerprints`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file does not exist: {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"dataset file is not valid JSON: {path}") from exc
    if document.get("format_version") != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version: {document.get('format_version')!r}"
        )
    dataset = FingerprintDataset(
        fingerprints=[_fingerprint_from_dict(record) for record in document.get("fingerprints", [])],
        metadata=document.get("metadata", {}),
    )
    dataset.validate()
    return dataset
