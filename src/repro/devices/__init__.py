"""Device behaviour profiles and setup-traffic simulation.

The paper's evaluation uses packet captures of 27 real consumer IoT devices
recorded while each device went through its vendor-specific setup procedure
(Table II).  Those captures are not distributable here, so this subpackage
provides the closest synthetic equivalent: a behaviour-profile model of each
device-type's setup sequence and a traffic generator that renders profiles
into packet traces with realistic protocol mixes, orderings, packet sizes
and run-to-run variation.  Device families the paper found confusable
(similar D-Link sensors, TP-Link plugs, Edimax plugs, Smarter appliances)
share near-identical profiles so that the confusion structure of Table III
can emerge from the pipeline rather than being scripted.
"""

from repro.devices.catalog import (
    CONFUSABLE_FAMILIES,
    DEVICE_CATALOG,
    DEVICE_NAMES,
    build_catalog,
    profile_of,
)
from repro.devices.profiles import Connectivity, DeviceProfile, SetupStep, StepKind
from repro.devices.simulator import LabEnvironment, SetupTrafficSimulator, SetupTrace

__all__ = [
    "Connectivity",
    "DeviceProfile",
    "SetupStep",
    "StepKind",
    "DEVICE_CATALOG",
    "DEVICE_NAMES",
    "CONFUSABLE_FAMILIES",
    "build_catalog",
    "profile_of",
    "LabEnvironment",
    "SetupTrafficSimulator",
    "SetupTrace",
]
