"""The catalog of the 27 device-types evaluated in the paper (Table II).

Every profile is a synthetic reconstruction of the corresponding device's
setup behaviour, built from the protocol mixes that class of device is known
to use (WPA handshake, address acquisition, discovery announcements, cloud
registration, time sync, ...).  Devices the paper reports as mutually
confusable are modelled as *families* sharing a common step template with
only small, overlapping differences, so that the identification pipeline
reproduces the confusion structure of Table III without it being scripted.
"""

from __future__ import annotations

from repro.devices.profiles import Connectivity, DeviceProfile, SetupStep, StepKind

# --------------------------------------------------------------------------- #
# Step template helpers.
# --------------------------------------------------------------------------- #


def _wifi_join(hostname_padding: int = 0, jitter: int = 4) -> tuple[SetupStep, ...]:
    """WPA2 handshake, address probing and DHCP of a WiFi device."""
    return (
        SetupStep(StepKind.EAPOL_HANDSHAKE),
        SetupStep(StepKind.ARP_PROBE, repeat=2),
        SetupStep(
            StepKind.DHCP_DISCOVER, payload_size=hostname_padding, size_jitter=jitter
        ),
        SetupStep(StepKind.DHCP_REQUEST),
        SetupStep(StepKind.ARP_ANNOUNCE),
        SetupStep(StepKind.ARP_GATEWAY),
    )


def _ethernet_join(hostname_padding: int = 0, jitter: int = 4) -> tuple[SetupStep, ...]:
    """Address acquisition of a wired device (no WPA handshake)."""
    return (
        SetupStep(StepKind.ARP_PROBE, repeat=2),
        SetupStep(
            StepKind.DHCP_DISCOVER, payload_size=hostname_padding, size_jitter=jitter
        ),
        SetupStep(StepKind.DHCP_REQUEST),
        SetupStep(StepKind.ARP_ANNOUNCE),
        SetupStep(StepKind.ARP_GATEWAY),
    )


def _ipv6_join() -> tuple[SetupStep, ...]:
    """IPv6 neighbour discovery and multicast membership."""
    return (
        SetupStep(StepKind.ICMPV6_ROUTER_SOLICIT, probability=0.9),
        SetupStep(StepKind.ICMPV6_NEIGHBOR_SOLICIT),
        SetupStep(StepKind.MLD_REPORT, probability=0.9),
    )


def _cloud_https(host: str, size: int, jitter: int = 24, repeat: int = 1) -> tuple[SetupStep, ...]:
    """DNS lookup followed by a TLS connection to the vendor cloud."""
    return (
        SetupStep(StepKind.DNS_QUERY, target=host),
        SetupStep(StepKind.HTTPS_CONNECT, target=host, payload_size=size, size_jitter=jitter, repeat=repeat),
    )


def _cloud_http(host: str, size: int, jitter: int = 16) -> tuple[SetupStep, ...]:
    """DNS lookup followed by a plain-HTTP exchange with the vendor cloud."""
    return (
        SetupStep(StepKind.DNS_QUERY, target=host),
        SetupStep(StepKind.HTTP_GET, target=host, payload_size=size, size_jitter=jitter),
    )


def _ntp(pool: str = "pool.ntp.org") -> tuple[SetupStep, ...]:
    return (
        SetupStep(StepKind.DNS_QUERY, target=pool),
        SetupStep(StepKind.NTP_SYNC, target=pool, repeat=1),
    )


def _upnp(port: int = 8080) -> tuple[SetupStep, ...]:
    """UPnP presence: IGMP join plus SSDP announcements."""
    return (
        SetupStep(StepKind.IGMP_JOIN),
        SetupStep(StepKind.SSDP_NOTIFY, port=port, repeat=2),
        SetupStep(StepKind.SSDP_MSEARCH, probability=0.7),
    )


def _mdns(service: str) -> tuple[SetupStep, ...]:
    return (
        SetupStep(StepKind.MDNS_QUERY, target="_services._dns-sd._udp.local", probability=0.8),
        SetupStep(StepKind.MDNS_ANNOUNCE, target=service, repeat=2),
    )


# --------------------------------------------------------------------------- #
# Confusable family templates (Table III).
# --------------------------------------------------------------------------- #


def _dlink_smart_home_steps(probe_size: int, extra_notify: float) -> tuple[SetupStep, ...]:
    """Shared template of the D-Link DCH-S1xx/S2xx/W215 smart-home family.

    The four devices (motion sensor, water sensor, siren, smart plug) run
    identical firmware builds on identical hardware modules; their setup
    sequences differ only marginally, which is exactly why the paper finds
    them mutually confusable.  ``probe_size`` shifts one cloud payload by a
    few bytes (within the jitter overlap) and ``extra_notify`` slightly
    changes how often an extra SSDP burst occurs.
    """
    return (
        _wifi_join(hostname_padding=12, jitter=6)
        + _ipv6_join()
        + _upnp(port=49152)
        + (
            SetupStep(StepKind.MDNS_ANNOUNCE, target="_dcp._tcp.local", repeat=2),
            SetupStep(StepKind.SSDP_NOTIFY, port=49152, probability=extra_notify),
        )
        + _ntp("ntp1.dlink.com")
        + _cloud_https("mydlink.com", size=probe_size, jitter=30)
        + (
            SetupStep(StepKind.HTTP_GET, target="wrpd.dlink.com", payload_size=90, size_jitter=25),
        )
    )


def _tplink_plug_steps(command_size: int, energy_probe: float) -> tuple[SetupStep, ...]:
    """Shared template of the TP-Link HS100/HS110 smart plugs."""
    return (
        _wifi_join(hostname_padding=8, jitter=5)
        + (
            SetupStep(StepKind.UDP_SEND, target="", port=9999, payload_size=command_size, size_jitter=20, repeat=2),
        )
        + _ntp("time.tp-link.com")
        + _cloud_https("devs.tplinkcloud.com", size=200, jitter=28)
        + (
            SetupStep(StepKind.UDP_SEND, target="devs.tplinkcloud.com", port=40500, payload_size=120, size_jitter=18, probability=energy_probe),
        )
    )


def _edimax_plug_steps(report_size: int) -> tuple[SetupStep, ...]:
    """Shared template of the Edimax SP-1101W/SP-2101W smart plugs."""
    return (
        _wifi_join(hostname_padding=6, jitter=5)
        + _upnp(port=10000)
        + _cloud_http("www.myedimax.com", size=report_size, jitter=26)
        + (
            SetupStep(StepKind.TCP_CONNECT, target="relay.myedimax.com", port=8766, payload_size=64, size_jitter=16),
        )
        + _ntp("time.edimax.com")
    )


def _smarter_appliance_steps(status_size: int) -> tuple[SetupStep, ...]:
    """Shared template of the Smarter coffee machine / kettle."""
    return (
        _wifi_join(hostname_padding=10, jitter=5)
        + (
            SetupStep(StepKind.UDP_SEND, target="", port=2081, payload_size=20, size_jitter=6, repeat=2),
            SetupStep(StepKind.TCP_CONNECT, target="", port=2081, payload_size=status_size, size_jitter=12),
        )
        + _mdns("_smarter._tcp.local")
    )


# --------------------------------------------------------------------------- #
# The 27 device profiles.
# --------------------------------------------------------------------------- #


def build_catalog() -> dict[str, DeviceProfile]:
    """Build the full catalog keyed by device-type name (Fig. 5 identifiers)."""
    profiles: list[DeviceProfile] = []

    profiles.append(
        DeviceProfile(
            name="Aria",
            vendor="Fitbit",
            model="Aria WiFi-enabled scale",
            connectivity=(Connectivity.WIFI,),
            mac_oui="20:ff:0e",
            hostname="aria-scale",
            steps=_wifi_join(hostname_padding=4)
            + _ntp("fitbit.pool.ntp.org")
            + _cloud_https("api.fitbit.com", size=260, jitter=20)
            + (SetupStep(StepKind.HTTPS_CONNECT, target="client.fitbit.com", payload_size=150, size_jitter=18),),
        )
    )
    profiles.append(
        DeviceProfile(
            name="HomeMaticPlug",
            vendor="eQ-3",
            model="Homematic pluggable switch HMIP-PS",
            connectivity=(Connectivity.OTHER,),
            mac_oui="00:1a:22",
            hostname="homematic-ccu",
            steps=_ethernet_join(hostname_padding=2)
            + (
                SetupStep(StepKind.UDP_SEND, target="", port=43439, payload_size=52, size_jitter=6, repeat=2),
                SetupStep(StepKind.LLC_FRAME, payload_size=35, probability=0.8),
            )
            + _cloud_http("update.homematic.com", size=120, jitter=14)
            + _ntp("0.de.pool.ntp.org"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="Withings",
            vendor="Withings",
            model="Wireless Scale WS-30",
            connectivity=(Connectivity.WIFI,),
            mac_oui="00:24:e4",
            hostname="withings-ws30",
            steps=_wifi_join(hostname_padding=6)
            + _cloud_http("scalews.withings.net", size=300, jitter=30)
            + (
                SetupStep(StepKind.DNS_QUERY, target="fw.withings.net"),
                SetupStep(StepKind.HTTP_POST, target="fw.withings.net", payload_size=420, size_jitter=36),
            ),
        )
    )
    profiles.append(
        DeviceProfile(
            name="MAXGateway",
            vendor="eQ-3",
            model="MAX! Cube LAN Gateway",
            connectivity=(Connectivity.ETHERNET, Connectivity.OTHER),
            mac_oui="00:1a:22",
            hostname="max-cube-lan",
            steps=_ethernet_join(hostname_padding=0)
            + (
                SetupStep(StepKind.UDP_SEND, target="", port=23272, payload_size=26, size_jitter=2, repeat=2),
                SetupStep(StepKind.TCP_CONNECT, target="max.eq-3.de", port=62910, payload_size=80, size_jitter=10),
            )
            + _ntp("ntp.homematic.com"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="HueBridge",
            vendor="Philips",
            model="Hue Bridge 3241312018",
            connectivity=(Connectivity.ZIGBEE, Connectivity.ETHERNET),
            mac_oui="00:17:88",
            hostname="philips-hue",
            steps=_ethernet_join(hostname_padding=4)
            + _ipv6_join()
            + _upnp(port=80)
            + _mdns("_hue._tcp.local")
            + _cloud_https("ws.meethue.com", size=340, jitter=26)
            + _ntp("pool.ntp.org"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="HueSwitch",
            vendor="Philips",
            model="Hue Light Switch PTM 215Z",
            connectivity=(Connectivity.ZIGBEE,),
            mac_oui="00:17:88",
            hostname="hue-dimmer",
            # The switch itself is ZigBee-only: what the gateway observes is the
            # indirect traffic the bridge emits on its behalf during pairing.
            steps=(
                SetupStep(StepKind.ARP_GATEWAY),
                SetupStep(StepKind.MDNS_ANNOUNCE, target="_hue._tcp.local", repeat=1),
                SetupStep(StepKind.HTTPS_CONNECT, target="ws.meethue.com", payload_size=120, size_jitter=14),
                SetupStep(StepKind.HTTP_GET, target="www.ecdinterface.philips.com", payload_size=70, size_jitter=10),
                SetupStep(StepKind.UDP_SEND, target="", port=5678, payload_size=30, size_jitter=4),
            ),
        )
    )
    profiles.append(
        DeviceProfile(
            name="EdnetGateway",
            vendor="Ednet.living",
            model="Starter kit power Gateway",
            connectivity=(Connectivity.WIFI, Connectivity.OTHER),
            mac_oui="ac:cf:23",
            hostname="ednet-living",
            steps=_wifi_join(hostname_padding=2)
            + (
                SetupStep(StepKind.UDP_SEND, target="", port=25123, payload_size=40, size_jitter=6, repeat=3),
                SetupStep(StepKind.DNS_QUERY, target="cloud.ednet-living.com"),
                SetupStep(StepKind.TCP_CONNECT, target="cloud.ednet-living.com", port=1883, payload_size=90, size_jitter=12),
            ),
        )
    )
    profiles.append(
        DeviceProfile(
            name="EdnetCam",
            vendor="Ednet",
            model="Wireless indoor IP camera Cube",
            connectivity=(Connectivity.WIFI, Connectivity.ETHERNET),
            mac_oui="ac:cf:23",
            hostname="ipcam-cube",
            steps=_wifi_join(hostname_padding=8)
            + _upnp(port=80)
            + _mdns("_ipcam._tcp.local")
            + _cloud_http("www.ednetcloud.com", size=180, jitter=20)
            + (
                SetupStep(StepKind.UDP_SEND, target="stun.ednetcloud.com", port=3478, payload_size=60, size_jitter=8, repeat=2),
            )
            + _ntp("time.windows.com"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="EdimaxCam",
            vendor="Edimax",
            model="IC-3115W HD WiFi Network Camera",
            connectivity=(Connectivity.WIFI, Connectivity.ETHERNET),
            mac_oui="74:da:38",
            hostname="edimax-ic3115",
            steps=_wifi_join(hostname_padding=6)
            + _ipv6_join()
            + _upnp(port=49153)
            + _cloud_http("www.myedimax.com", size=240, jitter=24)
            + _cloud_https("ic.myedimax.com", size=210, jitter=22)
            + (
                SetupStep(StepKind.UDP_SEND, target="relay.myedimax.com", port=8765, payload_size=110, size_jitter=14, repeat=2),
            )
            + _ntp("time.edimax.com"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="Lightify",
            vendor="Osram",
            model="Lightify Gateway",
            connectivity=(Connectivity.WIFI, Connectivity.ZIGBEE),
            mac_oui="84:18:26",
            hostname="lightify-gw",
            steps=_wifi_join(hostname_padding=4)
            + _ipv6_join()
            + (
                SetupStep(StepKind.DNS_QUERY, target="lightify.cc"),
                SetupStep(StepKind.TCP_CONNECT, target="lightify.cc", port=4000, payload_size=160, size_jitter=20, repeat=2),
            )
            + _ntp("0.openwrt.pool.ntp.org"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="WeMoInsightSwitch",
            vendor="Belkin",
            model="WeMo Insight Switch F7C029de",
            connectivity=(Connectivity.WIFI,),
            mac_oui="94:10:3e",
            hostname="wemo-insight",
            steps=_wifi_join(hostname_padding=8)
            + _upnp(port=49153)
            + _mdns("_wemo._tcp.local")
            + _cloud_https("api.xbcs.net", size=420, jitter=32)
            + _ntp("pool.ntp.org")
            + (SetupStep(StepKind.HTTP_GET, target="fw.xbcs.net", payload_size=130, size_jitter=16),),
        )
    )
    profiles.append(
        DeviceProfile(
            name="WeMoLink",
            vendor="Belkin",
            model="WeMo Link Lighting Bridge F7C031vf",
            connectivity=(Connectivity.WIFI, Connectivity.ZIGBEE),
            mac_oui="94:10:3e",
            hostname="wemo-link",
            steps=_wifi_join(hostname_padding=8)
            + _upnp(port=49152)
            + _cloud_https("api.xbcs.net", size=300, jitter=28)
            + (
                SetupStep(StepKind.SSDP_NOTIFY, target="urn:Belkin:device:bridge:1", port=49152, repeat=2),
                SetupStep(StepKind.HTTPS_CONNECT, target="nat.xbcs.net", payload_size=180, size_jitter=20),
            )
            + _ntp("pool.ntp.org"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="WeMoSwitch",
            vendor="Belkin",
            model="WeMo Switch F7C027de",
            connectivity=(Connectivity.WIFI,),
            mac_oui="ec:1a:59",
            hostname="wemo-switch",
            steps=_wifi_join(hostname_padding=8)
            + _upnp(port=49153)
            + _mdns("_wemo._tcp.local")
            + _cloud_https("api.xbcs.net", size=260, jitter=26)
            + (SetupStep(StepKind.ICMP_PING, target="", probability=0.6),)
            + _ntp("time.nist.gov"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkHomeHub",
            vendor="D-Link",
            model="Connected Home Hub DCH-G020",
            connectivity=(Connectivity.WIFI, Connectivity.ETHERNET, Connectivity.ZWAVE),
            mac_oui="c4:12:f5",
            hostname="dch-g020-hub",
            steps=_ethernet_join(hostname_padding=10)
            + _ipv6_join()
            + _upnp(port=49152)
            + _mdns("_dhnap._tcp.local")
            + _cloud_https("mydlink.com", size=380, jitter=30)
            + (
                SetupStep(StepKind.HTTPS_CONNECT, target="signal.mydlink.com", payload_size=220, size_jitter=24),
            )
            + _ntp("ntp1.dlink.com"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkDoorSensor",
            vendor="D-Link",
            model="Door & Window sensor",
            connectivity=(Connectivity.ZWAVE,),
            mac_oui="c4:12:f5",
            hostname="dch-z110",
            # Z-Wave only: the hub emits a short burst of cloud notifications
            # on behalf of the sensor when it is paired.
            steps=(
                SetupStep(StepKind.ARP_GATEWAY),
                SetupStep(StepKind.DNS_QUERY, target="mydlink.com"),
                SetupStep(StepKind.HTTPS_CONNECT, target="mydlink.com", payload_size=140, size_jitter=16, repeat=2),
                SetupStep(StepKind.MDNS_ANNOUNCE, target="_dhnap._tcp.local"),
            ),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkDayCam",
            vendor="D-Link",
            model="WiFi Day Camera DCS-930L",
            connectivity=(Connectivity.WIFI, Connectivity.ETHERNET),
            mac_oui="b0:c5:54",
            hostname="dcs-930l",
            steps=_wifi_join(hostname_padding=6)
            + _upnp(port=80)
            + _cloud_http("www.mydlink.com", size=200, jitter=22)
            + (
                SetupStep(StepKind.UDP_SEND, target="stun.mydlink.com", port=3478, payload_size=72, size_jitter=8, repeat=2),
                SetupStep(StepKind.BOOTP_REQUEST, probability=0.5),
            )
            + _ntp("ntp1.dlink.com"),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkCam",
            vendor="D-Link",
            model="HD IP Camera DCH-935L",
            connectivity=(Connectivity.WIFI,),
            mac_oui="b0:c5:54",
            hostname="dch-935l",
            steps=_wifi_join(hostname_padding=6)
            + _ipv6_join()
            + _mdns("_dcp._tcp.local")
            + _cloud_https("signal.mydlink.com", size=320, jitter=28)
            + (
                SetupStep(StepKind.UDP_SEND, target="stun.mydlink.com", port=3478, payload_size=96, size_jitter=10, repeat=2),
            )
            + _ntp("ntp1.dlink.com"),
        )
    )

    # ---- the four-way confusable D-Link smart-home family (Table III 1-4) --- #
    dlink_family = "dlink-smart-home"
    profiles.append(
        DeviceProfile(
            name="D-LinkSwitch",
            vendor="D-Link",
            model="Smart plug DSP-W215",
            firmware_version="2.22",
            connectivity=(Connectivity.WIFI,),
            mac_oui="c0:a0:bb",
            hostname="dsp-w215-plug",
            family=dlink_family,
            steps=_dlink_smart_home_steps(probe_size=236, extra_notify=0.7),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkWaterSensor",
            vendor="D-Link",
            model="Water sensor DCH-S160",
            firmware_version="1.20",
            connectivity=(Connectivity.WIFI,),
            mac_oui="c0:a0:bb",
            hostname="dch-s160-sens",
            family=dlink_family,
            steps=_dlink_smart_home_steps(probe_size=222, extra_notify=0.5),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkSiren",
            vendor="D-Link",
            model="Siren DCH-S220",
            firmware_version="1.20",
            connectivity=(Connectivity.WIFI,),
            mac_oui="c0:a0:bb",
            hostname="dch-s220-sirn",
            family=dlink_family,
            steps=_dlink_smart_home_steps(probe_size=226, extra_notify=0.5),
        )
    )
    profiles.append(
        DeviceProfile(
            name="D-LinkSensor",
            vendor="D-Link",
            model="WiFi Motion sensor DCH-S150",
            firmware_version="1.20",
            connectivity=(Connectivity.WIFI,),
            mac_oui="c0:a0:bb",
            hostname="dch-s150-sens",
            family=dlink_family,
            steps=_dlink_smart_home_steps(probe_size=224, extra_notify=0.55),
        )
    )

    # ---- the TP-Link plug pair (Table III 5-6) ------------------------------ #
    tplink_family = "tplink-plug"
    profiles.append(
        DeviceProfile(
            name="TP-LinkPlugHS110",
            vendor="TP-Link",
            model="WiFi Smart plug HS110",
            connectivity=(Connectivity.WIFI,),
            mac_oui="50:c7:bf",
            hostname="hs110-plug",
            family=tplink_family,
            steps=_tplink_plug_steps(command_size=168, energy_probe=0.6),
        )
    )
    profiles.append(
        DeviceProfile(
            name="TP-LinkPlugHS100",
            vendor="TP-Link",
            model="WiFi Smart plug HS100",
            connectivity=(Connectivity.WIFI,),
            mac_oui="50:c7:bf",
            hostname="hs100-plug",
            family=tplink_family,
            steps=_tplink_plug_steps(command_size=160, energy_probe=0.4),
        )
    )

    # ---- the Edimax plug pair (Table III 7-8) -------------------------------- #
    edimax_family = "edimax-plug"
    profiles.append(
        DeviceProfile(
            name="EdimaxPlug1101W",
            vendor="Edimax",
            model="SP-1101W Smart Plug Switch",
            connectivity=(Connectivity.WIFI,),
            mac_oui="74:da:38",
            hostname="sp1101w",
            family=edimax_family,
            steps=_edimax_plug_steps(report_size=190),
        )
    )
    profiles.append(
        DeviceProfile(
            name="EdimaxPlug2101W",
            vendor="Edimax",
            model="SP-2101W Smart Plug Switch",
            connectivity=(Connectivity.WIFI,),
            mac_oui="74:da:38",
            hostname="sp2101w",
            family=edimax_family,
            steps=_edimax_plug_steps(report_size=198),
        )
    )

    # ---- the Smarter appliance pair (Table III 9-10) -------------------------- #
    smarter_family = "smarter-appliance"
    profiles.append(
        DeviceProfile(
            name="SmarterCoffee",
            vendor="Smarter",
            model="SmarterCoffee SMC10-EU",
            connectivity=(Connectivity.WIFI,),
            mac_oui="5c:cf:7f",
            hostname="smarter-cof",
            family=smarter_family,
            steps=_smarter_appliance_steps(status_size=58),
        )
    )
    profiles.append(
        DeviceProfile(
            name="iKettle2",
            vendor="Smarter",
            model="iKettle 2.0 SMK20-EU",
            connectivity=(Connectivity.WIFI,),
            mac_oui="5c:cf:7f",
            hostname="smarter-ket",
            family=smarter_family,
            steps=_smarter_appliance_steps(status_size=54),
        )
    )

    catalog = {profile.name: profile for profile in profiles}
    if len(catalog) != len(profiles):
        raise ValueError("duplicate device-type names in the catalog")
    return catalog


#: The catalog keyed by device-type name.
DEVICE_CATALOG: dict[str, DeviceProfile] = build_catalog()

#: Device-type names in the order used by Fig. 5 of the paper.
DEVICE_NAMES: tuple[str, ...] = (
    "Aria",
    "HomeMaticPlug",
    "Withings",
    "MAXGateway",
    "HueBridge",
    "HueSwitch",
    "EdnetGateway",
    "EdnetCam",
    "EdimaxCam",
    "Lightify",
    "WeMoInsightSwitch",
    "WeMoLink",
    "WeMoSwitch",
    "D-LinkHomeHub",
    "D-LinkDoorSensor",
    "D-LinkDayCam",
    "D-LinkCam",
    "D-LinkSwitch",
    "D-LinkWaterSensor",
    "D-LinkSiren",
    "D-LinkSensor",
    "TP-LinkPlugHS110",
    "TP-LinkPlugHS100",
    "EdimaxPlug1101W",
    "EdimaxPlug2101W",
    "SmarterCoffee",
    "iKettle2",
)

#: The devices of Table III (index -> name), i.e. the confusable ones.
TABLE_III_DEVICES: tuple[str, ...] = DEVICE_NAMES[17:]

#: Confusable families used by Table III: family label -> member names.
CONFUSABLE_FAMILIES: dict[str, tuple[str, ...]] = {
    "dlink-smart-home": ("D-LinkSwitch", "D-LinkWaterSensor", "D-LinkSiren", "D-LinkSensor"),
    "tplink-plug": ("TP-LinkPlugHS110", "TP-LinkPlugHS100"),
    "edimax-plug": ("EdimaxPlug1101W", "EdimaxPlug2101W"),
    "smarter-appliance": ("SmarterCoffee", "iKettle2"),
}


def profile_of(device_type: str) -> DeviceProfile:
    """Look up the profile of a device-type name used in Fig. 5 / Table II."""
    if device_type not in DEVICE_CATALOG:
        raise KeyError(f"unknown device-type: {device_type!r}")
    return DEVICE_CATALOG[device_type]
