"""The behaviour-profile model describing a device-type's setup sequence."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import DeviceProfileError


class StepKind(str, enum.Enum):
    """The kinds of communication actions a setup sequence is made of.

    Each kind maps to one or more packets emitted by the simulated device;
    see :class:`repro.devices.simulator.SetupTrafficSimulator` for the exact
    packets each kind produces.
    """

    EAPOL_HANDSHAKE = "eapol_handshake"
    ARP_PROBE = "arp_probe"
    ARP_ANNOUNCE = "arp_announce"
    ARP_GATEWAY = "arp_gateway"
    DHCP_DISCOVER = "dhcp_discover"
    DHCP_REQUEST = "dhcp_request"
    BOOTP_REQUEST = "bootp_request"
    ICMPV6_ROUTER_SOLICIT = "icmpv6_router_solicit"
    ICMPV6_NEIGHBOR_SOLICIT = "icmpv6_neighbor_solicit"
    MLD_REPORT = "mld_report"
    IGMP_JOIN = "igmp_join"
    DNS_QUERY = "dns_query"
    MDNS_ANNOUNCE = "mdns_announce"
    MDNS_QUERY = "mdns_query"
    SSDP_MSEARCH = "ssdp_msearch"
    SSDP_NOTIFY = "ssdp_notify"
    NTP_SYNC = "ntp_sync"
    HTTP_GET = "http_get"
    HTTP_POST = "http_post"
    HTTPS_CONNECT = "https_connect"
    TCP_CONNECT = "tcp_connect"
    UDP_SEND = "udp_send"
    ICMP_PING = "icmp_ping"
    LLC_FRAME = "llc_frame"


class Connectivity(str, enum.Enum):
    """Connectivity technologies listed in Table II."""

    WIFI = "wifi"
    ZIGBEE = "zigbee"
    ETHERNET = "ethernet"
    ZWAVE = "zwave"
    OTHER = "other"


@dataclass(frozen=True)
class SetupStep:
    """A single logical action in a device's setup sequence.

    Attributes:
        kind: what the device does (see :class:`StepKind`).
        target: a domain name, service name or port description, depending
            on the kind (e.g. the cloud host contacted by an HTTPS step).
        port: destination port for TCP/UDP steps that need one.
        payload_size: mean application payload size in bytes.
        size_jitter: uniform +/- variation applied to ``payload_size`` at
            simulation time (run-to-run intra-type variance).
        repeat: how many times the action is performed back to back.
        probability: chance that the step occurs at all in a given run
            (models optional retries / races observed in real captures).
        source_port_dynamic: use an ephemeral source port (True) or a
            well-known/registered one equal to ``port`` (False).
    """

    kind: StepKind
    target: str = ""
    port: int = 0
    payload_size: int = 0
    size_jitter: int = 0
    repeat: int = 1
    probability: float = 1.0
    source_port_dynamic: bool = True

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise DeviceProfileError(f"step repeat must be >= 1, got {self.repeat}")
        if not 0.0 < self.probability <= 1.0:
            raise DeviceProfileError(
                f"step probability must be in (0, 1], got {self.probability}"
            )
        if self.payload_size < 0 or self.size_jitter < 0:
            raise DeviceProfileError("payload_size and size_jitter must be non-negative")
        if not 0 <= self.port <= 65535:
            raise DeviceProfileError(f"invalid port: {self.port}")


@dataclass(frozen=True)
class DeviceProfile:
    """The behaviour profile of one device-type.

    A device-type is the combination of make, model and software version
    (Sect. III of the paper); ``firmware_version`` is therefore part of the
    identity and a firmware update yields a *different* profile.

    Attributes:
        name: the identifier used in Fig. 5 / Table II (e.g. ``"D-LinkCam"``).
        vendor: manufacturer name.
        model: commercial model string.
        firmware_version: firmware/software version of this device-type.
        connectivity: supported connectivity technologies (Table II columns).
        steps: the ordered setup sequence.
        mac_oui: vendor OUI prefix used when simulating device instances.
        mean_step_gap: mean inter-step delay in seconds (exponential).
        hostname: DHCP hostname announced by the device.
        family: label shared by near-identical devices of the same vendor;
            drives the expected confusion structure of Table III.
    """

    name: str
    vendor: str
    model: str
    firmware_version: str = "1.0.0"
    connectivity: tuple[Connectivity, ...] = (Connectivity.WIFI,)
    steps: tuple[SetupStep, ...] = ()
    mac_oui: str = "02:00:00"
    mean_step_gap: float = 0.4
    hostname: str = ""
    family: Optional[str] = None
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise DeviceProfileError("a device profile requires a name")
        if not self.steps:
            raise DeviceProfileError(f"profile {self.name!r} has no setup steps")

    @property
    def device_type(self) -> str:
        """The classification label of this profile (its name)."""
        return self.name

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def with_firmware(self, firmware_version: str, extra_steps: tuple[SetupStep, ...] = ()) -> "DeviceProfile":
        """Derive the profile of the same hardware after a firmware update.

        The paper observed that firmware updates changed fingerprints enough
        to be distinguishable (Sect. VIII-B); appending or altering steps on
        the derived profile models that effect.
        """
        return replace(
            self,
            firmware_version=firmware_version,
            steps=self.steps + tuple(extra_steps),
            metadata={**self.metadata, "derived_from": self.firmware_version},
        )

    def describe(self) -> str:
        """A short human-readable description used by examples and logs."""
        technologies = "/".join(connectivity.value for connectivity in self.connectivity)
        return (
            f"{self.name}: {self.vendor} {self.model} (fw {self.firmware_version}, "
            f"{technologies}, {self.step_count} setup steps)"
        )
