"""Rendering device behaviour profiles into packet traces.

The simulator plays the role of the paper's laboratory setup (Fig. 4): a
device joins the Security Gateway's network and performs its vendor-specific
setup procedure while every packet it sends is recorded.  Only packets
*originating from the device* are produced, because the fingerprint is
defined over the packets received from the new device (Sect. IV-A).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.net.addresses import MACAddress
from repro.net.layers import dhcp as dhcp_mod
from repro.net.layers import dns as dns_mod
from repro.net.layers import http as http_mod
from repro.net.layers import ntp as ntp_mod
from repro.net.layers import ssdp as ssdp_mod
from repro.net.layers import tls as tls_mod
from repro.net.layers.arp import OP_REQUEST, ARPPacket
from repro.net.layers.eapol import EAPOLFrame, TYPE_KEY
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.icmp import ICMPMessage, TYPE_ECHO_REQUEST
from repro.net.layers.icmpv6 import (
    ICMPv6Message,
    TYPE_MLDV2_REPORT,
    TYPE_NEIGHBOR_SOLICITATION,
    TYPE_ROUTER_SOLICITATION,
)
from repro.net.layers.ipv4 import IPOption, IPv4Header, OPTION_NOP, OPTION_ROUTER_ALERT, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.layers.ipv6 import HBH_OPTION_ROUTER_ALERT, IPv6Header, NEXT_HEADER_ICMPV6
from repro.net.layers.llc import LLCHeader, SAP_SPANNING_TREE
from repro.net.layers.tcp import FLAG_ACK, FLAG_PSH, FLAG_SYN, TCPSegment
from repro.net.layers.udp import UDPDatagram
from repro.net.packet import Packet
from repro.devices.profiles import DeviceProfile, SetupStep, StepKind

_BROADCAST = MACAddress.broadcast()
_IPV4_MULTICAST_MAC = MACAddress.from_string("01:00:5e:00:00:fb")
_IPV6_MULTICAST_MAC = MACAddress.from_string("33:33:00:00:00:01")


@dataclass
class LabEnvironment:
    """The simulated home/small-office network the devices join.

    Attributes:
        gateway_mac / gateway_ip: the Security Gateway's LAN identity.
        subnet_prefix: first three octets of the IPv4 subnet.
        dns_server: resolver IP handed out via DHCP (defaults to the gateway).
        ntp_server_ip: address of the NTP pool server used by devices.
    """

    gateway_mac: MACAddress = field(default_factory=lambda: MACAddress.from_string("b0:c5:54:10:20:30"))
    gateway_ip: str = "192.168.0.1"
    subnet_prefix: str = "192.168.0"
    dns_server: str = ""
    ntp_server_ip: str = "129.250.35.250"
    _assigned_hosts: int = field(default=9, repr=False)

    def __post_init__(self) -> None:
        if not self.dns_server:
            self.dns_server = self.gateway_ip

    def allocate_ip(self) -> str:
        """Allocate the next IPv4 address of the subnet's DHCP pool.

        The pool spans ``.10`` to ``.249``; once exhausted, addresses are
        reused from the start, mirroring how DHCP leases of devices that
        were factory-reset between measurement runs get recycled.
        """
        self._assigned_hosts += 1
        host = 10 + (self._assigned_hosts - 10) % 240
        return f"{self.subnet_prefix}.{host}"

    def resolve(self, domain: str) -> str:
        """Deterministically map a domain name to a stable public IP address.

        The mapping stands in for real DNS resolution: a given cloud host
        always resolves to the same address, so the destination-IP-counter
        feature behaves consistently across simulation runs.
        """
        digest = hashlib.sha256(domain.lower().encode("ascii")).digest()
        octets = [52 + digest[0] % 150, digest[1] % 254 + 1, digest[2] % 254 + 1, digest[3] % 254 + 1]
        return ".".join(str(octet) for octet in octets)


@dataclass
class SetupTrace:
    """The packets a simulated device emitted during one setup run."""

    profile: DeviceProfile
    device_mac: MACAddress
    device_ip: str
    packets: list[Packet]

    @property
    def device_type(self) -> str:
        return self.profile.device_type

    def __len__(self) -> int:
        return len(self.packets)


class SetupTrafficSimulator:
    """Simulates the setup-phase traffic of device profiles.

    One simulator instance owns a random generator, so repeated calls with
    the same seed reproduce the same dataset (important for the evaluation
    harness and the tests).
    """

    def __init__(self, environment: Optional[LabEnvironment] = None, seed: Optional[int] = None):
        self.environment = environment or LabEnvironment()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def random_device_mac(self, profile: DeviceProfile) -> MACAddress:
        """A fresh device MAC using the profile vendor's OUI prefix."""
        suffix = ":".join(f"{int(self.rng.integers(0, 256)):02x}" for _ in range(3))
        return MACAddress.from_string(f"{profile.mac_oui}:{suffix}")

    def simulate(
        self,
        profile: DeviceProfile,
        device_mac: Optional[MACAddress] = None,
        start_time: float = 0.0,
    ) -> SetupTrace:
        """Simulate one setup run of ``profile`` and return its packet trace."""
        device_mac = device_mac or self.random_device_mac(profile)
        device_ip = self.environment.allocate_ip()
        context = _RunContext(
            simulator=self,
            profile=profile,
            device_mac=device_mac,
            device_ip=device_ip,
            clock=start_time,
        )
        packets: list[Packet] = []
        for step in profile.steps:
            if self.rng.random() > step.probability:
                continue
            for _ in range(step.repeat):
                packets.extend(context.render_step(step))
            context.advance(self.rng.exponential(profile.mean_step_gap))
        if not packets:
            raise SimulationError(f"profile {profile.name!r} produced no packets")
        return SetupTrace(profile=profile, device_mac=device_mac, device_ip=device_ip, packets=packets)

    def simulate_many(self, profile: DeviceProfile, runs: int) -> list[SetupTrace]:
        """Simulate several independent setup runs of the same device-type."""
        if runs <= 0:
            raise SimulationError("runs must be positive")
        return [self.simulate(profile) for _ in range(runs)]


@dataclass
class _RunContext:
    """Mutable state of a single simulated setup run."""

    simulator: SetupTrafficSimulator
    profile: DeviceProfile
    device_mac: MACAddress
    device_ip: str
    clock: float

    def advance(self, seconds: float) -> None:
        self.clock += max(0.0, seconds)

    # ------------------------------------------------------------------ #
    # Packet helpers.
    # ------------------------------------------------------------------ #
    @property
    def _env(self) -> LabEnvironment:
        return self.simulator.environment

    @property
    def _rng(self) -> np.random.Generator:
        return self.simulator.rng

    def _emit(self, packet: Packet) -> Packet:
        packet.timestamp = self.clock
        # Stamp the on-wire size once at build time: `Packet.size` otherwise
        # re-serialises the whole layer tree on every feature extraction,
        # which profiling showed dominating the streaming assemble stage.
        # (Replayed clones only rewrite the source MAC -- same length.)
        packet.wire_length = len(packet.to_bytes())
        self.advance(float(self._rng.uniform(0.005, 0.05)))
        return packet

    def _ephemeral_port(self) -> int:
        return int(self._rng.integers(49152, 65535))

    def _registered_port(self) -> int:
        return int(self._rng.integers(1024, 49151))

    def _payload(self, step: SetupStep) -> bytes:
        size = step.payload_size
        if step.size_jitter:
            size += int(self._rng.integers(-step.size_jitter, step.size_jitter + 1))
        return b"\x00" * max(0, size)

    def _ethernet(self, dst: MACAddress, ethertype: int) -> EthernetFrame:
        return EthernetFrame(dst=dst, src=self.device_mac, ethertype=ethertype)

    def _ipv4(self, dst_ip: str, protocol: int, options: Optional[list[IPOption]] = None) -> IPv4Header:
        return IPv4Header(
            src=self.device_ip,
            dst=dst_ip,
            protocol=protocol,
            ttl=64,
            identification=int(self._rng.integers(0, 65536)),
            options=options or [],
        )

    def _ipv6_link_local(self) -> str:
        mac_bytes = self.device_mac.to_bytes()
        return "fe80::" + ":".join(
            [
                f"{(mac_bytes[0] ^ 0x02):02x}{mac_bytes[1]:02x}",
                f"{mac_bytes[2]:02x}ff",
                f"fe{mac_bytes[3]:02x}",
                f"{mac_bytes[4]:02x}{mac_bytes[5]:02x}",
            ]
        )

    # ------------------------------------------------------------------ #
    # Step rendering.
    # ------------------------------------------------------------------ #
    def render_step(self, step: SetupStep) -> list[Packet]:
        """Render one setup step into the packets the device sends."""
        renderers = {
            StepKind.EAPOL_HANDSHAKE: self._render_eapol,
            StepKind.ARP_PROBE: self._render_arp_probe,
            StepKind.ARP_ANNOUNCE: self._render_arp_announce,
            StepKind.ARP_GATEWAY: self._render_arp_gateway,
            StepKind.DHCP_DISCOVER: self._render_dhcp_discover,
            StepKind.DHCP_REQUEST: self._render_dhcp_request,
            StepKind.BOOTP_REQUEST: self._render_bootp_request,
            StepKind.ICMPV6_ROUTER_SOLICIT: self._render_icmpv6_router_solicit,
            StepKind.ICMPV6_NEIGHBOR_SOLICIT: self._render_icmpv6_neighbor_solicit,
            StepKind.MLD_REPORT: self._render_mld_report,
            StepKind.IGMP_JOIN: self._render_igmp_join,
            StepKind.DNS_QUERY: self._render_dns_query,
            StepKind.MDNS_ANNOUNCE: self._render_mdns_announce,
            StepKind.MDNS_QUERY: self._render_mdns_query,
            StepKind.SSDP_MSEARCH: self._render_ssdp_msearch,
            StepKind.SSDP_NOTIFY: self._render_ssdp_notify,
            StepKind.NTP_SYNC: self._render_ntp,
            StepKind.HTTP_GET: self._render_http_get,
            StepKind.HTTP_POST: self._render_http_post,
            StepKind.HTTPS_CONNECT: self._render_https,
            StepKind.TCP_CONNECT: self._render_tcp_connect,
            StepKind.UDP_SEND: self._render_udp_send,
            StepKind.ICMP_PING: self._render_icmp_ping,
            StepKind.LLC_FRAME: self._render_llc,
        }
        renderer = renderers.get(step.kind)
        if renderer is None:
            raise SimulationError(f"no renderer for step kind {step.kind!r}")
        return renderer(step)

    # -- link layer / join ------------------------------------------------ #
    def _render_eapol(self, step: SetupStep) -> list[Packet]:
        packets = []
        for message_index in (2, 4):
            body_size = 95 + 22 * (message_index == 2) + int(self._rng.integers(0, 4))
            frame = EAPOLFrame(packet_type=TYPE_KEY, body=b"\x00" * body_size)
            packets.append(
                self._emit(
                    Packet(
                        ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.EAPOL),
                        eapol=frame,
                    )
                )
            )
        return packets

    def _render_arp_probe(self, step: SetupStep) -> list[Packet]:
        arp = ARPPacket(
            operation=OP_REQUEST,
            sender_mac=self.device_mac,
            sender_ip="0.0.0.0",
            target_mac=MACAddress.zero(),
            target_ip=self.device_ip,
        )
        return [
            self._emit(
                Packet(ethernet=self._ethernet(_BROADCAST, ETHERTYPE.ARP), arp=arp)
            )
        ]

    def _render_arp_announce(self, step: SetupStep) -> list[Packet]:
        arp = ARPPacket(
            operation=OP_REQUEST,
            sender_mac=self.device_mac,
            sender_ip=self.device_ip,
            target_mac=MACAddress.zero(),
            target_ip=self.device_ip,
        )
        return [
            self._emit(
                Packet(ethernet=self._ethernet(_BROADCAST, ETHERTYPE.ARP), arp=arp)
            )
        ]

    def _render_arp_gateway(self, step: SetupStep) -> list[Packet]:
        arp = ARPPacket(
            operation=OP_REQUEST,
            sender_mac=self.device_mac,
            sender_ip=self.device_ip,
            target_mac=MACAddress.zero(),
            target_ip=self._env.gateway_ip,
        )
        return [
            self._emit(
                Packet(ethernet=self._ethernet(_BROADCAST, ETHERTYPE.ARP), arp=arp)
            )
        ]

    # -- addressing ------------------------------------------------------- #
    def _dhcp_packet(self, message: dhcp_mod.DHCPMessage) -> Packet:
        return Packet(
            ethernet=self._ethernet(_BROADCAST, ETHERTYPE.IPV4),
            ipv4=IPv4Header(src="0.0.0.0", dst="255.255.255.255", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=dhcp_mod.CLIENT_PORT, dst_port=dhcp_mod.SERVER_PORT),
            application=message,
        )

    def _render_dhcp_discover(self, step: SetupStep) -> list[Packet]:
        hostname = self.profile.hostname or self.profile.name.lower()
        message = dhcp_mod.discover(
            self.device_mac,
            transaction_id=int(self._rng.integers(0, 2**32)),
            hostname=hostname,
        )
        if step.payload_size:
            message.options.append(
                dhcp_mod.DHCPOption(dhcp_mod.OPTION_VENDOR_CLASS, self._payload(step))
            )
        return [self._emit(self._dhcp_packet(message))]

    def _render_dhcp_request(self, step: SetupStep) -> list[Packet]:
        hostname = self.profile.hostname or self.profile.name.lower()
        message = dhcp_mod.request(
            self.device_mac,
            requested_ip=self.device_ip,
            transaction_id=int(self._rng.integers(0, 2**32)),
            hostname=hostname,
        )
        return [self._emit(self._dhcp_packet(message))]

    def _render_bootp_request(self, step: SetupStep) -> list[Packet]:
        message = dhcp_mod.DHCPMessage(
            op=dhcp_mod.OP_REQUEST, client_mac=self.device_mac, is_dhcp=False
        )
        return [self._emit(self._dhcp_packet(message))]

    # -- IPv6 / multicast membership --------------------------------------- #
    def _ipv6_packet(self, dst_ip: str, message: ICMPv6Message, router_alert: bool = False) -> Packet:
        options = [HBH_OPTION_ROUTER_ALERT] if router_alert else []
        header = IPv6Header(
            src=self._ipv6_link_local(),
            dst=dst_ip,
            next_header=NEXT_HEADER_ICMPV6,
            hop_limit=1,
            hop_by_hop_options=options,
        )
        return Packet(
            ethernet=self._ethernet(_IPV6_MULTICAST_MAC, ETHERTYPE.IPV6),
            ipv6=header,
            icmpv6=message,
        )

    def _render_icmpv6_router_solicit(self, step: SetupStep) -> list[Packet]:
        message = ICMPv6Message(icmp_type=TYPE_ROUTER_SOLICITATION, body=b"\x00" * 8)
        return [self._emit(self._ipv6_packet("ff02::2", message))]

    def _render_icmpv6_neighbor_solicit(self, step: SetupStep) -> list[Packet]:
        message = ICMPv6Message(icmp_type=TYPE_NEIGHBOR_SOLICITATION, body=b"\x00" * 20)
        return [self._emit(self._ipv6_packet("ff02::1:ff00:1", message))]

    def _render_mld_report(self, step: SetupStep) -> list[Packet]:
        message = ICMPv6Message(icmp_type=TYPE_MLDV2_REPORT, body=b"\x00" * 24)
        return [self._emit(self._ipv6_packet("ff02::16", message, router_alert=True))]

    def _render_igmp_join(self, step: SetupStep) -> list[Packet]:
        header = self._ipv4(
            "224.0.0.22",
            protocol=2,
            options=[IPOption(kind=OPTION_ROUTER_ALERT, data=b"\x00\x00"), IPOption(kind=OPTION_NOP)],
        )
        packet = Packet(
            ethernet=self._ethernet(_IPV4_MULTICAST_MAC, ETHERTYPE.IPV4),
            ipv4=header,
            payload=b"\x22\x00\x00\x00" + b"\x00" * 12,
        )
        return [self._emit(packet)]

    # -- name resolution and discovery -------------------------------------- #
    def _render_dns_query(self, step: SetupStep) -> list[Packet]:
        message = dns_mod.query(step.target, transaction_id=int(self._rng.integers(0, 65536)))
        packet = Packet(
            ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.IPV4),
            ipv4=self._ipv4(self._env.dns_server, PROTO_UDP),
            udp=UDPDatagram(src_port=self._ephemeral_port(), dst_port=dns_mod.PORT_DNS),
            application=message,
        )
        return [self._emit(packet)]

    def _mdns_packet(self, message: dns_mod.DNSMessage) -> Packet:
        return Packet(
            ethernet=self._ethernet(_IPV4_MULTICAST_MAC, ETHERTYPE.IPV4),
            ipv4=self._ipv4(dns_mod.MDNS_GROUP_V4, PROTO_UDP),
            udp=UDPDatagram(src_port=dns_mod.PORT_MDNS, dst_port=dns_mod.PORT_MDNS),
            application=message,
        )

    def _render_mdns_announce(self, step: SetupStep) -> list[Packet]:
        hostname = self.profile.hostname or self.profile.name.lower()
        message = dns_mod.mdns_announcement(step.target or "_http._tcp.local", hostname)
        return [self._emit(self._mdns_packet(message))]

    def _render_mdns_query(self, step: SetupStep) -> list[Packet]:
        message = dns_mod.query(step.target or "_services._dns-sd._udp.local", dns_mod.TYPE_PTR)
        return [self._emit(self._mdns_packet(message))]

    def _render_ssdp_msearch(self, step: SetupStep) -> list[Packet]:
        message = ssdp_mod.msearch(step.target or "ssdp:all")
        packet = Packet(
            ethernet=self._ethernet(_IPV4_MULTICAST_MAC, ETHERTYPE.IPV4),
            ipv4=self._ipv4(ssdp_mod.MULTICAST_GROUP_V4, PROTO_UDP),
            udp=UDPDatagram(src_port=self._ephemeral_port(), dst_port=ssdp_mod.PORT_SSDP),
            application=message,
        )
        return [self._emit(packet)]

    def _render_ssdp_notify(self, step: SetupStep) -> list[Packet]:
        usn = f"uuid:{self.profile.name.lower()}-{self.device_mac}"
        location = f"http://{self.device_ip}:{step.port or 8080}/description.xml"
        message = ssdp_mod.notify(step.target or "upnp:rootdevice", usn, location)
        packet = Packet(
            ethernet=self._ethernet(_IPV4_MULTICAST_MAC, ETHERTYPE.IPV4),
            ipv4=self._ipv4(ssdp_mod.MULTICAST_GROUP_V4, PROTO_UDP),
            udp=UDPDatagram(src_port=self._ephemeral_port(), dst_port=ssdp_mod.PORT_SSDP),
            application=message,
        )
        return [self._emit(packet)]

    def _render_ntp(self, step: SetupStep) -> list[Packet]:
        server_ip = self._env.resolve(step.target) if step.target else self._env.ntp_server_ip
        message = ntp_mod.NTPMessage(transmit_timestamp=int(self._rng.integers(0, 2**63)))
        packet = Packet(
            ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.IPV4),
            ipv4=self._ipv4(server_ip, PROTO_UDP),
            udp=UDPDatagram(src_port=ntp_mod.PORT_NTP, dst_port=ntp_mod.PORT_NTP),
            application=message,
        )
        return [self._emit(packet)]

    # -- cloud / application traffic ---------------------------------------- #
    def _tcp_exchange(
        self,
        dst_ip: str,
        dst_port: int,
        payload: bytes,
        application: object = None,
    ) -> list[Packet]:
        source_port = self._ephemeral_port()
        syn = Packet(
            ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.IPV4),
            ipv4=self._ipv4(dst_ip, PROTO_TCP),
            tcp=TCPSegment(
                src_port=source_port,
                dst_port=dst_port,
                seq=int(self._rng.integers(0, 2**32)),
                flags=FLAG_SYN,
            ),
        )
        data = Packet(
            ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.IPV4),
            ipv4=self._ipv4(dst_ip, PROTO_TCP),
            tcp=TCPSegment(
                src_port=source_port,
                dst_port=dst_port,
                seq=int(self._rng.integers(0, 2**32)),
                flags=FLAG_PSH | FLAG_ACK,
                payload=payload if application is None else b"",
            ),
            application=application,
        )
        return [self._emit(syn), self._emit(data)]

    def _render_http_get(self, step: SetupStep) -> list[Packet]:
        host = step.target or "api.example.com"
        destination = self._env.resolve(host)
        request = http_mod.get(
            "/setup" if not step.payload_size else f"/register?pad={'x' * 0}",
            host,
            user_agent=f"{self.profile.vendor}-{self.profile.model}/{self.profile.firmware_version}",
        )
        request.body = self._payload(step)
        if request.body:
            request.headers["Content-Length"] = str(len(request.body))
        return self._tcp_exchange(destination, step.port or http_mod.PORT_HTTP, b"", application=request)

    def _render_http_post(self, step: SetupStep) -> list[Packet]:
        host = step.target or "api.example.com"
        destination = self._env.resolve(host)
        request = http_mod.post("/register", host, self._payload(step))
        return self._tcp_exchange(destination, step.port or http_mod.PORT_HTTP, b"", application=request)

    def _render_https(self, step: SetupStep) -> list[Packet]:
        host = step.target or "cloud.example.com"
        destination = self._env.resolve(host)
        size = max(64, step.payload_size + int(self._rng.integers(-step.size_jitter, step.size_jitter + 1)) if step.size_jitter else step.payload_size or 180)
        hello = tls_mod.client_hello(host, payload_size=size)
        return self._tcp_exchange(destination, step.port or tls_mod.PORT_HTTPS, b"", application=hello)

    def _render_tcp_connect(self, step: SetupStep) -> list[Packet]:
        destination = self._env.resolve(step.target) if step.target else self._env.gateway_ip
        return self._tcp_exchange(destination, step.port or self._registered_port(), self._payload(step))

    def _render_udp_send(self, step: SetupStep) -> list[Packet]:
        destination = self._env.resolve(step.target) if step.target else f"{self._env.subnet_prefix}.255"
        source_port = self._ephemeral_port() if step.source_port_dynamic else step.port
        packet = Packet(
            ethernet=self._ethernet(self._env.gateway_mac if step.target else _BROADCAST, ETHERTYPE.IPV4),
            ipv4=self._ipv4(destination, PROTO_UDP),
            udp=UDPDatagram(
                src_port=source_port,
                dst_port=step.port or self._registered_port(),
                payload=self._payload(step),
            ),
        )
        return [self._emit(packet)]

    def _render_icmp_ping(self, step: SetupStep) -> list[Packet]:
        destination = self._env.resolve(step.target) if step.target else self._env.gateway_ip
        message = ICMPMessage(
            icmp_type=TYPE_ECHO_REQUEST,
            identifier=int(self._rng.integers(0, 65536)),
            sequence=1,
            payload=b"\x00" * max(8, step.payload_size),
        )
        packet = Packet(
            ethernet=self._ethernet(self._env.gateway_mac, ETHERTYPE.IPV4),
            ipv4=self._ipv4(destination, PROTO_ICMP),
            icmp=message,
        )
        return [self._emit(packet)]

    def _render_llc(self, step: SetupStep) -> list[Packet]:
        payload = self._payload(step) or b"\x00" * 35
        packet = Packet(
            ethernet=EthernetFrame(dst=_BROADCAST, src=self.device_mac, ethertype=len(payload) + 3),
            llc=LLCHeader(dsap=SAP_SPANNING_TREE, ssap=SAP_SPANNING_TREE),
            payload=payload,
        )
        return [self._emit(packet)]
