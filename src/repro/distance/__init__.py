"""Edit-distance discrimination (Sect. IV-B-2 of the paper)."""

from repro.distance.damerau_levenshtein import (
    damerau_levenshtein,
    normalized_damerau_levenshtein,
)
from repro.distance.discrimination import (
    DETERMINISTIC_SELECTION,
    RANDOM_SELECTION,
    DissimilarityScore,
    EditDistanceDiscriminator,
    selection_seed,
    selection_seed_from_key,
)

__all__ = [
    "damerau_levenshtein",
    "normalized_damerau_levenshtein",
    "EditDistanceDiscriminator",
    "DissimilarityScore",
    "DETERMINISTIC_SELECTION",
    "RANDOM_SELECTION",
    "selection_seed",
    "selection_seed_from_key",
]
