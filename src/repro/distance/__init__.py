"""Edit-distance discrimination (Sect. IV-B-2 of the paper)."""

from repro.distance.damerau_levenshtein import (
    damerau_levenshtein,
    normalized_damerau_levenshtein,
)
from repro.distance.discrimination import DissimilarityScore, EditDistanceDiscriminator

__all__ = [
    "damerau_levenshtein",
    "normalized_damerau_levenshtein",
    "EditDistanceDiscriminator",
    "DissimilarityScore",
]
