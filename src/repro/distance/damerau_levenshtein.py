"""Damerau-Levenshtein edit distance over arbitrary hashable symbols.

The discrimination stage treats a variable-length fingerprint ``F`` as a
word whose characters are whole packet columns: two characters are equal
only when *all* 23 features match.  The distance counts insertions,
deletions, substitutions and immediate (adjacent) transpositions, i.e. the
restricted "optimal string alignment" variant originally described by
Damerau (1964), which is what the paper cites.

Symbol equality is the hot path of the dynamic program: the inner loop
compares packet columns (23-int tuples) ``len(first) * len(second)`` times,
and real fingerprint columns share long common prefixes (the leading
protocol bits), defeating tuple short-circuiting.  Both sequences are
therefore first *interned* over a shared alphabet -- every distinct symbol
is hashed once and mapped to a small integer -- so the DP compares machine
ints, and the row symbols are hoisted out of the inner loop.
Micro-benchmark on this container (CPython 3.11, two simulated camera
fingerprints of 17/18 packet columns, 10k distance calls): 1.62 s before
vs 1.27 s after, a ~1.3x speedup of the discrimination stage's dominant
cost with identical results (fuzz-checked against the unoptimised DP over
int-tuple symbols).  Interning implies symbols must be hashable (as the
signatures already declare) with ``__eq__`` consistent with ``__hash__``;
symbol equality follows dict-key semantics (identity short-circuits, so a
NaN symbol equals itself here even though ``nan == nan`` is False).

Empty-sequence semantics (documented contract):

* ``damerau_levenshtein`` follows the textbook definition -- the distance
  to an empty sequence is the other sequence's length, and two empty
  sequences have distance 0.
* ``normalized_damerau_levenshtein`` divides by the longer length, so one
  empty sequence yields exactly 1.0 (maximal dissimilarity) -- *returned*,
  not raised, because an empty fingerprint legitimately occurs when a
  device stayed silent during profiling.  Two empty sequences *raise*
  :class:`~repro.exceptions.FingerprintError`: 0/0 has no meaningful
  normalisation, and silently returning 0.0 ("identical") would make a
  pair of failed captures look like a perfect match to the discriminator.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import numpy as np

from repro.exceptions import FingerprintError


class SymbolInterner:
    """An append-only mapping of hashable symbols to dense integer codes.

    The batch edit-distance kernel compares *codes* instead of symbols, so
    every sequence entering it must be encoded over one shared alphabet.
    Codes are handed out in first-seen order and never recycled, which
    makes encodings computed at different times mutually comparable: two
    symbols are equal iff their codes are equal, forever.  The module-level
    :data:`GLOBAL_INTERNER` is what the discrimination stage encodes
    reference fingerprints through (their cached encodings stay valid for
    the life of the process).
    """

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._codes)

    def encode(self, symbols: Sequence[Hashable]) -> np.ndarray:
        """Encode a symbol sequence to an int64 code array."""
        codes = self._codes
        out = np.empty(len(symbols), dtype=np.int64)
        for index, symbol in enumerate(symbols):
            code = codes.get(symbol)
            if code is None:
                code = len(codes)
                codes[symbol] = code
            out[index] = code
        return out


#: The process-wide alphabet shared by every batch-kernel caller.
GLOBAL_INTERNER = SymbolInterner()


def damerau_levenshtein_matrix(
    query: np.ndarray, references: Sequence[np.ndarray]
) -> np.ndarray:
    """Distances of one encoded query against many encoded references.

    All inputs are integer code arrays produced by one shared
    :class:`SymbolInterner`.  The dynamic program runs once over the query
    axis with every reference advanced in lockstep as a numpy matrix: for
    each query row the deletion/substitution/transposition candidates are
    computed in one vectorised step and the insertion recurrence
    ``current[j] = min(current[j-1] + 1, cand[j])`` is folded with the
    prefix-minimum identity ``current[j] = min_{k<=j}(cand[k] + j - k)``
    (a single ``minimum.accumulate``), so no per-cell Python executes.

    Returns one absolute Damerau-Levenshtein distance per reference, as an
    int64 array, bitwise-equal to calling :func:`damerau_levenshtein` per
    pair (the differential property suite asserts this).
    """
    lengths = np.array([len(reference) for reference in references], dtype=np.int64)
    count = len(references)
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    m = len(query)
    if m == 0:
        return lengths.copy()
    max_len = int(lengths.max())
    if max_len == 0:
        return np.full(count, m, dtype=np.int64)

    # Pad with -1: interner codes are non-negative, so padding never
    # equals a query symbol and padded columns charge full substitution
    # cost.  The answer is read at each reference's own length, so the
    # padded tail never leaks into a result.
    refs = np.full((count, max_len), -1, dtype=np.int64)
    for row, reference in enumerate(references):
        if len(reference):
            refs[row, : len(reference)] = reference

    offsets = np.arange(max_len + 1, dtype=np.int64)
    previous = np.broadcast_to(offsets, (count, max_len + 1)).copy()
    previous_previous = np.zeros_like(previous)
    candidate = np.empty_like(previous)
    for i in range(1, m + 1):
        symbol = query[i - 1]
        # Deletion vs substitution, vectorised across every (ref, j) cell.
        candidate[:, 0] = i
        np.minimum(
            previous[:, 1:] + 1,
            previous[:, :-1] + (refs != symbol),
            out=candidate[:, 1:],
        )
        if i > 1:
            previous_symbol = query[i - 2]
            # Adjacent transposition: q[i-2..i-1] crossed with ref[j-2..j-1].
            swap = (refs[:, : max_len - 1] == symbol) & (refs[:, 1:] == previous_symbol)
            np.minimum(
                candidate[:, 2:],
                np.where(swap, previous_previous[:, : max_len - 1] + 1, np.iinfo(np.int64).max),
                out=candidate[:, 2:],
            )
        # Insertion as a prefix-minimum over candidate costs.
        current = np.minimum.accumulate(candidate - offsets, axis=1) + offsets
        previous_previous, previous, candidate = previous, current, previous_previous
    return previous[np.arange(count), lengths]


def normalized_distances(
    query: np.ndarray,
    query_length: int,
    references: Sequence[np.ndarray],
) -> list[float]:
    """Batch counterpart of :func:`normalized_damerau_levenshtein`.

    ``query``/``references`` are interned code arrays; ``query_length`` is
    ``len(query)`` (passed explicitly so callers holding an encoded view
    need not re-measure).  Pair semantics are identical to the scalar
    function, including the empty-sequence contract: one empty side yields
    exactly 1.0, an empty query against an empty reference raises
    :class:`FingerprintError`.  Each result is the integer distance divided
    by the longer length -- the same two machine numbers the scalar path
    divides, so the floats are bitwise identical.
    """
    for reference in references:
        if query_length == 0 and len(reference) == 0:
            raise FingerprintError("cannot normalise the distance of two empty sequences")
    distances = damerau_levenshtein_matrix(query, references)
    return [
        int(distance) / max(query_length, len(reference))
        for distance, reference in zip(distances, references)
    ]


# --------------------------------------------------------------------- #
# Self-contained deterministic draws (cross-numpy-version stability).
# --------------------------------------------------------------------- #
_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> tuple[int, int]:
    """One step of the splitmix64 generator: ``(next_state, output)``.

    The reference construction of Steele et al. (2014), implemented over
    plain Python integers so the output stream depends on nothing but the
    seed -- not the numpy version, not the platform word size.
    """
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, (z ^ (z >> 31)) & _MASK64


def splitmix_subset(seed: int, population: int, size: int) -> tuple[int, ...]:
    """Draw ``size`` distinct indices from ``range(population)``, sorted.

    A partial Fisher-Yates shuffle driven by :func:`splitmix64`, with
    modulo bias removed by rejection sampling.  This is the discrimination
    stage's reference draw: self-contained, so the verdict stream survives
    numpy upgrades that change ``Generator.choice`` internals.
    """
    if size >= population:
        return tuple(range(population))
    pool = list(range(population))
    state = seed & _MASK64
    for position in range(size):
        remaining = population - position
        # Rejection bound: the largest multiple of `remaining` below 2^64.
        bound = _MASK64 + 1 - ((_MASK64 + 1) % remaining)
        while True:
            state, value = splitmix64(state)
            if value < bound:
                break
        swap = position + (value % remaining)
        pool[position], pool[swap] = pool[swap], pool[position]
    return tuple(sorted(pool[:size]))


def _intern(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> tuple[list[int], list[int]]:
    """Map both sequences onto small ints over one shared alphabet."""
    codes: dict[Hashable, int] = {}
    encoded = []
    for sequence in (first, second):
        encoded.append([codes.setdefault(symbol, len(codes)) for symbol in sequence])
    return encoded[0], encoded[1]


def damerau_levenshtein(first: Sequence[Hashable], second: Sequence[Hashable]) -> int:
    """Absolute Damerau-Levenshtein distance between two symbol sequences."""
    len_first = len(first)
    len_second = len(second)
    if len_first == 0:
        return len_second
    if len_second == 0:
        return len_first
    first, second = _intern(first, second)

    # Classic dynamic program with three rows (previous-previous, previous,
    # current) which is all the adjacent-transposition case needs.  The
    # row-i symbols are hoisted out of the inner loop; with interned
    # symbols every comparison below is an int comparison.
    previous_previous = [0] * (len_second + 1)
    previous = list(range(len_second + 1))
    for i in range(1, len_first + 1):
        current = [i] + [0] * len_second
        symbol = first[i - 1]
        previous_symbol = first[i - 2] if i > 1 else None
        for j in range(1, len_second + 1):
            substitution_cost = 0 if symbol == second[j - 1] else 1
            cost = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
            if (
                j > 1
                and previous_symbol is not None
                and symbol == second[j - 2]
                and previous_symbol == second[j - 1]
            ):
                transposition = previous_previous[j - 2] + 1
                if transposition < cost:
                    cost = transposition
            current[j] = cost
        previous_previous, previous = previous, current
    return previous[len_second]


def normalized_damerau_levenshtein(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> float:
    """Distance divided by the length of the longer sequence, bounded on [0, 1].

    This is the normalisation the paper applies before summing per-type
    dissimilarity scores.  Exactly one empty sequence returns 1.0 (any
    sequence is maximally dissimilar from silence); two empty sequences
    raise :class:`FingerprintError` -- see the module docstring for why.
    """
    longest = max(len(first), len(second))
    if longest == 0:
        raise FingerprintError("cannot normalise the distance of two empty sequences")
    # One empty side needs no special case: the distance equals the other
    # side's length, so the division yields exactly 1.0.
    return damerau_levenshtein(first, second) / longest
