"""Damerau-Levenshtein edit distance over arbitrary hashable symbols.

The discrimination stage treats a variable-length fingerprint ``F`` as a
word whose characters are whole packet columns: two characters are equal
only when *all* 23 features match.  The distance counts insertions,
deletions, substitutions and immediate (adjacent) transpositions, i.e. the
restricted "optimal string alignment" variant originally described by
Damerau (1964), which is what the paper cites.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import FingerprintError


def damerau_levenshtein(first: Sequence[Hashable], second: Sequence[Hashable]) -> int:
    """Absolute Damerau-Levenshtein distance between two symbol sequences."""
    len_first = len(first)
    len_second = len(second)
    if len_first == 0:
        return len_second
    if len_second == 0:
        return len_first

    # Classic dynamic program with three rows (previous-previous, previous,
    # current) which is all the adjacent-transposition case needs.
    previous_previous = [0] * (len_second + 1)
    previous = list(range(len_second + 1))
    for i in range(1, len_first + 1):
        current = [i] + [0] * len_second
        for j in range(1, len_second + 1):
            substitution_cost = 0 if first[i - 1] == second[j - 1] else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and first[i - 1] == second[j - 2]
                and first[i - 2] == second[j - 1]
            ):
                current[j] = min(current[j], previous_previous[j - 2] + 1)  # transposition
        previous_previous, previous = previous, current
    return previous[len_second]


def normalized_damerau_levenshtein(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> float:
    """Distance divided by the length of the longer sequence, bounded on [0, 1].

    This is the normalisation the paper applies before summing per-type
    dissimilarity scores.
    """
    longest = max(len(first), len(second))
    if longest == 0:
        raise FingerprintError("cannot normalise the distance of two empty sequences")
    return damerau_levenshtein(first, second) / longest
