"""Damerau-Levenshtein edit distance over arbitrary hashable symbols.

The discrimination stage treats a variable-length fingerprint ``F`` as a
word whose characters are whole packet columns: two characters are equal
only when *all* 23 features match.  The distance counts insertions,
deletions, substitutions and immediate (adjacent) transpositions, i.e. the
restricted "optimal string alignment" variant originally described by
Damerau (1964), which is what the paper cites.

Symbol equality is the hot path of the dynamic program: the inner loop
compares packet columns (23-int tuples) ``len(first) * len(second)`` times,
and real fingerprint columns share long common prefixes (the leading
protocol bits), defeating tuple short-circuiting.  Both sequences are
therefore first *interned* over a shared alphabet -- every distinct symbol
is hashed once and mapped to a small integer -- so the DP compares machine
ints, and the row symbols are hoisted out of the inner loop.
Micro-benchmark on this container (CPython 3.11, two simulated camera
fingerprints of 17/18 packet columns, 10k distance calls): 1.62 s before
vs 1.27 s after, a ~1.3x speedup of the discrimination stage's dominant
cost with identical results (fuzz-checked against the unoptimised DP over
int-tuple symbols).  Interning implies symbols must be hashable (as the
signatures already declare) with ``__eq__`` consistent with ``__hash__``;
symbol equality follows dict-key semantics (identity short-circuits, so a
NaN symbol equals itself here even though ``nan == nan`` is False).

Empty-sequence semantics (documented contract):

* ``damerau_levenshtein`` follows the textbook definition -- the distance
  to an empty sequence is the other sequence's length, and two empty
  sequences have distance 0.
* ``normalized_damerau_levenshtein`` divides by the longer length, so one
  empty sequence yields exactly 1.0 (maximal dissimilarity) -- *returned*,
  not raised, because an empty fingerprint legitimately occurs when a
  device stayed silent during profiling.  Two empty sequences *raise*
  :class:`~repro.exceptions.FingerprintError`: 0/0 has no meaningful
  normalisation, and silently returning 0.0 ("identical") would make a
  pair of failed captures look like a perfect match to the discriminator.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import FingerprintError


def _intern(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> tuple[list[int], list[int]]:
    """Map both sequences onto small ints over one shared alphabet."""
    codes: dict[Hashable, int] = {}
    encoded = []
    for sequence in (first, second):
        encoded.append([codes.setdefault(symbol, len(codes)) for symbol in sequence])
    return encoded[0], encoded[1]


def damerau_levenshtein(first: Sequence[Hashable], second: Sequence[Hashable]) -> int:
    """Absolute Damerau-Levenshtein distance between two symbol sequences."""
    len_first = len(first)
    len_second = len(second)
    if len_first == 0:
        return len_second
    if len_second == 0:
        return len_first
    first, second = _intern(first, second)

    # Classic dynamic program with three rows (previous-previous, previous,
    # current) which is all the adjacent-transposition case needs.  The
    # row-i symbols are hoisted out of the inner loop; with interned
    # symbols every comparison below is an int comparison.
    previous_previous = [0] * (len_second + 1)
    previous = list(range(len_second + 1))
    for i in range(1, len_first + 1):
        current = [i] + [0] * len_second
        symbol = first[i - 1]
        previous_symbol = first[i - 2] if i > 1 else None
        for j in range(1, len_second + 1):
            substitution_cost = 0 if symbol == second[j - 1] else 1
            cost = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
            if (
                j > 1
                and previous_symbol is not None
                and symbol == second[j - 2]
                and previous_symbol == second[j - 1]
            ):
                transposition = previous_previous[j - 2] + 1
                if transposition < cost:
                    cost = transposition
            current[j] = cost
        previous_previous, previous = previous, current
    return previous[len_second]


def normalized_damerau_levenshtein(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> float:
    """Distance divided by the length of the longer sequence, bounded on [0, 1].

    This is the normalisation the paper applies before summing per-type
    dissimilarity scores.  Exactly one empty sequence returns 1.0 (any
    sequence is maximally dissimilar from silence); two empty sequences
    raise :class:`FingerprintError` -- see the module docstring for why.
    """
    longest = max(len(first), len(second))
    if longest == 0:
        raise FingerprintError("cannot normalise the distance of two empty sequences")
    # One empty side needs no special case: the distance equals the other
    # side's length, so the division yields exactly 1.0.
    return damerau_levenshtein(first, second) / longest
