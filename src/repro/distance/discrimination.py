"""Edit-distance discrimination between candidate device-types.

When the fixed-length fingerprint of an unknown device is accepted by more
than one per-type classifier, the paper compares the *variable-length*
fingerprint ``F`` against up to five reference fingerprints of each
candidate type using the normalised Damerau-Levenshtein distance.  The
per-type distances are summed into a dissimilarity score in ``[0, 5]`` and
the candidate with the lowest score wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.distance.damerau_levenshtein import normalized_damerau_levenshtein
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint


@dataclass(frozen=True)
class DissimilarityScore:
    """The summed normalised distance of a fingerprint to one device-type."""

    device_type: str
    score: float
    comparisons: int

    def __lt__(self, other: "DissimilarityScore") -> bool:
        return self.score < other.score


@dataclass
class EditDistanceDiscriminator:
    """Discriminates between candidate device-types via edit distance.

    Attributes:
        references_per_type: how many reference fingerprints of each
            candidate type to compare against (5 in the paper).
        rng: random generator used to pick the reference subset.
    """

    references_per_type: int = 5
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.references_per_type <= 0:
            raise IdentificationError("references_per_type must be positive")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def _select_references(self, references: Sequence[Fingerprint]) -> list[Fingerprint]:
        if len(references) <= self.references_per_type:
            return list(references)
        indices = self.rng.choice(len(references), size=self.references_per_type, replace=False)
        return [references[int(index)] for index in indices]

    def score_type(
        self, fingerprint: Fingerprint, device_type: str, references: Sequence[Fingerprint]
    ) -> DissimilarityScore:
        """Dissimilarity score of ``fingerprint`` with one candidate type."""
        if not references:
            raise IdentificationError(f"no reference fingerprints for type {device_type!r}")
        chosen = self._select_references(references)
        word = fingerprint.as_symbol_sequence()
        total = 0.0
        for reference in chosen:
            total += normalized_damerau_levenshtein(word, reference.as_symbol_sequence())
        return DissimilarityScore(device_type=device_type, score=total, comparisons=len(chosen))

    def discriminate(
        self,
        fingerprint: Fingerprint,
        candidates: dict[str, Sequence[Fingerprint]],
    ) -> tuple[str, list[DissimilarityScore]]:
        """Pick the best-matching type among ``candidates``.

        ``candidates`` maps each candidate device-type to its reference
        fingerprints (training-set fingerprints of that type).  Returns the
        winning type and every per-type score (sorted, best first).
        """
        if not candidates:
            raise IdentificationError("discrimination requires at least one candidate type")
        scores = sorted(
            self.score_type(fingerprint, device_type, references)
            for device_type, references in candidates.items()
        )
        return scores[0].device_type, scores
