"""Edit-distance discrimination between candidate device-types.

When the fixed-length fingerprint of an unknown device is accepted by more
than one per-type classifier, the paper compares the *variable-length*
fingerprint ``F`` against up to five reference fingerprints of each
candidate type using the normalised Damerau-Levenshtein distance.  The
per-type distances are summed into a dissimilarity score in ``[0, 5]`` and
the candidate with the lowest score wins.

The paper samples the reference subset *randomly* per call.  Reproducing
that faithfully made borderline verdicts unstable: a fingerprint whose
dissimilarity sits near the novelty threshold could flip between
``unknown`` and a near-miss type across calls, across restarts, and
between two gateways serving the same model bundle.  The default here is
therefore a **deterministic per-fingerprint draw**: the subset is selected
by a generator seeded from the fingerprint's content hash, the candidate
type, the registry ``salt`` (the identifier's revision counter) and the
reference-pool size -- the same fingerprint meets the same references
until the registry actually changes, in any process, under any
``PYTHONHASHSEED``.  The paper's random draw remains available as
``selection="random"`` for the ablation experiment
(:func:`repro.eval.experiments.run_selection_ablation`).

Tie-breaking contract: two candidates with *exactly* equal dissimilarity
scores are ordered lexicographically by ``device_type`` -- the winner of a
tie is the alphabetically first type, never dict-insertion order.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.distance.damerau_levenshtein import (
    GLOBAL_INTERNER,
    normalized_damerau_levenshtein,
    normalized_distances,
    splitmix_subset,
)
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint, fingerprint_key

#: Reference subsets are drawn by a generator seeded from the fingerprint
#: content hash (reproducible verdicts; the default).
DETERMINISTIC_SELECTION = "deterministic"

#: Reference subsets are drawn from a shared mutable generator, exactly as
#: the paper describes (verdicts depend on call history; ablation only).
RANDOM_SELECTION = "random"

_SELECTION_MODES = (DETERMINISTIC_SELECTION, RANDOM_SELECTION)

#: The deterministic draw expands the selection seed with a self-contained
#: splitmix64 + Fisher-Yates shuffle (the default): the drawn subset
#: depends on nothing but the seed, so verdicts are stable across numpy
#: versions.
SPLITMIX_DRAW = "splitmix64"

#: The retired numpy-backed draw (``default_rng(seed).choice``), kept so
#: schema-v3 model bundles reproduce their historical verdict streams --
#: ``Generator.choice`` internals may change between numpy releases.
NUMPY_DRAW = "numpy"

_DRAW_MODES = (SPLITMIX_DRAW, NUMPY_DRAW)

#: Edit distances are computed by the vectorised batch kernel
#: (:func:`~repro.distance.damerau_levenshtein.damerau_levenshtein_matrix`),
#: one matrix op per fingerprint across all candidate references.
BATCHED_KERNEL = "batched"

#: Edit distances are computed by the scalar dynamic program, one
#: reference pair at a time.  Kept as the reference oracle for the
#: differential suite; results are bitwise-identical either way.
SCALAR_KERNEL = "scalar"

_KERNEL_MODES = (BATCHED_KERNEL, SCALAR_KERNEL)


def _encoded_word(fingerprint: Fingerprint) -> np.ndarray:
    """The fingerprint's symbol sequence, interned over the global alphabet.

    Cached on the fingerprint instance: reference fingerprints live for
    the process lifetime and are compared on every discrimination, so
    re-tupling and re-interning them per call would dominate the batch
    kernel's win.  Codes from :data:`GLOBAL_INTERNER` never invalidate
    (the alphabet is append-only), and ``Fingerprint.vectors`` is
    treated as immutable after construction everywhere in the system.
    """
    codes = getattr(fingerprint, "_symbol_codes", None)
    if codes is None:
        codes = GLOBAL_INTERNER.encode(fingerprint.as_symbol_sequence())
        fingerprint._symbol_codes = codes
    return codes


def selection_seed_from_key(
    content_key: bytes,
    device_type: str,
    reference_count: int,
    references_per_type: int,
    salt: int = 0,
) -> int:
    """:func:`selection_seed` for a precomputed fingerprint content key.

    ``discriminate`` hashes the fingerprint matrix once and reuses the
    key across every candidate type, so a multi-match identification does
    not re-hash the same matrix per candidate on the hot path.
    """
    digest = hashlib.sha256()
    digest.update(content_key)
    digest.update(device_type.encode("utf-8"))
    digest.update(f":{salt}:{reference_count}:{references_per_type}".encode("ascii"))
    return int.from_bytes(digest.digest()[:8], "big")


def selection_seed(
    fingerprint: Fingerprint,
    device_type: str,
    reference_count: int,
    references_per_type: int,
    salt: int = 0,
) -> int:
    """The deterministic draw seed for one (fingerprint, candidate) pair.

    Derived with SHA-256 from the fingerprint's content hash
    (:func:`~repro.features.fingerprint.fingerprint_key`), the candidate
    ``device_type``, the caller-supplied ``salt`` (the identifier passes
    its ``revision`` counter, so a registry change re-randomises the
    draw), the size of the reference pool and the configured subset size.
    Content-only hashing makes the seed -- and therefore the selected
    reference subset -- identical across calls, processes, restarts and
    ``PYTHONHASHSEED`` values.
    """
    return selection_seed_from_key(
        fingerprint_key(fingerprint), device_type, reference_count, references_per_type, salt
    )


@dataclass(frozen=True)
class DissimilarityScore:
    """The summed normalised distance of a fingerprint to one device-type.

    Attributes:
        device_type: the candidate type this score belongs to.
        score: summed normalised edit distance over the compared references.
        comparisons: how many references were actually compared.
        reference_indices: verdict provenance -- the indices (into the
            candidate type's reference list, ascending) of the references
            that were compared.  Lets an operator audit exactly which
            training fingerprints a borderline decision was based on.
        selection_seed: the deterministic draw seed that produced
            ``reference_indices``, or ``None`` when no draw happened (the
            whole pool was used, or the paper-style random mode ran).
    """

    device_type: str
    score: float
    comparisons: int
    reference_indices: tuple[int, ...] = ()
    selection_seed: Optional[int] = None

    def __lt__(self, other: "DissimilarityScore") -> bool:
        # Exactly-equal scores order lexicographically by device_type: the
        # tie winner is the alphabetically first candidate, independent of
        # candidate-dict insertion order (documented contract).
        return (self.score, self.device_type) < (other.score, other.device_type)


@dataclass
class EditDistanceDiscriminator:
    """Discriminates between candidate device-types via edit distance.

    Attributes:
        references_per_type: how many reference fingerprints of each
            candidate type to compare against (5 in the paper).
        selection: ``"deterministic"`` (default) seeds each reference draw
            from the fingerprint's content hash so the same fingerprint
            always meets the same references; ``"random"`` reproduces the
            paper's shared-generator draw (nondeterministic across calls,
            kept for the ablation experiment).
        draw: how the deterministic seed expands into a subset.
            ``"splitmix64"`` (default) is the self-contained
            splitmix64 + Fisher-Yates draw, stable across numpy versions;
            ``"numpy"`` replays the retired ``Generator.choice`` draw and
            is what schema-v3 bundles load with, so their historical
            verdict streams survive the migration.  Ignored by
            ``selection="random"``.
        kernel: ``"batched"`` (default) computes edit distances through
            the vectorised matrix kernel; ``"scalar"`` runs the per-pair
            dynamic program (the differential oracle).  Results are
            bitwise-identical; this is purely a performance knob and is
            not persisted in model bundles.
        rng: the shared generator used by ``"random"`` mode only; ignored
            (and left ``None``) in deterministic mode.
    """

    references_per_type: int = 5
    selection: str = DETERMINISTIC_SELECTION
    draw: str = SPLITMIX_DRAW
    kernel: str = BATCHED_KERNEL
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.references_per_type <= 0:
            raise IdentificationError("references_per_type must be positive")
        if self.selection not in _SELECTION_MODES:
            raise IdentificationError(
                f"selection must be one of {_SELECTION_MODES}, got {self.selection!r}"
            )
        if self.draw not in _DRAW_MODES:
            raise IdentificationError(
                f"draw must be one of {_DRAW_MODES}, got {self.draw!r}"
            )
        if self.kernel not in _KERNEL_MODES:
            raise IdentificationError(
                f"kernel must be one of {_KERNEL_MODES}, got {self.kernel!r}"
            )
        if self.selection == RANDOM_SELECTION and self.rng is None:
            # repro-lint: disable=no-unseeded-rng -- selection="random" is the paper's deliberately nondeterministic legacy mode; callers wanting replayable draws use the default deterministic selection
            self.rng = np.random.default_rng()
        if self.selection == DETERMINISTIC_SELECTION and self.rng is not None:
            # A pre-deterministic-draw caller seeding the old shared
            # generator must not silently get different semantics than it
            # asked for: surface the migration, then honour the documented
            # contract (rng stays None in deterministic mode).
            warnings.warn(
                "EditDistanceDiscriminator ignores rng under the default "
                "deterministic selection; pass selection=\"random\" for the "
                "paper-style seeded draw",
                RuntimeWarning,
                stacklevel=2,
            )
            self.rng = None

    @property
    def is_deterministic(self) -> bool:
        return self.selection == DETERMINISTIC_SELECTION

    def _select_references(
        self,
        content_key: Optional[bytes],
        device_type: str,
        references: Sequence[Fingerprint],
        salt: int,
    ) -> tuple[list[Fingerprint], tuple[int, ...], Optional[int]]:
        """The compared subset plus its provenance (indices, draw seed)."""
        if len(references) <= self.references_per_type:
            return list(references), tuple(range(len(references))), None
        if self.selection == RANDOM_SELECTION:
            indices = self.rng.choice(
                len(references), size=self.references_per_type, replace=False
            )
            seed: Optional[int] = None
        else:
            seed = selection_seed_from_key(
                content_key, device_type, len(references), self.references_per_type, salt
            )
            if self.draw == SPLITMIX_DRAW:
                indices = splitmix_subset(seed, len(references), self.references_per_type)
            else:
                indices = np.random.default_rng(seed).choice(
                    len(references), size=self.references_per_type, replace=False
                )
        chosen_indices = tuple(sorted(int(index) for index in indices))
        return [references[index] for index in chosen_indices], chosen_indices, seed

    def score_type(
        self,
        fingerprint: Fingerprint,
        device_type: str,
        references: Sequence[Fingerprint],
        salt: int = 0,
        content_key: Optional[bytes] = None,
    ) -> DissimilarityScore:
        """Dissimilarity score of ``fingerprint`` with one candidate type.

        ``salt`` feeds the deterministic draw seed; the identifier passes
        its ``revision`` counter so a registry change (and only a registry
        change) re-randomises which references are met.  ``content_key``
        lets a caller that already hashed the fingerprint
        (:meth:`discriminate` hashes it once for all candidates) skip the
        re-hash; it must equal ``fingerprint_key(fingerprint)``.
        """
        if not references:
            raise IdentificationError(f"no reference fingerprints for type {device_type!r}")
        if (
            content_key is None
            and self.selection == DETERMINISTIC_SELECTION
            and len(references) > self.references_per_type
        ):
            content_key = fingerprint_key(fingerprint)
        chosen, indices, seed = self._select_references(
            content_key, device_type, references, salt
        )
        total = self._summed_distance(fingerprint, chosen)
        return DissimilarityScore(
            device_type=device_type,
            score=total,
            comparisons=len(chosen),
            reference_indices=indices,
            selection_seed=seed,
        )

    def _summed_distance(
        self, fingerprint: Fingerprint, chosen: Sequence[Fingerprint]
    ) -> float:
        """Sum of normalised distances to ``chosen``, kernel-dispatched.

        Both kernels accumulate the per-reference values in the same
        (ascending-index) order with the same float additions, so the sum
        is bitwise identical either way.
        """
        if self.kernel == BATCHED_KERNEL:
            word = _encoded_word(fingerprint)
            values = normalized_distances(
                word, len(word), [_encoded_word(reference) for reference in chosen]
            )
        else:
            word = fingerprint.as_symbol_sequence()
            values = [
                normalized_damerau_levenshtein(word, reference.as_symbol_sequence())
                for reference in chosen
            ]
        total = 0.0
        for value in values:
            total += value
        return total

    def discriminate(
        self,
        fingerprint: Fingerprint,
        candidates: dict[str, Sequence[Fingerprint]],
        salt: int = 0,
    ) -> tuple[str, list[DissimilarityScore]]:
        """Pick the best-matching type among ``candidates``.

        ``candidates`` maps each candidate device-type to its reference
        fingerprints (training-set fingerprints of that type).  Returns the
        winning type and every per-type score (sorted, best first).
        Exactly-equal scores are broken lexicographically on
        ``device_type``, so the verdict never depends on the insertion
        order of the candidate dict.
        """
        if not candidates:
            raise IdentificationError("discrimination requires at least one candidate type")
        content_key = (
            fingerprint_key(fingerprint)
            if self.selection == DETERMINISTIC_SELECTION
            else None
        )
        if self.kernel != BATCHED_KERNEL:
            scores = sorted(
                self.score_type(fingerprint, device_type, references, salt, content_key)
                for device_type, references in candidates.items()
            )
            return scores[0].device_type, scores

        # Batched kernel: draw every candidate's subset first, then score
        # the fingerprint against the union of chosen references in ONE
        # matrix-kernel invocation, and split the per-pair values back per
        # type.  Per-type sums accumulate in the same ascending-index
        # order as the scalar path, so every score is bitwise identical.
        selections: list[tuple[str, list[Fingerprint], tuple[int, ...], Optional[int]]] = []
        for device_type, references in candidates.items():
            if not references:
                raise IdentificationError(
                    f"no reference fingerprints for type {device_type!r}"
                )
            chosen, indices, seed = self._select_references(
                content_key, device_type, references, salt
            )
            selections.append((device_type, chosen, indices, seed))
        word = _encoded_word(fingerprint)
        pooled = [
            _encoded_word(reference)
            for _, chosen, _, _ in selections
            for reference in chosen
        ]
        values = normalized_distances(word, len(word), pooled)
        scores = []
        cursor = 0
        for device_type, chosen, indices, seed in selections:
            total = 0.0
            for value in values[cursor : cursor + len(chosen)]:
                total += value
            cursor += len(chosen)
            scores.append(
                DissimilarityScore(
                    device_type=device_type,
                    score=total,
                    comparisons=len(chosen),
                    reference_indices=indices,
                    selection_seed=seed,
                )
            )
        scores.sort()
        return scores[0].device_type, scores
