"""Experiment runners for every table and figure of the paper's evaluation.

Each function reproduces the measurement procedure of one table or figure of
Sect. VI; the benchmark modules under ``benchmarks/`` are thin wrappers that
call these runners and print the resulting rows/series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.datasets.builder import FingerprintDataset
from repro.devices.catalog import DEVICE_NAMES, TABLE_III_DEVICES
from repro.devices.simulator import SetupTrafficSimulator
from repro.devices.catalog import DEVICE_CATALOG
from repro.distance.damerau_levenshtein import normalized_damerau_levenshtein
from repro.distance.discrimination import (
    DETERMINISTIC_SELECTION,
    RANDOM_SELECTION,
    EditDistanceDiscriminator,
)
from repro.features.fingerprint import Fingerprint
from repro.gateway.enforcement import EnforcementRule
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.identifier import DeviceTypeIdentifier
from repro.ml.metrics import confusion_matrix, per_class_accuracy
from repro.ml.validation import StratifiedKFold
from repro.net.addresses import MACAddress
from repro.security_service.isolation import IsolationLevel
from repro.simulation.latency import LatencyModel, PathType
from repro.simulation.resources import GatewayResourceModel
from repro.simulation.workload import ConcurrentFlowWorkload

# --------------------------------------------------------------------------- #
# Fig. 5 and Table III: identification accuracy and confusion.
# --------------------------------------------------------------------------- #


@dataclass
class IdentificationEvaluation:
    """Cross-validated identification results (Fig. 5 + Table III inputs)."""

    y_true: list[str] = field(default_factory=list)
    y_pred: list[str] = field(default_factory=list)
    needed_discrimination: int = 0
    candidate_counts: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def overall_accuracy(self) -> float:
        true = np.asarray(self.y_true, dtype=object)
        pred = np.asarray(self.y_pred, dtype=object)
        return float(np.mean(true == pred))

    @property
    def per_type_accuracy(self) -> dict[str, float]:
        accuracy = per_class_accuracy(self.y_true, self.y_pred)
        ordered = {name: accuracy[name] for name in DEVICE_NAMES if name in accuracy}
        for name, value in accuracy.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    @property
    def discrimination_fraction(self) -> float:
        """Fraction of fingerprints accepted by more than one classifier."""
        return self.needed_discrimination / len(self.y_true) if self.y_true else 0.0

    @property
    def mean_candidates_when_ambiguous(self) -> float:
        ambiguous = [count for count in self.candidate_counts if count > 1]
        return float(np.mean(ambiguous)) if ambiguous else 0.0

    def confusion(self, labels: Optional[Sequence[str]] = None) -> tuple[np.ndarray, list]:
        return confusion_matrix(self.y_true, self.y_pred, labels=labels)


def evaluate_identification(
    dataset: FingerprintDataset,
    n_splits: int = 10,
    repetitions: int = 1,
    n_estimators: int = 10,
    negative_ratio: float = 10.0,
    use_discrimination: bool = True,
    random_state: int = 0,
) -> IdentificationEvaluation:
    """Stratified k-fold cross-validation of the identification pipeline.

    This is the experiment behind Fig. 5 and Table III: at each fold one
    binary classifier per device-type is trained on the training split
    (positives = the type's fingerprints, negatives = a ``negative_ratio x n``
    subsample of the rest) and every test fingerprint runs through
    classification plus, when needed, edit-distance discrimination.
    """
    labels = dataset.labels
    evaluation = IdentificationEvaluation()
    start = time.perf_counter()
    for repetition in range(repetitions):
        splitter = StratifiedKFold(
            n_splits=n_splits, shuffle=True, random_state=random_state + repetition
        )
        for train_indices, test_indices in splitter.split(labels):
            registry = dataset.to_registry(train_indices)
            identifier = DeviceTypeIdentifier.train(
                registry,
                negative_ratio=negative_ratio,
                n_estimators=n_estimators,
                random_state=random_state + repetition,
            )
            for index in test_indices:
                fingerprint = dataset.fingerprints[int(index)]
                result = identifier.identify(fingerprint, use_discrimination=use_discrimination)
                evaluation.y_true.append(fingerprint.device_type)
                evaluation.y_pred.append(result.device_type)
                evaluation.candidate_counts.append(len(result.matched_types))
                if result.needed_discrimination:
                    evaluation.needed_discrimination += 1
    evaluation.elapsed_seconds = time.perf_counter() - start
    return evaluation


def table_iii_confusion(
    evaluation: IdentificationEvaluation,
    devices: Sequence[str] = TABLE_III_DEVICES,
) -> tuple[np.ndarray, list[str]]:
    """Restrict the confusion matrix to the ten confusable devices of Table III."""
    matrix, labels = evaluation.confusion(labels=list(devices))
    return matrix, list(labels)


# --------------------------------------------------------------------------- #
# Table IV: identification timing.
# --------------------------------------------------------------------------- #


@dataclass
class TimingSummary:
    """Mean/stdev wall-clock timings (milliseconds) of the pipeline steps."""

    rows: dict[str, tuple[float, float]] = field(default_factory=dict)

    def mean_of(self, step: str) -> float:
        return self.rows[step][0]


def _mean_std_ms(samples: Sequence[float]) -> tuple[float, float]:
    values = np.asarray(samples) * 1000.0
    return float(values.mean()), float(values.std())


def run_timing(
    dataset: Optional[FingerprintDataset] = None,
    identifier: Optional[DeviceTypeIdentifier] = None,
    samples: int = 50,
    random_state: int = 0,
    classifications_per_identification: Optional[int] = None,
    discriminations_per_identification: int = 7,
) -> TimingSummary:
    """Table IV: time consumption of each identification step.

    Measures (a) one Random-Forest classification, (b) one edit-distance
    computation, (c) one fingerprint extraction from a packet trace, and the
    composite rows: one classification per known type, the average number of
    edit-distance computations per identification (7 in the paper's setup)
    and the resulting total type-identification time.
    """
    if dataset is None:
        from repro.datasets.builder import generate_fingerprint_dataset

        dataset = generate_fingerprint_dataset(runs_per_type=6, seed=random_state)
    if identifier is None:
        identifier = DeviceTypeIdentifier.train(dataset.to_registry(), random_state=random_state)

    rng = np.random.default_rng(random_state)
    fingerprints = dataset.fingerprints
    type_count = len(identifier.known_device_types)
    classifications_per_identification = classifications_per_identification or type_count

    single_classifier = identifier.bank.classifier_of(identifier.known_device_types[0])

    classification_times: list[float] = []
    distance_times: list[float] = []
    extraction_times: list[float] = []
    all_classification_times: list[float] = []
    identification_times: list[float] = []

    simulator = SetupTrafficSimulator(seed=random_state)
    profiles = [DEVICE_CATALOG[name] for name in dataset.device_types if name in DEVICE_CATALOG]

    for _ in range(samples):
        fingerprint = fingerprints[int(rng.integers(0, len(fingerprints)))]
        other = fingerprints[int(rng.integers(0, len(fingerprints)))]
        fixed = fingerprint.to_fixed_vector()

        start = time.perf_counter()
        single_classifier.accepts(fixed)
        classification_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        normalized_damerau_levenshtein(
            fingerprint.as_symbol_sequence(), other.as_symbol_sequence()
        )
        distance_times.append(time.perf_counter() - start)

        if profiles:
            trace = simulator.simulate(profiles[int(rng.integers(0, len(profiles)))])
            start = time.perf_counter()
            Fingerprint.from_packets(trace.packets)
            extraction_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        identifier.bank.matching_types(fingerprint)
        all_classification_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        identifier.identify(fingerprint)
        identification_times.append(time.perf_counter() - start)

    single_classification = _mean_std_ms(classification_times)
    single_distance = _mean_std_ms(distance_times)
    extraction = _mean_std_ms(extraction_times) if extraction_times else (0.0, 0.0)
    all_classifications = _mean_std_ms(all_classification_times)
    discriminations = (
        single_distance[0] * discriminations_per_identification,
        single_distance[1] * discriminations_per_identification,
    )
    type_identification = (
        extraction[0] + all_classifications[0] + discriminations[0],
        float(np.sqrt(extraction[1] ** 2 + all_classifications[1] ** 2 + discriminations[1] ** 2)),
    )

    summary = TimingSummary()
    summary.rows["1 Classification (Random Forest)"] = single_classification
    summary.rows["1 Discrimination (edit distance)"] = single_distance
    summary.rows["Fingerprint extraction"] = extraction
    summary.rows[f"{classifications_per_identification} Classifications (Random Forest)"] = all_classifications
    summary.rows[f"{discriminations_per_identification} Discriminations (edit distance)"] = discriminations
    summary.rows["Type Identification"] = type_identification
    summary.rows["Measured full identification"] = _mean_std_ms(identification_times)
    return summary


# --------------------------------------------------------------------------- #
# Tables V / VI and Fig. 6: enforcement overhead.
# --------------------------------------------------------------------------- #

#: Source devices and destinations of Table V.
TABLE_V_SOURCES = ("D1", "D2", "D3")
TABLE_V_DESTINATIONS = ("D4", "S_local", "S_remote")

_PATH_OF_DESTINATION = {
    "D4": PathType.WIRELESS_TO_WIRELESS,
    "S_local": PathType.WIRELESS_TO_LOCAL_SERVER,
    "S_remote": PathType.WIRELESS_TO_REMOTE_SERVER,
}

#: Per-device radio-quality offsets (ms) reproducing the spread of Table V.
_DEVICE_OFFSETS_MS = {"D1": -1.0, "D2": 1.5, "D3": 0.8}


@dataclass
class LatencyTable:
    """Table V: mean/stdev latency per pair, with and without filtering."""

    rows: list[tuple[str, str, float, float, float, float]] = field(default_factory=list)

    def row(self, source: str, destination: str) -> tuple[float, float, float, float]:
        for row in self.rows:
            if row[0] == source and row[1] == destination:
                return row[2], row[3], row[4], row[5]
        raise KeyError(f"no row for {source} -> {destination}")


def _build_loaded_gateway(filtering_enabled: bool, device_count: int, seed: int) -> SecurityGateway:
    """A gateway with ``device_count`` devices and enforcement rules installed."""
    gateway = SecurityGateway(
        security_service=None,
        filtering_enabled=filtering_enabled,
        resource_model=GatewayResourceModel(seed=seed),
    )
    workload = ConcurrentFlowWorkload(device_count=max(2, device_count), seed=seed)
    levels = [IsolationLevel.TRUSTED, IsolationLevel.RESTRICTED, IsolationLevel.STRICT]
    for index in range(device_count):
        mac = workload.device_mac(index)
        gateway.connect_device(mac, ip_address=workload.device_ip(index))
        level = levels[index % len(levels)]
        allowed = ("52.28.10.10", "52.28.10.11") if level is IsolationLevel.RESTRICTED else ()
        rule = EnforcementRule(
            device_mac=mac,
            isolation_level=level,
            allowed_destinations=allowed,
            device_type=f"device-{index}",
        )
        gateway.rule_cache.store(rule)
        record = gateway.devices[mac]
        record.isolation_level = level
        record.enforcement_rule = rule
        if filtering_enabled:
            for flow_rule in rule.to_flow_rules():
                gateway.switch.install_rule(flow_rule)
    return gateway


def run_latency_table(
    iterations: int = 15,
    concurrent_flows: int = 20,
    device_count: int = 20,
    seed: int = 0,
) -> LatencyTable:
    """Table V: probe latency for each device/server pair, filtering on vs off."""
    table = LatencyTable()
    gateway_filtering = _build_loaded_gateway(True, device_count, seed)
    gateway_plain = _build_loaded_gateway(False, device_count, seed)
    model_filtering = LatencyModel(seed=seed, device_offsets_ms=_DEVICE_OFFSETS_MS)
    model_plain = LatencyModel(seed=seed + 1, device_offsets_ms=_DEVICE_OFFSETS_MS)

    for source in TABLE_V_SOURCES:
        for destination in TABLE_V_DESTINATIONS:
            path = _PATH_OF_DESTINATION[destination]
            with_filtering = model_filtering.sample_many(
                path,
                iterations,
                gateway_processing_ms=gateway_filtering.processing_delay_ms(),
                concurrent_flows=concurrent_flows,
                source_device=source,
            )
            without_filtering = model_plain.sample_many(
                path,
                iterations,
                gateway_processing_ms=gateway_plain.processing_delay_ms(),
                concurrent_flows=concurrent_flows,
                source_device=source,
            )
            table.rows.append(
                (
                    source,
                    destination,
                    float(with_filtering.mean()),
                    float(with_filtering.std()),
                    float(without_filtering.mean()),
                    float(without_filtering.std()),
                )
            )
    return table


@dataclass
class OverheadTable:
    """Table VI: relative overhead of the filtering mechanism."""

    rows: dict[str, tuple[float, float]] = field(default_factory=dict)

    def overhead_of(self, case: str) -> float:
        return self.rows[case][0]


def run_overhead_table(
    iterations: int = 15,
    repetitions: int = 10,
    concurrent_flows: int = 60,
    device_count: int = 40,
    seed: int = 0,
) -> OverheadTable:
    """Table VI: latency, CPU and memory overhead of enabling filtering."""
    gateway_filtering = _build_loaded_gateway(True, device_count, seed)
    gateway_plain = _build_loaded_gateway(False, device_count, seed)

    latency_overheads_d1d2: list[float] = []
    latency_overheads_d1d3: list[float] = []
    cpu_overheads: list[float] = []
    memory_overheads: list[float] = []

    for repetition in range(repetitions):
        model_filtering = LatencyModel(seed=seed + repetition, device_offsets_ms=_DEVICE_OFFSETS_MS)
        model_plain = LatencyModel(seed=seed + repetition, device_offsets_ms=_DEVICE_OFFSETS_MS)
        for bucket, source in ((latency_overheads_d1d2, "D2"), (latency_overheads_d1d3, "D3")):
            with_filtering = model_filtering.sample_many(
                PathType.WIRELESS_TO_WIRELESS,
                iterations,
                gateway_processing_ms=gateway_filtering.processing_delay_ms(),
                concurrent_flows=concurrent_flows,
                source_device=source,
            )
            without_filtering = model_plain.sample_many(
                PathType.WIRELESS_TO_WIRELESS,
                iterations,
                gateway_processing_ms=gateway_plain.processing_delay_ms(),
                concurrent_flows=concurrent_flows,
                source_device=source,
            )
            bucket.append(
                100.0 * (with_filtering.mean() - without_filtering.mean()) / without_filtering.mean()
            )

        cpu_with = gateway_filtering.resource_sample(concurrent_flows).cpu_percent
        cpu_without = gateway_plain.resource_sample(concurrent_flows).cpu_percent
        cpu_overheads.append(100.0 * (cpu_with - cpu_without) / cpu_without)

        memory_with = gateway_filtering.resource_sample(concurrent_flows).memory_mb
        memory_without = gateway_plain.resource_sample(concurrent_flows).memory_mb
        memory_overheads.append(100.0 * (memory_with - memory_without) / memory_without)

    table = OverheadTable()
    table.rows["D1D2 Latency"] = (float(np.mean(latency_overheads_d1d2)), float(np.std(latency_overheads_d1d2)))
    table.rows["D1D3 Latency"] = (float(np.mean(latency_overheads_d1d3)), float(np.std(latency_overheads_d1d3)))
    table.rows["CPU utilization"] = (float(np.mean(cpu_overheads)), float(np.std(cpu_overheads)))
    table.rows["Memory usage"] = (float(np.mean(memory_overheads)), float(np.std(memory_overheads)))
    return table


@dataclass
class ResourceSeries:
    """A figure series: x values plus named y series (Fig. 6a/6b/6c)."""

    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def series_of(self, name: str) -> list[float]:
        return self.series[name]


def run_latency_vs_flows(
    flow_counts: Sequence[int] = tuple(range(20, 160, 10)),
    iterations: int = 15,
    device_count: int = 20,
    seed: int = 0,
) -> ResourceSeries:
    """Fig. 6a: device-to-device latency against the number of concurrent flows."""
    gateway_filtering = _build_loaded_gateway(True, device_count, seed)
    gateway_plain = _build_loaded_gateway(False, device_count, seed)
    result = ResourceSeries(x_label="concurrent_flows", x_values=[float(count) for count in flow_counts])
    for label, gateway, path in (
        ("D1-D2 w/ filtering", gateway_filtering, PathType.WIRELESS_TO_WIRELESS),
        ("D1-D2 w/o filtering", gateway_plain, PathType.WIRELESS_TO_WIRELESS),
        ("D1-D3 w/ filtering", gateway_filtering, PathType.WIRELESS_TO_LOCAL_SERVER),
        ("D1-D3 w/o filtering", gateway_plain, PathType.WIRELESS_TO_LOCAL_SERVER),
    ):
        model = LatencyModel(seed=seed, device_offsets_ms=_DEVICE_OFFSETS_MS)
        values = []
        for flow_count in flow_counts:
            samples = model.sample_many(
                path,
                iterations,
                gateway_processing_ms=gateway.processing_delay_ms(),
                concurrent_flows=int(flow_count),
                source_device="D1",
            )
            values.append(float(samples.mean()))
        result.series[label] = values
    return result


def run_cpu_vs_flows(
    flow_counts: Sequence[int] = tuple(range(0, 160, 10)),
    device_count: int = 20,
    samples_per_point: int = 5,
    seed: int = 0,
) -> ResourceSeries:
    """Fig. 6b: Security Gateway CPU utilisation against concurrent flows."""
    gateway_filtering = _build_loaded_gateway(True, device_count, seed)
    gateway_plain = _build_loaded_gateway(False, device_count, seed)
    result = ResourceSeries(x_label="concurrent_flows", x_values=[float(count) for count in flow_counts])
    for label, gateway in (("With Filtering", gateway_filtering), ("Without Filtering", gateway_plain)):
        values = []
        for flow_count in flow_counts:
            samples = [
                gateway.resource_sample(int(flow_count)).cpu_percent
                for _ in range(samples_per_point)
            ]
            values.append(float(np.mean(samples)))
        result.series[label] = values
    return result


def run_memory_vs_rules(
    rule_counts: Sequence[int] = (0, 2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000),
    samples_per_point: int = 5,
    seed: int = 0,
) -> ResourceSeries:
    """Fig. 6c: Security Gateway memory against the number of enforcement rules."""
    result = ResourceSeries(x_label="enforcement_rules", x_values=[float(count) for count in rule_counts])
    model_filtering = GatewayResourceModel(seed=seed)
    model_plain = GatewayResourceModel(seed=seed + 1)
    values_filtering = []
    values_plain = []
    for rule_count in rule_counts:
        values_filtering.append(
            float(
                np.mean(
                    [
                        model_filtering.memory_usage_mb(int(rule_count), filtering_enabled=True)
                        for _ in range(samples_per_point)
                    ]
                )
            )
        )
        values_plain.append(
            float(
                np.mean(
                    [
                        model_plain.memory_usage_mb(int(rule_count), filtering_enabled=False)
                        for _ in range(samples_per_point)
                    ]
                )
            )
        )
    result.series["With Filtering"] = values_filtering
    result.series["Without Filtering"] = values_plain
    return result


def populate_rule_cache(gateway: SecurityGateway, rule_count: int, seed: int = 0) -> None:
    """Fill the gateway's rule cache with ``rule_count`` synthetic device rules."""
    rng = np.random.default_rng(seed)
    for index in range(rule_count):
        mac = MACAddress(int(rng.integers(0, 1 << 48)))
        gateway.rule_cache.store(
            EnforcementRule(
                device_mac=mac,
                isolation_level=IsolationLevel.RESTRICTED,
                allowed_destinations=("52.10.0.1",),
                device_type=f"bulk-{index}",
            )
        )


# --------------------------------------------------------------------------- #
# Ablations (our addition, motivated by the design choices of Sect. IV).
# --------------------------------------------------------------------------- #


@dataclass
class AblationResult:
    """Overall accuracy of the pipeline under different configurations."""

    accuracies: dict[str, float] = field(default_factory=dict)


def run_ablation(
    dataset: FingerprintDataset,
    n_splits: int = 5,
    n_estimators: int = 10,
    random_state: int = 0,
) -> AblationResult:
    """Ablation: edit-distance stage, negative-subsample ratio and F' length."""
    result = AblationResult()
    baseline = evaluate_identification(
        dataset, n_splits=n_splits, n_estimators=n_estimators, random_state=random_state
    )
    result.accuracies["full pipeline"] = baseline.overall_accuracy

    no_discrimination = evaluate_identification(
        dataset,
        n_splits=n_splits,
        n_estimators=n_estimators,
        use_discrimination=False,
        random_state=random_state,
    )
    result.accuracies["without edit-distance discrimination"] = no_discrimination.overall_accuracy

    small_negative = evaluate_identification(
        dataset,
        n_splits=n_splits,
        n_estimators=n_estimators,
        negative_ratio=2.0,
        random_state=random_state,
    )
    result.accuracies["negative ratio 2x"] = small_negative.overall_accuracy

    return result


# --------------------------------------------------------------------------- #
# Reference-selection ablation: the paper's random draw vs the deterministic
# per-fingerprint draw (the bugfix for borderline-verdict instability).
# --------------------------------------------------------------------------- #


@dataclass
class SelectionAblationResult:
    """Random vs deterministic reference selection, per mode.

    Attributes:
        accuracies: overall identification accuracy (first pass).
        verdict_stability: fraction of test fingerprints whose verdict
            (``device_type``) is identical across every repeated
            identification -- the reproducibility headline.  1.0 means no
            fingerprint ever flipped.
        flipped: count of test fingerprints that received more than one
            distinct verdict across the repeats.
        repeats: how many times each fingerprint was identified.
    """

    accuracies: dict[str, float] = field(default_factory=dict)
    verdict_stability: dict[str, float] = field(default_factory=dict)
    flipped: dict[str, int] = field(default_factory=dict)
    repeats: int = 0


def run_selection_ablation(
    dataset: FingerprintDataset,
    n_splits: int = 5,
    repeats: int = 5,
    n_estimators: int = 10,
    random_state: int = 0,
) -> SelectionAblationResult:
    """Ablation: paper-style random reference draw vs deterministic draw.

    One stratified train/test split; a single identifier is trained once
    and its discriminator swapped between modes, so the classifier stage
    is held constant and only the reference-selection policy varies.
    Every test fingerprint is identified ``repeats`` times per mode:
    accuracy comes from the first pass, stability from comparing all
    passes.  The deterministic draw must be perfectly stable by
    construction; the random draw exhibits the borderline-verdict flips
    that motivated the fix.
    """
    labels = dataset.labels
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    train_indices, test_indices = next(iter(splitter.split(labels)))
    registry = dataset.to_registry(train_indices)
    identifier = DeviceTypeIdentifier.train(
        registry, n_estimators=n_estimators, random_state=random_state
    )
    references_per_type = identifier.discriminator.references_per_type
    probes = [dataset.fingerprints[int(index)] for index in test_indices]

    result = SelectionAblationResult(repeats=repeats)
    modes = {
        "deterministic draw": EditDistanceDiscriminator(
            references_per_type=references_per_type, selection=DETERMINISTIC_SELECTION
        ),
        "random draw (paper)": EditDistanceDiscriminator(
            references_per_type=references_per_type,
            selection=RANDOM_SELECTION,
            rng=np.random.default_rng(random_state),
        ),
    }
    for mode, discriminator in modes.items():
        identifier.discriminator = discriminator
        passes = [identifier.identify_many(probes) for _ in range(repeats)]
        first = [outcome.device_type for outcome in passes[0]]
        correct = sum(
            1
            for probe, predicted in zip(probes, first)
            if predicted == probe.device_type
        )
        flipped = 0
        for row in range(len(probes)):
            verdicts = {passes[column][row].device_type for column in range(repeats)}
            if len(verdicts) > 1:
                flipped += 1
        result.accuracies[mode] = correct / len(probes) if probes else 0.0
        result.verdict_stability[mode] = (
            (len(probes) - flipped) / len(probes) if probes else 1.0
        )
        result.flipped[mode] = flipped
    return result
