"""Plain-text rendering of evaluation results (the rows/series of the paper)."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with left-aligned first column."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_fig5(per_type_accuracy: Mapping[str, float], overall: float) -> str:
    """Fig. 5: ratio of correct identification per device-type."""
    rows = [(name, f"{accuracy:.3f}") for name, accuracy in per_type_accuracy.items()]
    rows.append(("GLOBAL", f"{overall:.3f}"))
    return format_table(["device-type", "accuracy"], rows)


def format_confusion_matrix(matrix: np.ndarray, labels: Sequence[str]) -> str:
    """Table III: actual (rows) vs predicted (columns) identification counts."""
    headers = ["A\\P"] + [str(index + 1) for index in range(len(labels))]
    rows = []
    for row_index, label in enumerate(labels):
        rows.append([f"{row_index + 1} {label}"] + [str(int(value)) for value in matrix[row_index]])
    return format_table(headers, rows)


def format_timing_table(timing_rows: Mapping[str, tuple[float, float]]) -> str:
    """Table IV: mean (+/- stdev) time per identification step, in ms."""
    rows = [
        (step, f"{mean:.3f} ms", f"(+/-{stdev:.3f})")
        for step, (mean, stdev) in timing_rows.items()
    ]
    return format_table(["step", "mean", "stdev"], rows)


def format_latency_table(rows: Sequence[tuple[str, str, float, float, float, float]]) -> str:
    """Table V: latency per source/destination pair with and without filtering."""
    formatted = [
        (
            source,
            destination,
            f"{filtering_mean:.1f} (+/-{filtering_std:.1f})",
            f"{plain_mean:.1f} (+/-{plain_std:.1f})",
        )
        for source, destination, filtering_mean, filtering_std, plain_mean, plain_std in rows
    ]
    return format_table(
        ["source", "destination", "filtering mean (ms)", "no filtering mean (ms)"], formatted
    )


def format_overhead_table(rows: Mapping[str, tuple[float, float]]) -> str:
    """Table VI: relative overhead of the filtering mechanism."""
    formatted = [
        (case, f"+{mean:.2f}%", f"(+/-{stdev:.2f}%)") for case, (mean, stdev) in rows.items()
    ]
    return format_table(["case", "overhead mean", "stdev"], formatted)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    unit: str = "",
) -> str:
    """A figure rendered as columns: x value plus one column per series."""
    headers = [x_label] + [f"{name}{f' ({unit})' if unit else ''}" for name in series]
    rows = []
    for index, x_value in enumerate(x_values):
        rows.append([str(x_value)] + [f"{values[index]:.2f}" for values in series.values()])
    return format_table(headers, rows)
