"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class PacketDecodeError(ReproError):
    """Raised when a byte buffer cannot be parsed as the expected layer."""


class PacketBuildError(ReproError):
    """Raised when a layer cannot be serialised to bytes."""


class PcapFormatError(ReproError):
    """Raised when a pcap file is malformed or uses an unsupported format."""


class FingerprintError(ReproError):
    """Raised for invalid fingerprint construction or comparison."""


class ModelError(ReproError):
    """Raised for invalid machine-learning model usage (e.g. predict before fit)."""


class DatasetError(ReproError):
    """Raised when a fingerprint dataset is malformed or inconsistent."""


class IdentificationError(ReproError):
    """Raised for invalid identification pipeline usage."""


class ModelStoreError(ReproError):
    """Raised when a persisted model bundle is missing, corrupt or incompatible."""


class LifecycleError(ReproError):
    """Raised for invalid online-learning lifecycle operations."""


class AutopilotError(LifecycleError):
    """Raised for invalid autopilot policies or trigger operations."""


class DeviceProfileError(ReproError):
    """Raised when a device behaviour profile is invalid."""


class EnforcementError(ReproError):
    """Raised for invalid enforcement rules or isolation levels."""


class SdnError(ReproError):
    """Raised for invalid SDN switch/controller operations."""


class SimulationError(ReproError):
    """Raised for invalid simulation configuration."""


class ConfigError(ReproError):
    """Raised when a declarative gateway configuration is invalid.

    The message always names the offending field(s) so a caller can fix
    the :class:`~repro.api.GatewayConfig` without reading the stack.
    """


class FleetError(ReproError):
    """Raised for invalid fleet-coordination operations (push/apply/rollback)."""


class ObservabilityError(ReproError):
    """Raised for invalid metrics-registry or observability-hub usage."""


class LedgerError(ObservabilityError):
    """Raised when an evidence ledger is malformed, corrupt or inconsistent."""
