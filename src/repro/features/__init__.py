"""Feature extraction and device fingerprints (Sect. IV-A of the paper)."""

from repro.features.packet_features import (
    FEATURE_COUNT,
    FEATURE_NAMES,
    PacketFeatureExtractor,
    port_class,
)
from repro.features.fingerprint import (
    FIXED_PACKET_COUNT,
    FIXED_VECTOR_SIZE,
    Fingerprint,
    fingerprint_from_packets,
)
from repro.features.session import SetupPhaseDetector, split_by_source

__all__ = [
    "FEATURE_COUNT",
    "FEATURE_NAMES",
    "PacketFeatureExtractor",
    "port_class",
    "FIXED_PACKET_COUNT",
    "FIXED_VECTOR_SIZE",
    "Fingerprint",
    "fingerprint_from_packets",
    "SetupPhaseDetector",
    "split_by_source",
]
