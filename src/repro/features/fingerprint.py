"""Device fingerprints ``F`` (variable length) and ``F'`` (fixed length).

A fingerprint ``F`` is conceptually the 23 x n matrix of Eq. (1) in the
paper: one column per packet observed during the device setup phase, with
consecutive identical columns removed.  The fixed-length fingerprint ``F'``
concatenates the first 12 *unique* packet vectors of ``F`` into a
276-dimensional vector (zero-padded when fewer than 12 unique packets
exist), which is what the per-device-type Random Forest classifiers consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import FingerprintError
from repro.features.packet_features import FEATURE_COUNT, PacketFeatureExtractor
from repro.net.packet import Packet

#: Number of unique packet vectors concatenated into the fixed fingerprint.
FIXED_PACKET_COUNT = 12

#: Dimension of the fixed-length fingerprint F' (12 packets x 23 features).
FIXED_VECTOR_SIZE = FIXED_PACKET_COUNT * FEATURE_COUNT


@dataclass
class Fingerprint:
    """A device fingerprint: an ordered sequence of per-packet feature vectors.

    Attributes:
        vectors: array of shape ``(n, 23)`` -- one row per packet, in the
            order the packets were sent (the transpose of the paper's
            ``23 x n`` matrix, which is more convenient in numpy).
        device_type: optional ground-truth label.
        device_mac: optional MAC address string of the captured device.
    """

    vectors: np.ndarray
    device_type: Optional[str] = None
    device_mac: Optional[str] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        vectors = np.asarray(self.vectors, dtype=np.int64)
        if vectors.size == 0:
            vectors = vectors.reshape(0, FEATURE_COUNT)
        if vectors.ndim != 2 or vectors.shape[1] != FEATURE_COUNT:
            raise FingerprintError(
                f"fingerprint vectors must have shape (n, {FEATURE_COUNT}), got {vectors.shape}"
            )
        self.vectors = vectors

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_feature_rows(
        cls,
        rows: Iterable[Sequence[int]],
        device_type: Optional[str] = None,
        device_mac: Optional[str] = None,
        deduplicate: bool = True,
    ) -> "Fingerprint":
        """Build a fingerprint from raw feature rows.

        When ``deduplicate`` is True (the default, matching the paper),
        consecutive identical rows are collapsed into one.
        """
        matrix = np.asarray(list(rows), dtype=np.int64)
        if matrix.size == 0:
            matrix = matrix.reshape(0, FEATURE_COUNT)
        if deduplicate and len(matrix) > 1:
            keep = np.ones(len(matrix), dtype=bool)
            keep[1:] = np.any(matrix[1:] != matrix[:-1], axis=1)
            matrix = matrix[keep]
        return cls(vectors=matrix, device_type=device_type, device_mac=device_mac)

    @classmethod
    def from_packets(
        cls,
        packets: Sequence[Packet],
        device_type: Optional[str] = None,
        device_mac: Optional[str] = None,
    ) -> "Fingerprint":
        """Extract a fingerprint from an ordered packet sequence.

        The packets must all originate from the device being fingerprinted;
        use :func:`repro.features.session.split_by_source` to separate a
        mixed capture by source MAC first.
        """
        extractor = PacketFeatureExtractor()
        rows = extractor.extract_all(packets)
        return cls.from_feature_rows(rows, device_type=device_type, device_mac=device_mac)

    # ------------------------------------------------------------------ #
    # Views.
    # ------------------------------------------------------------------ #
    @property
    def packet_count(self) -> int:
        """Number of packet columns in F (after consecutive deduplication)."""
        return int(self.vectors.shape[0])

    @property
    def matrix(self) -> np.ndarray:
        """The paper's ``23 x n`` orientation of the fingerprint."""
        return self.vectors.T

    def unique_vectors(self) -> np.ndarray:
        """The unique packet vectors of F, in order of first appearance."""
        seen: set[tuple[int, ...]] = set()
        rows = []
        for row in self.vectors:
            key = tuple(int(value) for value in row)
            if key in seen:
                continue
            seen.add(key)
            rows.append(row)
        if not rows:
            return np.zeros((0, FEATURE_COUNT), dtype=np.int64)
        return np.stack(rows)

    def to_fixed_vector(self, packet_count: int = FIXED_PACKET_COUNT) -> np.ndarray:
        """Produce the fixed-length fingerprint F'.

        The first ``packet_count`` unique packet vectors are concatenated;
        if fewer unique vectors exist the result is zero padded, exactly as
        described in Sect. IV-A of the paper.
        """
        if packet_count <= 0:
            raise FingerprintError(f"packet_count must be positive, got {packet_count}")
        unique = self.unique_vectors()[:packet_count]
        fixed = np.zeros(packet_count * FEATURE_COUNT, dtype=np.int64)
        if len(unique):
            flat = unique.reshape(-1)
            fixed[: len(flat)] = flat
        return fixed

    def as_symbol_sequence(self) -> list[tuple[int, ...]]:
        """The fingerprint as a "word" whose characters are packet columns.

        This is the representation used for Damerau-Levenshtein edit
        distance in the discrimination stage: two characters are equal when
        *all* 23 features of the two packets are equal.
        """
        return [tuple(int(value) for value in row) for row in self.vectors]

    def __len__(self) -> int:
        return self.packet_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return (
            self.device_type == other.device_type
            and self.vectors.shape == other.vectors.shape
            and bool(np.all(self.vectors == other.vectors))
        )

    def __repr__(self) -> str:
        label = self.device_type or "unlabelled"
        return f"Fingerprint(type={label!r}, packets={self.packet_count})"


def fingerprint_key(fingerprint: Fingerprint) -> bytes:
    """A content hash of the fingerprint matrix (MAC and label excluded).

    Two devices of the same model performing the same setup produce the
    same matrix and therefore the same key -- the sharing the streaming
    dispatcher's result cache, the autopilot's unknown-model cluster
    detection and the discrimination stage's deterministic reference draw
    all exploit.  The dtype is hashed alongside the shape and the raw
    bytes: equal-byte matrices of different dtypes (an all-zero int64 vs
    float64 padding block, say) must not collide onto one key.

    The hash is content-only (SHA-1 over shape/dtype/bytes), so it is
    stable across processes, interpreter restarts and
    ``PYTHONHASHSEED`` values -- the property the deterministic
    discrimination draw relies on.

    Example:
        >>> import numpy as np
        >>> from repro.features.fingerprint import Fingerprint, FEATURE_COUNT
        >>> rows = np.zeros((2, FEATURE_COUNT), dtype=np.int64)
        >>> a = Fingerprint(vectors=rows, device_mac="02:00:00:00:00:01")
        >>> b = Fingerprint(vectors=rows.copy(), device_mac="02:00:00:00:00:02")
        >>> fingerprint_key(a) == fingerprint_key(b)  # same model, same setup
        True
    """
    digest = hashlib.sha1()
    digest.update(str(fingerprint.vectors.shape).encode("ascii"))
    digest.update(str(fingerprint.vectors.dtype).encode("ascii"))
    digest.update(fingerprint.vectors.tobytes())
    return digest.digest()


def fingerprint_from_packets(
    packets: Sequence[Packet],
    device_type: Optional[str] = None,
    device_mac: Optional[str] = None,
) -> Fingerprint:
    """Convenience wrapper around :meth:`Fingerprint.from_packets`."""
    return Fingerprint.from_packets(packets, device_type=device_type, device_mac=device_mac)
