"""The 23 per-packet features of Table I.

Feature layout (indices into the per-packet vector):

==  ======================  =======================================
 #  name                    description
==  ======================  =======================================
 0  arp                     link-layer ARP packet
 1  llc                     link-layer 802.2 LLC frame
 2  ip                      IPv4 or IPv6 packet
 3  icmp                    ICMPv4 message
 4  icmpv6                  ICMPv6 message
 5  eapol                   EAP over LAN frame (WPA handshake)
 6  tcp                     TCP segment
 7  udp                     UDP datagram
 8  http                    HTTP traffic (port 80/8080)
 9  https                   HTTPS/TLS traffic (port 443/8443)
10  dhcp                    DHCP message (BOOTP with magic cookie)
11  bootp                   BOOTP message (ports 67/68)
12  ssdp                    SSDP traffic (port 1900)
13  dns                     DNS traffic (port 53)
14  mdns                    multicast DNS traffic (port 5353)
15  ntp                     NTP traffic (port 123)
16  ip_option_padding       IPv4/IPv6 padding option present
17  ip_option_router_alert  Router-Alert option present
18  packet_size             size of the packet in bytes (integer)
19  raw_data                payload above the transport header present
20  dst_ip_counter          order of first contact with destination IP (integer)
21  src_port_class          0 none / 1 well-known / 2 registered / 3 dynamic
22  dst_port_class          0 none / 1 well-known / 2 registered / 3 dynamic
==  ======================  =======================================

All features are binary except ``packet_size``, ``dst_ip_counter`` and the
two port classes, exactly as in the paper.  No feature reads packet payload
content, so fingerprints can be extracted from encrypted traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.net.layers import dhcp as dhcp_mod
from repro.net.layers import dns as dns_mod
from repro.net.layers import http as http_mod
from repro.net.layers import ntp as ntp_mod
from repro.net.layers import ssdp as ssdp_mod
from repro.net.layers import tls as tls_mod
from repro.net.layers.dhcp import DHCPMessage
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.net.batch import PacketBatch

FEATURE_NAMES: tuple[str, ...] = (
    "arp",
    "llc",
    "ip",
    "icmp",
    "icmpv6",
    "eapol",
    "tcp",
    "udp",
    "http",
    "https",
    "dhcp",
    "bootp",
    "ssdp",
    "dns",
    "mdns",
    "ntp",
    "ip_option_padding",
    "ip_option_router_alert",
    "packet_size",
    "raw_data",
    "dst_ip_counter",
    "src_port_class",
    "dst_port_class",
)

FEATURE_COUNT = len(FEATURE_NAMES)

FEATURE_INDEX = {name: index for index, name in enumerate(FEATURE_NAMES)}

# Integer-valued features (the rest are binary), per Table I.
INTEGER_FEATURES = ("packet_size", "dst_ip_counter", "src_port_class", "dst_port_class")

PORT_CLASS_NONE = 0
PORT_CLASS_WELL_KNOWN = 1
PORT_CLASS_REGISTERED = 2
PORT_CLASS_DYNAMIC = 3

_HTTP_PORTS = frozenset({http_mod.PORT_HTTP, http_mod.PORT_HTTP_ALT})
_HTTPS_PORTS = frozenset({tls_mod.PORT_HTTPS, tls_mod.PORT_HTTPS_ALT})
_BOOTP_PORTS = frozenset({dhcp_mod.SERVER_PORT, dhcp_mod.CLIENT_PORT})


def port_class(port: Optional[int]) -> int:
    """Map a port number to the 4-valued network port class of the paper."""
    if port is None:
        return PORT_CLASS_NONE
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range: {port}")
    if port <= 1023:
        return PORT_CLASS_WELL_KNOWN
    if port <= 49151:
        return PORT_CLASS_REGISTERED
    return PORT_CLASS_DYNAMIC


class PacketFeatureExtractor:
    """Stateful extractor turning packets into 23-dimensional feature vectors.

    The extractor is stateful because of the *destination IP counter*
    feature: the first distinct destination IP a device contacts is mapped
    to 1, the second to 2, and so on.  One extractor instance must therefore
    be used per device capture (per fingerprint).
    """

    def __init__(self) -> None:
        self._dst_ip_counters: dict[str, int] = {}

    def reset(self) -> None:
        """Forget the destination-IP mapping (start a new capture)."""
        self._dst_ip_counters.clear()

    @property
    def seen_destinations(self) -> int:
        """Number of distinct destination IPs observed so far."""
        return len(self._dst_ip_counters)

    def counter_for(self, dst_ip: Optional[str]) -> int:
        """The order-of-first-contact counter of one destination token.

        The incremental entry point shared by the per-packet and the
        batched datapaths: the mapping advances on first contact exactly
        as :meth:`extract` would have advanced it for the same packet.
        """
        if dst_ip is None:
            return 0
        counters = self._dst_ip_counters
        counter = counters.get(dst_ip)
        if counter is None:
            counter = len(counters) + 1
            counters[dst_ip] = counter
        return counter

    def _dst_ip_counter(self, packet: Packet) -> int:
        return self.counter_for(packet.dst_ip)

    def extract(self, packet: Packet) -> np.ndarray:
        """Extract the 23-feature vector of a single packet."""
        vector = np.zeros(FEATURE_COUNT, dtype=np.int64)

        vector[FEATURE_INDEX["arp"]] = int(packet.arp is not None)
        vector[FEATURE_INDEX["llc"]] = int(packet.llc is not None)
        vector[FEATURE_INDEX["ip"]] = int(packet.has_ip)
        vector[FEATURE_INDEX["icmp"]] = int(packet.icmp is not None)
        vector[FEATURE_INDEX["icmpv6"]] = int(packet.icmpv6 is not None)
        vector[FEATURE_INDEX["eapol"]] = int(packet.eapol is not None)
        vector[FEATURE_INDEX["tcp"]] = int(packet.tcp is not None)
        vector[FEATURE_INDEX["udp"]] = int(packet.udp is not None)

        ports = {packet.src_port, packet.dst_port} - {None}
        is_tcp = packet.tcp is not None
        is_udp = packet.udp is not None
        vector[FEATURE_INDEX["http"]] = int(is_tcp and bool(ports & _HTTP_PORTS))
        vector[FEATURE_INDEX["https"]] = int(is_tcp and bool(ports & _HTTPS_PORTS))

        is_bootp = is_udp and bool(ports & _BOOTP_PORTS)
        is_dhcp = is_bootp and (
            not isinstance(packet.application, DHCPMessage) or packet.application.is_dhcp
        )
        vector[FEATURE_INDEX["dhcp"]] = int(is_dhcp)
        vector[FEATURE_INDEX["bootp"]] = int(is_bootp)

        vector[FEATURE_INDEX["ssdp"]] = int(is_udp and ssdp_mod.PORT_SSDP in ports)
        vector[FEATURE_INDEX["dns"]] = int(dns_mod.PORT_DNS in ports and (is_udp or is_tcp))
        vector[FEATURE_INDEX["mdns"]] = int(is_udp and dns_mod.PORT_MDNS in ports)
        vector[FEATURE_INDEX["ntp"]] = int(is_udp and ntp_mod.PORT_NTP in ports)

        has_padding = bool(packet.ipv4 is not None and packet.ipv4.has_padding_option) or bool(
            packet.ipv6 is not None and packet.ipv6.has_padding_option
        )
        has_router_alert = bool(
            packet.ipv4 is not None and packet.ipv4.has_router_alert_option
        ) or bool(packet.ipv6 is not None and packet.ipv6.has_router_alert_option)
        vector[FEATURE_INDEX["ip_option_padding"]] = int(has_padding)
        vector[FEATURE_INDEX["ip_option_router_alert"]] = int(has_router_alert)

        vector[FEATURE_INDEX["packet_size"]] = packet.size
        vector[FEATURE_INDEX["raw_data"]] = int(packet.has_raw_data)
        vector[FEATURE_INDEX["dst_ip_counter"]] = self._dst_ip_counter(packet)
        vector[FEATURE_INDEX["src_port_class"]] = port_class(packet.src_port)
        vector[FEATURE_INDEX["dst_port_class"]] = port_class(packet.dst_port)
        return vector

    def extract_all(self, packets: Sequence[Packet]) -> np.ndarray:
        """Extract feature vectors for an ordered packet sequence.

        Returns an array of shape ``(len(packets), 23)``; the caller is
        responsible for transposing if the paper's ``23 x n`` orientation
        is preferred.
        """
        if not packets:
            return np.zeros((0, FEATURE_COUNT), dtype=np.int64)
        return np.stack([self.extract(packet) for packet in packets])


def batch_feature_matrix(batch: "PacketBatch") -> np.ndarray:
    """The ``(len(batch), 23)`` feature matrix of a whole packet batch.

    Every Table-I column is computed as one vectorised expression over the
    batch's field arrays -- the same definitions as :meth:`extract`, just
    without per-packet Python.  The stateful ``dst_ip_counter`` column is
    left at zero: it depends on per-device first-contact order, so the
    assembler fills it while walking each device's packets (see
    :meth:`~repro.streaming.assembler.ShardedFingerprintAssembler.observe_batch`).
    """
    n = len(batch)
    matrix = np.zeros((n, FEATURE_COUNT), dtype=np.int64)
    if n == 0:
        return matrix
    src = batch.src_ports
    dst = batch.dst_ports
    is_tcp = batch.tcp
    is_udp = batch.udp

    def on_port(*ports: int) -> np.ndarray:
        hit = np.zeros(n, dtype=bool)
        for port in ports:
            hit |= src == port
            hit |= dst == port
        return hit

    matrix[:, FEATURE_INDEX["arp"]] = batch.arp
    matrix[:, FEATURE_INDEX["llc"]] = batch.llc
    matrix[:, FEATURE_INDEX["ip"]] = batch.ip
    matrix[:, FEATURE_INDEX["icmp"]] = batch.icmp
    matrix[:, FEATURE_INDEX["icmpv6"]] = batch.icmpv6
    matrix[:, FEATURE_INDEX["eapol"]] = batch.eapol
    matrix[:, FEATURE_INDEX["tcp"]] = is_tcp
    matrix[:, FEATURE_INDEX["udp"]] = is_udp
    matrix[:, FEATURE_INDEX["http"]] = is_tcp & on_port(*_HTTP_PORTS)
    matrix[:, FEATURE_INDEX["https"]] = is_tcp & on_port(*_HTTPS_PORTS)
    bootp = is_udp & on_port(*_BOOTP_PORTS)
    matrix[:, FEATURE_INDEX["bootp"]] = bootp
    matrix[:, FEATURE_INDEX["dhcp"]] = bootp & ~batch.app_not_dhcp
    matrix[:, FEATURE_INDEX["ssdp"]] = is_udp & on_port(ssdp_mod.PORT_SSDP)
    matrix[:, FEATURE_INDEX["dns"]] = (is_udp | is_tcp) & on_port(dns_mod.PORT_DNS)
    matrix[:, FEATURE_INDEX["mdns"]] = is_udp & on_port(dns_mod.PORT_MDNS)
    matrix[:, FEATURE_INDEX["ntp"]] = is_udp & on_port(ntp_mod.PORT_NTP)
    matrix[:, FEATURE_INDEX["ip_option_padding"]] = batch.has_padding
    matrix[:, FEATURE_INDEX["ip_option_router_alert"]] = batch.has_router_alert
    matrix[:, FEATURE_INDEX["packet_size"]] = batch.sizes
    matrix[:, FEATURE_INDEX["raw_data"]] = batch.raw_data
    for name, ports in (("src_port_class", src), ("dst_port_class", dst)):
        matrix[:, FEATURE_INDEX[name]] = np.where(
            ports < 0,
            PORT_CLASS_NONE,
            np.where(
                ports <= 1023,
                PORT_CLASS_WELL_KNOWN,
                np.where(ports <= 49151, PORT_CLASS_REGISTERED, PORT_CLASS_DYNAMIC),
            ),
        )
    return matrix
