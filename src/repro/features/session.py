"""Capture segmentation: isolating the setup phase of a newly seen device.

The paper fingerprints the packets a device sends *during its setup phase*,
starting when a new MAC address is first observed and ending when the packet
rate drops (Sect. IV-A: "The end of the setup phase can be automatically
identified by a decrease in the rate of packets sent").  This module
implements that segmentation plus the per-source splitting of mixed captures.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.addresses import MACAddress
from repro.net.packet import Packet


def split_by_source(packets: Iterable[Packet]) -> dict[MACAddress, list[Packet]]:
    """Group a mixed capture by source MAC address, preserving packet order."""
    by_source: dict[MACAddress, list[Packet]] = defaultdict(list)
    for packet in packets:
        by_source[packet.src_mac].append(packet)
    return dict(by_source)


@dataclass
class SetupPhaseDetector:
    """Detects the end of a device's setup phase from packet timestamps.

    The detector keeps a sliding window of recent inter-packet gaps; the
    setup phase is considered finished once the device stays quiet for
    longer than ``idle_factor`` times the median gap observed so far (and at
    least ``min_idle_seconds``).  ``max_packets`` provides a hard upper
    bound, mirroring the "n packets recorded during the setup phase" of the
    paper.

    Attributes:
        idle_factor: multiple of the median inter-packet gap treated as
            the end-of-setup silence.
        min_idle_seconds: minimum absolute silence (seconds) required.
        min_packets: never cut the trace before this many packets.
        max_packets: hard cap on the number of setup packets considered.
    """

    idle_factor: float = 5.0
    min_idle_seconds: float = 10.0
    min_packets: int = 4
    max_packets: int = 300

    def setup_slice(self, packets: Sequence[Packet]) -> list[Packet]:
        """Return the prefix of ``packets`` that belongs to the setup phase."""
        if not packets:
            return []
        if len(packets) <= self.min_packets:
            return list(packets[: self.max_packets])

        gaps: list[float] = []
        cut = len(packets)
        for index in range(1, min(len(packets), self.max_packets)):
            gap = packets[index].timestamp - packets[index - 1].timestamp
            if gap < 0:
                gap = 0.0
            if index >= self.min_packets and gaps:
                if gap_exceeds_setup_threshold(
                    gap, gaps, self.min_idle_seconds, self.idle_factor
                ):
                    cut = index
                    break
            gaps.append(gap)
        return list(packets[: min(cut, self.max_packets)])

    def segment_capture(self, packets: Iterable[Packet]) -> dict[MACAddress, list[Packet]]:
        """Split a mixed capture by source and keep only each setup phase."""
        return {
            source: self.setup_slice(source_packets)
            for source, source_packets in split_by_source(packets).items()
        }


def median(values: Sequence[float]) -> float:
    """Median of a gap sequence; 0.0 for an empty one (no gaps observed)."""
    return float(statistics.median(values)) if values else 0.0


def gap_exceeds_setup_threshold(
    gap: float, gaps: Sequence[float], min_idle_seconds: float, idle_factor: float
) -> bool:
    """The paper's end-of-setup test: the silence outgrew the packet rate.

    True when ``gap`` exceeds both ``min_idle_seconds`` and ``idle_factor``
    times the median of the inter-packet gaps observed so far.  This is the
    single definition of the cut rule, shared by the offline
    :class:`SetupPhaseDetector` and the streaming assembler's online
    end-of-setup decision, so retuning it cannot diverge the two.
    """
    if gap <= min_idle_seconds:
        return False  # cheap early-out: skips the median on the hot path
    return gap > idle_factor * median(gaps)
