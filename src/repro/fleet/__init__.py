"""Epoch-coordinated multi-gateway serving (the fleet layer).

One trainer, many gateways: the :class:`FleetCoordinator` is the
model-distribution channel -- each :meth:`~FleetCoordinator.push`
publishes an epoch-watermarked :class:`PushRecord`, every member's
:class:`BundleSubscriber` applies pending records in order through its
gateway's hot-swap hook, and :class:`FleetHealthView` reads each
member's metrics snapshot into one :class:`ConvergenceReport` (who
lags, by how many epochs).

The fleet layer sits entirely on top of :mod:`repro.api`: a member is
just a :class:`~repro.api.GatewayHandle`, and a push lands as
:meth:`~repro.api.GatewayHandle.swap_bundle`.  Determinism (PR 5) makes
convergence *checkable*: once two gateways serve the same epoch and
revision, their verdict streams for the same traffic are bit-identical,
so "converged" is an assertable property rather than a hope.
"""

from repro.fleet.channel import BundleSubscriber, FleetCoordinator, PushRecord
from repro.fleet.health import ConvergenceReport, FleetHealthView, GatewayHealth

__all__ = [
    "BundleSubscriber",
    "ConvergenceReport",
    "FleetCoordinator",
    "FleetHealthView",
    "GatewayHealth",
    "PushRecord",
]
