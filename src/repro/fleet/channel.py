"""The model-distribution channel: epoch-watermarked pushes, ordered applies.

The coordination model is deliberately minimal -- an append-only list of
:class:`PushRecord` per fleet, a per-member cursor -- because the hard
guarantees live elsewhere: :class:`~repro.identification.lifecycle.CacheEpoch`
refuses to move backwards, the gateway's
:meth:`~repro.api.GatewayHandle.swap_bundle` is idempotent on replays,
and verdict determinism (PR 5) makes post-convergence agreement
checkable bit-for-bit.  What the channel adds is *ordering* (members
apply pushes in publication order, never skipping forward past an
unapplied epoch) and *watermark discipline*:

* every push must carry a strictly higher epoch than the channel's
  watermark -- a re-push of the current ``(epoch, revision)`` is a
  counted idempotent no-op, a same-epoch different-revision push is
  rejected (re-stamp required);
* rollback is a *forward* operation: :meth:`FleetCoordinator.rollback`
  re-publishes the previous bundle under a fresh higher epoch, so the
  model reverts while every monotonicity invariant (ledger audit,
  ``CacheEpoch``) holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Union

from repro.api import GatewayConfig, GatewayHandle, SwapReport, build_gateway
from repro.exceptions import FleetError
from repro.identification.model_store import bundle_info
from repro.obs.hub import Observability


@dataclass(frozen=True)
class PushRecord:
    """One published model bundle: the unit of fleet convergence.

    Attributes:
        push_id: 1-based position in the channel (the subscriber cursor
            counts these).
        bundle_path: the model-store bundle members load.
        epoch: the watermark members adopt -- normally the bundle's own
            stamp, but a push-time override beats it (the rollback path
            re-publishes an old bundle under a fresh higher epoch).
        revision: the identifier revision inside the bundle (the
            deterministic draw salt, so equal revision + equal epoch
            implies bit-identical verdicts).
        note: free-form operator annotation, carried into the ledger.
    """

    push_id: int
    bundle_path: str
    epoch: int
    revision: int
    note: str = ""


@dataclass
class BundleSubscriber:
    """One fleet member's ordered view of the channel.

    Holds a cursor into the coordinator's push list; :meth:`poll` applies
    every record the member has not seen yet, in publication order,
    through the gateway's hot-swap hook.  Replayed records the gateway
    already serves are counted as duplicates (idempotent no-ops);
    records the gateway has already moved past (it joined late, or an
    operator swapped it by hand) are counted as skipped.
    """

    name: str
    handle: GatewayHandle
    channel: "FleetCoordinator"
    cursor: int = 0
    applied: int = 0
    duplicates: int = 0
    skipped: int = 0

    @property
    def lag(self) -> int:
        """Epochs between the channel watermark and what this member serves."""
        watermark = self.channel.watermark
        if watermark is None:
            return 0
        return max(0, watermark.epoch - self.handle.epoch)

    @property
    def pending(self) -> int:
        """Push records published but not yet polled by this member."""
        return len(self.channel.pushes) - self.cursor

    def poll(self) -> list[SwapReport]:
        """Apply every pending push record, in order; return what applied."""
        reports: list[SwapReport] = []
        while self.cursor < len(self.channel.pushes):
            record = self.channel.pushes[self.cursor]
            self.cursor += 1
            if record.epoch < self.handle.epoch:
                self.skipped += 1
                continue
            report = self.handle.swap_bundle(
                record.bundle_path, epoch=record.epoch, push_id=record.push_id
            )
            if self.channel.observability is not None:
                # Mirror the apply onto the channel's ledger too, so the
                # trainer side holds the full distribution audit trail
                # (which member applied which push) in one file.
                self.channel.observability.record_apply(
                    gateway=self.name,
                    epoch=report.epoch,
                    revision=report.revision,
                    applied=report.applied,
                    push_id=record.push_id,
                    reason=report.reason,
                )
            if report.applied:
                self.applied += 1
                reports.append(report)
            else:
                self.duplicates += 1
        return reports


@dataclass
class FleetCoordinator:
    """The trainer-side end of the channel, and the fleet membership roster.

    Attributes:
        name: fleet name (ledger push records carry it as the note
            prefix only when a note is given; otherwise informational).
        observability: optional hub; when set, every push (including
            counted duplicates) lands in its evidence ledger as an
            epoch-stamped ``push`` record.
        pushes: the append-only channel, oldest first.
        members: subscriber per member gateway, keyed by gateway name.
        duplicate_pushes: replayed pushes absorbed as idempotent no-ops.
    """

    name: str = "fleet"
    observability: Optional[Observability] = None
    pushes: list[PushRecord] = field(default_factory=list)
    members: dict[str, BundleSubscriber] = field(default_factory=dict)
    duplicate_pushes: int = 0

    @property
    def watermark(self) -> Optional[PushRecord]:
        """The newest push record, or ``None`` before the first push."""
        return self.pushes[-1] if self.pushes else None

    # ------------------------------------------------------------------ #
    # Publishing.
    # ------------------------------------------------------------------ #
    def push(
        self,
        bundle_path: Union[str, Path],
        epoch: Optional[int] = None,
        note: str = "",
    ) -> PushRecord:
        """Publish a model bundle to the fleet under an epoch watermark.

        The watermark defaults to the bundle's own epoch stamp; an
        explicit ``epoch`` overrides it (how :meth:`rollback` re-issues
        an old bundle under a fresh epoch).  Re-pushing the watermark's
        exact ``(epoch, revision)`` is a counted idempotent no-op that
        returns the existing record; any other non-advancing push is a
        :class:`FleetError`.

        Publishing does not distribute: members pick the record up on
        their next :meth:`BundleSubscriber.poll` (or :meth:`sync_all`).
        """
        info = bundle_info(bundle_path)
        stamped = info["epoch"]
        target = epoch if epoch is not None else (stamped if stamped is not None else 0)
        revision = info["revision"]
        watermark = self.watermark
        if watermark is not None:
            if target == watermark.epoch and revision == watermark.revision:
                self.duplicate_pushes += 1
                self._record_push(watermark, duplicate=True)
                return watermark
            if target == watermark.epoch:
                raise FleetError(
                    f"push of {bundle_path} carries epoch {target}, which the "
                    f"channel watermark already holds with a different revision "
                    f"({revision} vs {watermark.revision}); re-stamp the bundle "
                    "with a fresh epoch before pushing"
                )
            if target < watermark.epoch:
                raise FleetError(
                    f"push of {bundle_path} carries epoch {target} behind the "
                    f"channel watermark {watermark.epoch}; epochs only move "
                    "forward -- to roll back, re-publish the old bundle under "
                    "a fresh higher epoch (FleetCoordinator.rollback)"
                )
        record = PushRecord(
            push_id=len(self.pushes) + 1,
            bundle_path=str(bundle_path),
            epoch=target,
            revision=revision,
            note=note,
        )
        self.pushes.append(record)
        self._record_push(record, duplicate=False)
        return record

    def rollback(self, note: str = "rollback") -> PushRecord:
        """Revert the fleet to the previous bundle -- by moving *forward*.

        Re-publishes the next-to-last push's bundle under a fresh epoch
        one past the watermark.  The model content reverts while the
        epoch advances, so cache invalidation still triggers on every
        member (staleness is a generation *inequality*) and the ledger's
        cache-epoch monotonicity audit stays clean.
        """
        if len(self.pushes) < 2:
            raise FleetError(
                f"cannot roll back: the channel holds {len(self.pushes)} "
                "push(es) and rollback needs a previous one to return to"
            )
        previous = self.pushes[-2]
        return self.push(
            previous.bundle_path,
            epoch=self.watermark.epoch + 1,
            note=note or f"rollback to push {previous.push_id}",
        )

    def _record_push(self, record: PushRecord, duplicate: bool) -> None:
        if self.observability is not None:
            self.observability.record_push(
                push_id=record.push_id,
                bundle_path=record.bundle_path,
                epoch=record.epoch,
                revision=record.revision,
                duplicate=duplicate,
                note=record.note,
            )

    # ------------------------------------------------------------------ #
    # Membership.
    # ------------------------------------------------------------------ #
    def spawn_gateway(
        self, name: str, config: Optional[GatewayConfig] = None
    ) -> GatewayHandle:
        """Build a fleet member from the channel watermark's bundle.

        Takes a :class:`~repro.api.GatewayConfig` as the *template* (all
        tuning knobs honoured) but overrides the model source with the
        watermark bundle and the name with ``name``, then registers the
        member.  Requires at least one prior :meth:`push` -- a fleet
        member's model always comes from the channel.
        """
        watermark = self.watermark
        if watermark is None:
            raise FleetError(
                "spawn_gateway needs a channel watermark; push a bundle first"
            )
        template = config if config is not None else GatewayConfig()
        member_config = replace(
            template,
            name=name,
            bundle_path=watermark.bundle_path,
            identifier=None,
            resume=False,
        )
        handle = build_gateway(member_config)
        if watermark.epoch > handle.epoch:
            # A rollback watermark outruns the bundle's own stamp; the
            # member adopts the channel epoch, not the file's.
            handle.adopt_epoch(watermark.epoch)
        subscriber = self.register(handle)
        # A spawned member starts caught up -- it was built from the
        # watermark bundle, so the channel's history predates it.
        subscriber.cursor = len(self.pushes)
        return handle

    def register(self, handle: GatewayHandle) -> BundleSubscriber:
        """Enroll an existing gateway as a fleet member.

        The subscriber's cursor starts at the head of the channel, so a
        member that joined late catches up on its first poll (records
        behind its current epoch are counted as skipped, the rest apply
        in order).
        """
        if handle.name in self.members:
            raise FleetError(f"fleet already has a member named {handle.name!r}")
        subscriber = BundleSubscriber(name=handle.name, handle=handle, channel=self)
        self.members[handle.name] = subscriber
        return subscriber

    def sync_all(self) -> dict[str, int]:
        """Poll every member; return how many pushes each applied."""
        return {name: len(sub.poll()) for name, sub in sorted(self.members.items())}
