"""Fleet health: one view over every member's metrics snapshot.

:class:`FleetHealthView` does no instrumentation of its own -- each
gateway's :class:`~repro.obs.hub.Observability` hub already surfaces the
three signals that matter for convergence (the served cache epoch, the
identification-cache hit rate, the quarantine depth), so the view just
reads ``snapshot()`` per member and folds the rows into a
:class:`ConvergenceReport` against the channel watermark: who lags, by
how many epochs, and whether the fleet has converged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ObservabilityError
from repro.fleet.channel import FleetCoordinator


@dataclass(frozen=True)
class GatewayHealth:
    """One member's convergence-relevant vitals, read from its snapshot."""

    name: str
    epoch: int
    revision: int
    lag: int
    applied: int
    duplicates: int
    cache_hit_rate: float
    quarantine_depth: int

    def describe(self) -> str:
        state = "converged" if self.lag == 0 else f"lagging by {self.lag} epoch(s)"
        return (
            f"{self.name}: epoch {self.epoch} rev {self.revision} ({state}), "
            f"cache hit rate {self.cache_hit_rate:.2f}, "
            f"quarantine depth {self.quarantine_depth}"
        )


@dataclass(frozen=True)
class ConvergenceReport:
    """The fleet against the channel watermark, member by member."""

    target_epoch: int
    rows: tuple[GatewayHealth, ...]
    converged: bool
    laggards: tuple[str, ...]
    max_lag: int

    def describe(self) -> str:
        """A human-readable runbook rendering (one line per member)."""
        verdict = (
            "CONVERGED" if self.converged
            else f"LAGGING (max lag {self.max_lag}, laggards: {', '.join(self.laggards)})"
        )
        lines = [f"fleet @ epoch {self.target_epoch}: {verdict}"]
        lines.extend(f"  {row.describe()}" for row in self.rows)
        return "\n".join(lines)


class FleetHealthView:
    """Aggregates per-member snapshots into a convergence report.

    Every member must have been built with observability (the facade's
    default): the view reads ``cache_epoch.generation`` /
    ``identification_cache.hit_rate`` / ``quarantine.size`` straight out
    of each gateway's unified snapshot rather than poking components.
    """

    def __init__(self, coordinator: FleetCoordinator):
        self.coordinator = coordinator

    def collect(self) -> ConvergenceReport:
        watermark = self.coordinator.watermark
        target = watermark.epoch if watermark is not None else 0
        rows = []
        for name, subscriber in sorted(self.coordinator.members.items()):
            handle = subscriber.handle
            if handle.observability is None:
                raise ObservabilityError(
                    f"fleet member {name!r} was built without observability; "
                    "FleetHealthView reads member snapshots -- build members "
                    "with GatewayConfig(observability=True)"
                )
            snapshot = handle.snapshot(include_timings=False)
            epoch = int(snapshot.get("cache_epoch.generation", handle.epoch))
            rows.append(
                GatewayHealth(
                    name=name,
                    epoch=epoch,
                    revision=handle.revision,
                    lag=max(0, target - epoch),
                    applied=subscriber.applied,
                    duplicates=subscriber.duplicates,
                    cache_hit_rate=float(
                        snapshot.get("identification_cache.hit_rate", 0.0)
                    ),
                    quarantine_depth=int(snapshot.get("quarantine.size", 0)),
                )
            )
        laggards = tuple(row.name for row in rows if row.lag > 0)
        max_lag = max((row.lag for row in rows), default=0)
        return ConvergenceReport(
            target_epoch=target,
            rows=tuple(rows),
            converged=bool(rows) and not laggards,
            laggards=laggards,
            max_lag=max_lag,
        )
