"""The Security Gateway: monitoring, enforcement and isolation overlays.

This subpackage models the gateway-side half of IoT SENTINEL (Fig. 1): the
device monitor that captures setup traffic of newly seen devices, the
enforcement-rule generator and its hash-table rule cache, the network
overlay bookkeeping (trusted vs untrusted), the per-device WPA2-PSK manager
and the gateway itself, which plugs into the SDN controller as the paper's
custom Floodlight module does.
"""

from repro.gateway.enforcement import DeviceRecord, EnforcementRule, NetworkOverlay
from repro.gateway.monitoring import DeviceMonitor
from repro.gateway.rule_cache import EnforcementRuleCache
from repro.gateway.security_gateway import AuthorizationDecision, SecurityGateway
from repro.gateway.wireless import WirelessCredential, WPSKeyManager

__all__ = [
    "EnforcementRule",
    "DeviceRecord",
    "NetworkOverlay",
    "DeviceMonitor",
    "EnforcementRuleCache",
    "SecurityGateway",
    "AuthorizationDecision",
    "WPSKeyManager",
    "WirelessCredential",
]
