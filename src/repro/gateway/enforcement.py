"""Enforcement rules and per-device records kept by the Security Gateway."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import EnforcementError
from repro.net.addresses import MACAddress
from repro.sdn.openflow import FlowAction, FlowMatch, FlowRule
from repro.security_service.isolation import IsolationLevel


class NetworkOverlay(str, enum.Enum):
    """The two virtual network overlays of the mitigation design (Sect. III-C)."""

    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"

    @classmethod
    def for_isolation_level(cls, level: IsolationLevel) -> "NetworkOverlay":
        """Trusted devices join the trusted overlay; everything else is untrusted."""
        return cls.TRUSTED if level is IsolationLevel.TRUSTED else cls.UNTRUSTED


@dataclass(frozen=True)
class EnforcementRule:
    """A per-device enforcement rule (Fig. 2 of the paper).

    Rules are keyed by the device's MAC address (IoT devices are assumed to
    use static MACs).  For the *restricted* level the rule carries the set
    of permitted remote IP addresses through which the device may reach its
    vendor cloud.  ``rule_hash`` is the identifier under which the rule is
    stored in the gateway's rule cache.
    """

    device_mac: MACAddress
    isolation_level: IsolationLevel
    allowed_destinations: tuple[str, ...] = ()
    device_type: str = "unknown"
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.isolation_level is IsolationLevel.RESTRICTED and not self.allowed_destinations:
            # A restricted device with no permitted endpoints degenerates to
            # strict behaviour; that is legal but worth normalising.
            pass
        if self.isolation_level is IsolationLevel.TRUSTED and self.allowed_destinations:
            raise EnforcementError("trusted devices do not carry destination allow-lists")

    @property
    def rule_hash(self) -> str:
        """Stable hash used as the cache key of this rule (cf. Fig. 2)."""
        digest = hashlib.sha1(
            f"{self.device_mac}|{self.isolation_level.value}|{','.join(self.allowed_destinations)}".encode()
        )
        return digest.hexdigest()[:16]

    @property
    def estimated_size_bytes(self) -> int:
        """Approximate in-memory footprint of the cached rule."""
        return 96 + 18 * len(self.allowed_destinations)

    def permits_destination(self, destination_ip: str) -> bool:
        """True when a restricted device may contact ``destination_ip``."""
        return destination_ip in self.allowed_destinations

    # ------------------------------------------------------------------ #
    # Translation into switch flow rules.
    # ------------------------------------------------------------------ #
    def to_flow_rules(self, priority_base: int = 100) -> list[FlowRule]:
        """Render the enforcement rule into OpenFlow-style switch rules.

        The translation mirrors Sect. V: trusted devices get a blanket
        forward rule; restricted devices get one forward rule per permitted
        destination plus a device-scoped drop; strict devices get only the
        device-scoped drop (local overlay traffic is authorised by the
        gateway module itself, which knows overlay membership).
        """
        cookie = f"enforce-{self.device_mac}"
        rules: list[FlowRule] = []
        if self.isolation_level is IsolationLevel.TRUSTED:
            rules.append(
                FlowRule(
                    match=FlowMatch(src_mac=self.device_mac),
                    action=FlowAction.FORWARD,
                    priority=priority_base,
                    cookie=cookie,
                )
            )
            return rules
        for destination in self.allowed_destinations:
            rules.append(
                FlowRule(
                    match=FlowMatch(src_mac=self.device_mac, dst_ip=destination),
                    action=FlowAction.FORWARD,
                    priority=priority_base + 10,
                    cookie=cookie,
                )
            )
        rules.append(
            FlowRule(
                match=FlowMatch(src_mac=self.device_mac),
                action=FlowAction.SEND_TO_CONTROLLER,
                priority=priority_base,
                cookie=cookie,
            )
        )
        return rules


@dataclass
class DeviceRecord:
    """Everything the Security Gateway knows about one connected device."""

    mac: MACAddress
    ip_address: Optional[str] = None
    device_type: str = "unknown"
    isolation_level: IsolationLevel = IsolationLevel.STRICT
    overlay: NetworkOverlay = NetworkOverlay.UNTRUSTED
    enforcement_rule: Optional[EnforcementRule] = None
    connected_at: float = 0.0
    last_seen_at: float = 0.0
    vulnerability_count: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def is_identified(self) -> bool:
        return self.device_type != "unknown"

    def touch(self, timestamp: float) -> None:
        """Record that traffic from the device was seen at ``timestamp``."""
        self.last_seen_at = max(self.last_seen_at, timestamp)
