"""Device monitoring: capturing the setup traffic of newly seen devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.features.fingerprint import Fingerprint
from repro.features.session import SetupPhaseDetector
from repro.net.addresses import MACAddress
from repro.net.packet import Packet


@dataclass
class _MonitoredDevice:
    """Accumulated setup packets of one device still being profiled."""

    mac: MACAddress
    packets: list[Packet] = field(default_factory=list)
    first_seen: float = 0.0
    last_seen: float = 0.0
    finished: bool = False


@dataclass
class DeviceMonitor:
    """Watches traffic for unknown MAC addresses and buffers their setup packets.

    A device's setup capture is considered complete when either the packet
    budget is exhausted or the device goes quiet for ``idle_timeout``
    seconds, mirroring the "decrease in the rate of packets sent" criterion
    of Sect. IV-A.  Completed captures are turned into fingerprints the
    gateway sends to the IoT Security Service.
    """

    max_packets: int = 250
    idle_timeout: float = 15.0
    detector: SetupPhaseDetector = field(default_factory=SetupPhaseDetector)
    _devices: dict[MACAddress, _MonitoredDevice] = field(default_factory=dict)

    def is_monitoring(self, mac: MACAddress) -> bool:
        """True when the device's setup phase is still being captured."""
        device = self._devices.get(mac)
        return device is not None and not device.finished

    def packet_count(self, mac: MACAddress) -> int:
        device = self._devices.get(mac)
        return len(device.packets) if device else 0

    def observe(self, packet: Packet) -> Optional[Fingerprint]:
        """Feed one packet; returns a fingerprint when the capture completes."""
        mac = packet.src_mac
        device = self._devices.get(mac)
        if device is None:
            device = _MonitoredDevice(mac=mac, first_seen=packet.timestamp, last_seen=packet.timestamp)
            self._devices[mac] = device
        if device.finished:
            return None

        if packet.timestamp - device.last_seen > self.idle_timeout and device.packets:
            return self._finalize(device)

        device.packets.append(packet)
        device.last_seen = packet.timestamp
        if len(device.packets) >= self.max_packets:
            return self._finalize(device)
        return None

    def finalize(self, mac: MACAddress) -> Optional[Fingerprint]:
        """Force completion of a device's capture (e.g. on an idle timer)."""
        device = self._devices.get(mac)
        if device is None or device.finished or not device.packets:
            return None
        return self._finalize(device)

    def _finalize(self, device: _MonitoredDevice) -> Fingerprint:
        device.finished = True
        setup_packets = self.detector.setup_slice(device.packets)
        return Fingerprint.from_packets(setup_packets, device_mac=str(device.mac))

    def forget(self, mac: MACAddress) -> None:
        """Discard monitoring state of a device (it left the network)."""
        self._devices.pop(mac, None)

    @property
    def monitored_devices(self) -> list[MACAddress]:
        return [mac for mac, device in self._devices.items() if not device.finished]
