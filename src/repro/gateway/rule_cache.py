"""The enforcement-rule cache of the Security Gateway.

The paper stores enforcement rules in a hash-table structure so that the
per-flow lookup cost stays constant as the cache grows, and notes that the
memory used by the cache can be bounded by evicting rules of devices that
are no longer connected.  This class models exactly that: a dict-backed
store keyed by device MAC, with hit/miss statistics, a memory estimate and
an eviction policy for stale entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import EnforcementError
from repro.gateway.enforcement import EnforcementRule
from repro.net.addresses import MACAddress

#: ``reason`` values passed to :attr:`EnforcementRuleCache.on_evict`.
EVICT_CAPACITY = "capacity"
EVICT_STALE = "stale"


@dataclass
class EnforcementRuleCache:
    """A hash-table cache of per-device enforcement rules.

    Attributes:
        max_entries: optional hard cap; inserting beyond it evicts the
            least-recently-used entry.
        on_evict: optional callback ``(mac, reason)`` invoked whenever the
            cache evicts a rule on its own initiative -- ``reason`` is
            ``"capacity"`` (LRU pressure; the device may well still be
            connected) or ``"stale"`` (idle beyond ``max_idle_seconds``;
            the device has very likely left the network).  The Security
            Gateway uses the stale signal to tell the lifecycle
            coordinator to stop re-identifying departed devices.
            Explicit :meth:`remove` calls do not fire it (the remover
            already knows).
    """

    max_entries: Optional[int] = None
    on_evict: Optional[Callable[[MACAddress, str], None]] = None
    _rules: dict[MACAddress, EnforcementRule] = field(default_factory=dict)
    _last_access: dict[MACAddress, float] = field(default_factory=dict)
    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    replacements: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries <= 0:
            raise EnforcementError("max_entries must be positive when set")

    # ------------------------------------------------------------------ #
    # Store / evict.
    # ------------------------------------------------------------------ #
    def store(self, rule: EnforcementRule, now: float = 0.0) -> None:
        """Insert or replace the rule of a device.

        A replacement (rule upgrade of an already-cached device) is
        counted under ``replacements``, not ``insertions`` -- the latter
        tracks cache growth, and conflating the two overstated it.
        """
        replacing = rule.device_mac in self._rules
        if self.max_entries is not None and not replacing:
            while len(self._rules) >= self.max_entries:
                self._evict_oldest()
        self._rules[rule.device_mac] = rule
        self._last_access[rule.device_mac] = now
        if replacing:
            self.replacements += 1
        else:
            self.insertions += 1

    def _evict_oldest(self) -> None:
        oldest = min(self._last_access, key=self._last_access.get)
        self._rules.pop(oldest, None)
        self._last_access.pop(oldest, None)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(oldest, EVICT_CAPACITY)

    def remove(self, mac: MACAddress) -> bool:
        """Remove the rule of a disconnected device; True when one existed."""
        removed = self._rules.pop(mac, None) is not None
        self._last_access.pop(mac, None)
        return removed

    def evict_stale(self, now: float, max_idle_seconds: float) -> int:
        """Remove rules of devices not seen for ``max_idle_seconds``."""
        if max_idle_seconds < 0:
            raise EnforcementError("max_idle_seconds cannot be negative")
        stale = [
            mac
            for mac, last_access in self._last_access.items()
            if now - last_access > max_idle_seconds
        ]
        for mac in stale:
            self.remove(mac)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(mac, EVICT_STALE)
        return len(stale)

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #
    def lookup(self, mac: MACAddress, now: float = 0.0) -> Optional[EnforcementRule]:
        """O(1) lookup of the rule governing ``mac`` (None on miss)."""
        self.lookups += 1
        rule = self._rules.get(mac)
        if rule is not None:
            self.hits += 1
            self._last_access[mac] = now
        return rule

    def __contains__(self, mac: object) -> bool:
        return mac in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------ #
    # Accounting.
    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def estimated_memory_bytes(self) -> int:
        """Approximate memory footprint of all cached rules."""
        return sum(rule.estimated_size_bytes for rule in self._rules.values())

    def rules(self) -> list[EnforcementRule]:
        """A snapshot of every cached rule."""
        return list(self._rules.values())
