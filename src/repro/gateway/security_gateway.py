"""The Security Gateway: the SDN module tying monitoring and enforcement together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.exceptions import EnforcementError
from repro.features.fingerprint import Fingerprint
from repro.gateway.enforcement import DeviceRecord, EnforcementRule, NetworkOverlay
from repro.gateway.monitoring import DeviceMonitor
from repro.gateway.rule_cache import EVICT_STALE, EnforcementRuleCache
from repro.gateway.wireless import WPSKeyManager
from repro.net.addresses import MACAddress
from repro.net.packet import Packet
from repro.sdn.controller import SdnController
from repro.sdn.openflow import FlowAction
from repro.sdn.switch import OpenVSwitch, SwitchPort
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService, SecurityAssessment
from repro.simulation.clock import SimulatedClock
from repro.simulation.resources import GatewayResourceModel, ResourceSample

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.identification.lifecycle import LifecycleCoordinator

#: Vulnerabilities at or above this CVSS-like severity trigger a user
#: notification (mitigation strategy 3: some devices cannot be adequately
#: contained by network-level measures alone).
NOTIFICATION_SEVERITY_THRESHOLD = 9.0

#: Per-traversal packet processing cost of the gateway datapath on the
#: Raspberry Pi 2 reference platform, in milliseconds.  The forwarding base
#: cost is paid regardless of filtering; the lookup cost is paid only when
#: the enforcement (filtering) mechanism is enabled and corresponds to the
#: hash-table rule-cache lookup plus the flow-rule match.  Values are
#: calibrated so that the relative overheads land in the range of Table VI.
BASE_FORWARDING_COST_MS = 0.90
FILTERING_LOOKUP_COST_MS = 0.38
#: Marginal lookup cost per thousand cached rules: the cache is a hash
#: table, so growth is intentionally tiny (the paper's design goal).
FILTERING_COST_PER_1000_RULES_MS = 0.004


@dataclass(frozen=True)
class AuthorizationDecision:
    """The gateway's verdict on one packet."""

    allowed: bool
    reason: str
    rule: Optional[EnforcementRule] = None

    def __bool__(self) -> bool:
        return self.allowed


@dataclass
class SecurityGateway:
    """The software-defined Security Gateway of Fig. 1.

    The gateway monitors traffic of newly connected devices, obtains a
    security assessment for each from the :class:`IoTSecurityService`,
    generates per-device enforcement rules, and filters every subsequent
    packet according to the device's isolation level and overlay membership.

    Attributes:
        security_service: the IoTSSP client used for assessments.
        filtering_enabled: when False the gateway forwards everything
            (the "no filtering" baseline of the paper's evaluation).
        clock: simulated time source.
        resource_model: CPU/memory model used for the Fig. 6 experiments.
    """

    security_service: Optional[IoTSecurityService] = None
    filtering_enabled: bool = True
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    controller: SdnController = field(default_factory=SdnController)
    switch: OpenVSwitch = field(default_factory=OpenVSwitch)
    monitor: DeviceMonitor = field(default_factory=DeviceMonitor)
    rule_cache: EnforcementRuleCache = field(default_factory=EnforcementRuleCache)
    wps: WPSKeyManager = field(default_factory=WPSKeyManager)
    resource_model: GatewayResourceModel = field(default_factory=GatewayResourceModel)

    name: str = "iot-sentinel-gateway"
    lifecycle: Optional["LifecycleCoordinator"] = None
    devices: dict[MACAddress, DeviceRecord] = field(default_factory=dict)
    ip_to_mac: dict[str, MACAddress] = field(default_factory=dict)
    notifications: list[str] = field(default_factory=list)
    packets_allowed: int = 0
    packets_blocked: int = 0

    def __post_init__(self) -> None:
        if self.switch.name not in self.controller.switches:
            self.controller.attach_switch(self.switch)
        if not any(module.name == self.name for module in self.controller.modules):
            self.controller.register_module(self)

    # ------------------------------------------------------------------ #
    # Device lifecycle.
    # ------------------------------------------------------------------ #
    def connect_device(
        self,
        mac: MACAddress,
        ip_address: Optional[str] = None,
        wireless: bool = True,
        port: SwitchPort = SwitchPort.WIFI,
    ) -> DeviceRecord:
        """Register a newly connected device (pre-identification state)."""
        if mac in self.devices:
            return self.devices[mac]
        record = DeviceRecord(
            mac=mac,
            ip_address=ip_address,
            connected_at=self.clock.now(),
            last_seen_at=self.clock.now(),
        )
        self.devices[mac] = record
        if ip_address:
            self.ip_to_mac[ip_address] = mac
        if wireless:
            self.wps.issue(mac, overlay=NetworkOverlay.UNTRUSTED, now=self.clock.now())
        self.switch.learn_port(mac, port)
        return record

    def attach_lifecycle(self, coordinator: "LifecycleCoordinator") -> None:
        """Couple device departure into the online-learning lifecycle.

        After attachment, :meth:`disconnect_device` and the rule cache's
        idle-eviction path (``evict_stale``; the gateway's proxy for "no
        longer connected") both report the departed MAC to the
        coordinator, which drops it from the quarantine log and from any
        pending autopilot proposal -- a device that left the network is
        never re-identified, enforced or counted toward a learning
        cluster.  Capacity (LRU) evictions do *not* count as departure:
        a rule squeezed out of a full cache may belong to a device that
        is still very much connected.

        A callback already installed on ``rule_cache.on_evict`` (e.g. a
        metrics hook) keeps firing: the lifecycle wiring chains after it
        instead of replacing it.
        """
        self.lifecycle = coordinator
        existing = self.rule_cache.on_evict
        if existing is None or existing is self._on_rule_evicted:
            self.rule_cache.on_evict = self._on_rule_evicted
        else:

            def chained(mac: MACAddress, reason: str) -> None:
                existing(mac, reason)
                self._on_rule_evicted(mac, reason)

            self.rule_cache.on_evict = chained

    def _on_rule_evicted(self, mac: MACAddress, reason: str) -> None:
        if reason == EVICT_STALE and self.lifecycle is not None:
            self.lifecycle.note_disconnected(mac)

    def disconnect_device(self, mac: MACAddress) -> None:
        """Remove a device: rules evicted, credentials revoked, lifecycle told."""
        record = self.devices.pop(mac, None)
        if record is None:
            return
        # Only drop the IP mapping if it still belongs to this device: under
        # DHCP churn the lease may already have been reassigned to another
        # MAC, and popping unconditionally would evict the *new* owner.
        if record.ip_address and self.ip_to_mac.get(record.ip_address) == mac:
            self.ip_to_mac.pop(record.ip_address, None)
        self.rule_cache.remove(mac)
        self.switch.remove_rules(f"enforce-{mac}")
        self.wps.revoke(mac)
        self.monitor.forget(mac)
        if self.lifecycle is not None:
            self.lifecycle.note_disconnected(mac)

    def note_address_claim(
        self, mac: MACAddress, ip_address: Optional[str], now: float = 0.0
    ) -> DeviceRecord:
        """Track one source-address claim on the datapath (DHCP/ARP churn).

        Registers the device if needed, refreshes its last-seen stamp and
        keeps ``ip_to_mac`` coherent under lease churn: when a device shows
        up with a new address, the previous mapping is evicted *only if it
        still points at this device* -- another device may have claimed the
        old lease in the meantime, and its mapping must survive.  This is
        the address-tracking half of :meth:`observe_setup_packet`, exposed
        so streaming-path callers (which bypass the monitor) can drive the
        same logic per packet.
        """
        record = self.connect_device(mac)
        record.touch(now)
        if ip_address and ip_address != "0.0.0.0":
            previous_ip = record.ip_address
            if (
                previous_ip
                and previous_ip != ip_address
                and self.ip_to_mac.get(previous_ip) == mac
            ):
                del self.ip_to_mac[previous_ip]
            record.ip_address = ip_address
            self.ip_to_mac[ip_address] = mac
        return record

    def observe_setup_packet(self, packet: Packet) -> Optional[DeviceRecord]:
        """Feed one setup-phase packet of a device being profiled.

        When the monitor decides the setup phase is over, the fingerprint is
        sent to the IoT Security Service and the resulting enforcement is
        applied; the updated device record is then returned.
        """
        record = self.note_address_claim(packet.src_mac, packet.src_ip, packet.timestamp)
        fingerprint = self.monitor.observe(packet)
        if fingerprint is None:
            return None
        return self._assess_and_enforce(record, fingerprint)

    def finalize_device_setup(self, mac: MACAddress) -> Optional[DeviceRecord]:
        """Force the end of a device's setup capture (idle timer fired)."""
        fingerprint = self.monitor.finalize(mac)
        if fingerprint is None:
            return None
        record = self.devices.get(mac)
        if record is None:
            record = self.connect_device(mac)
        return self._assess_and_enforce(record, fingerprint)

    def onboard_device(self, packets: list[Packet]) -> DeviceRecord:
        """Convenience: run a full setup capture through monitoring + enforcement."""
        if not packets:
            raise EnforcementError("cannot onboard a device from an empty capture")
        record = None
        for packet in packets:
            record = self.observe_setup_packet(packet) or record
        if record is None:
            record = self.finalize_device_setup(packets[0].src_mac)
        if record is None:
            raise EnforcementError("device onboarding produced no fingerprint")
        return record

    # ------------------------------------------------------------------ #
    # Assessment and enforcement.
    # ------------------------------------------------------------------ #
    def _assess_and_enforce(self, record: DeviceRecord, fingerprint: Fingerprint) -> DeviceRecord:
        if self.security_service is None:
            raise EnforcementError("no IoT Security Service is configured")
        assessment = self.security_service.assess_fingerprint(fingerprint)
        return self.apply_assessment(record.mac, assessment)

    def apply_assessment(self, mac: MACAddress, assessment: SecurityAssessment) -> DeviceRecord:
        """Apply an IoTSSP assessment: cache the rule and program the switch."""
        record = self.devices.get(mac)
        if record is None:
            record = self.connect_device(mac)
        record.device_type = assessment.device_type
        record.isolation_level = assessment.isolation_level
        record.overlay = NetworkOverlay.for_isolation_level(assessment.isolation_level)
        record.vulnerability_count = len(assessment.vulnerabilities)

        rule = EnforcementRule(
            device_mac=mac,
            isolation_level=assessment.isolation_level,
            allowed_destinations=assessment.allowed_destinations
            if assessment.isolation_level is IsolationLevel.RESTRICTED
            else (),
            device_type=assessment.device_type,
            created_at=self.clock.now(),
        )
        record.enforcement_rule = rule
        self.rule_cache.store(rule, now=self.clock.now())

        self.switch.remove_rules(f"enforce-{mac}")
        if self.filtering_enabled:
            for flow_rule in rule.to_flow_rules():
                self.switch.install_rule(flow_rule)

        if assessment.isolation_level is IsolationLevel.TRUSTED and self.wps.credential_of(mac):
            self.wps.rekey(mac, overlay=NetworkOverlay.TRUSTED, now=self.clock.now())

        for vulnerability in assessment.vulnerabilities:
            if vulnerability.severity >= NOTIFICATION_SEVERITY_THRESHOLD:
                self.notifications.append(
                    f"device {mac} ({assessment.device_type}) has a critical vulnerability "
                    f"({vulnerability.cve_id}); consider removing it from the network"
                )
        return record

    # ------------------------------------------------------------------ #
    # Datapath: per-packet authorisation.
    # ------------------------------------------------------------------ #
    def _destination_record(self, packet: Packet) -> Optional[DeviceRecord]:
        record = self.devices.get(packet.dst_mac)
        if record is not None:
            return record
        if packet.dst_ip and packet.dst_ip in self.ip_to_mac:
            return self.devices.get(self.ip_to_mac[packet.dst_ip])
        return None

    def authorize(self, packet: Packet) -> AuthorizationDecision:
        """Decide whether a packet may be forwarded (Sect. V semantics).

        * trusted source: may reach trusted devices and the Internet, but
          not untrusted devices (the overlays are strictly separated);
        * restricted source: may reach untrusted devices and the remote
          destinations on its allow-list;
        * strict source: may only reach untrusted devices;
        * unidentified source: treated as strict while its setup traffic is
          still being profiled (broadcast/local infrastructure traffic is
          allowed so that setup itself can complete).
        """
        if not self.filtering_enabled:
            return AuthorizationDecision(allowed=True, reason="filtering disabled")

        source = self.devices.get(packet.src_mac)
        rule = self.rule_cache.lookup(packet.src_mac, now=self.clock.now())
        destination_record = self._destination_record(packet)
        destination_is_local = destination_record is not None or packet.dst_mac.is_broadcast or packet.dst_mac.is_multicast
        destination_ip = packet.dst_ip or ""

        if source is None or rule is None:
            # Unidentified device: allow local/broadcast traffic needed to
            # complete setup, block direct Internet access until assessed.
            if destination_is_local or not packet.has_ip:
                decision = AuthorizationDecision(allowed=True, reason="unidentified device, local traffic")
            else:
                decision = AuthorizationDecision(allowed=False, reason="unidentified device, internet blocked")
            self._count(decision)
            return decision

        level = rule.isolation_level
        if level is IsolationLevel.TRUSTED:
            if destination_record is not None and destination_record.overlay is NetworkOverlay.UNTRUSTED:
                decision = AuthorizationDecision(False, "trusted device may not reach untrusted overlay", rule)
            else:
                decision = AuthorizationDecision(True, "trusted device", rule)
        elif level is IsolationLevel.RESTRICTED:
            if destination_record is not None:
                if destination_record.overlay is NetworkOverlay.UNTRUSTED:
                    decision = AuthorizationDecision(True, "restricted device, untrusted overlay peer", rule)
                else:
                    decision = AuthorizationDecision(False, "restricted device may not reach trusted overlay", rule)
            elif packet.dst_mac.is_broadcast or packet.dst_mac.is_multicast or not packet.has_ip:
                decision = AuthorizationDecision(True, "restricted device, local broadcast", rule)
            elif rule.permits_destination(destination_ip):
                decision = AuthorizationDecision(True, "restricted device, permitted cloud endpoint", rule)
            else:
                decision = AuthorizationDecision(False, "restricted device, destination not permitted", rule)
        else:  # STRICT
            if destination_record is not None and destination_record.overlay is NetworkOverlay.UNTRUSTED:
                decision = AuthorizationDecision(True, "strict device, untrusted overlay peer", rule)
            elif packet.dst_mac.is_broadcast or packet.dst_mac.is_multicast or not packet.has_ip:
                decision = AuthorizationDecision(True, "strict device, local broadcast", rule)
            else:
                decision = AuthorizationDecision(False, "strict device, destination blocked", rule)

        self._count(decision)
        return decision

    def _count(self, decision: AuthorizationDecision) -> None:
        if decision.allowed:
            self.packets_allowed += 1
        else:
            self.packets_blocked += 1

    def handle_packet(self, packet: Packet, ingress_port: Optional[SwitchPort] = None):
        """Run one packet through the switch datapath (flow table + controller)."""
        if packet.src_mac in self.devices:
            self.devices[packet.src_mac].touch(packet.timestamp)
        return self.switch.process(packet, ingress_port=ingress_port)

    # ControllerModule interface -- invoked by the switch on table misses.
    def on_packet_in(self, packet: Packet, switch: OpenVSwitch) -> Optional[FlowAction]:
        decision = self.authorize(packet)
        return FlowAction.FORWARD if decision.allowed else FlowAction.DROP

    # ------------------------------------------------------------------ #
    # Performance hooks used by the evaluation harness.
    # ------------------------------------------------------------------ #
    def processing_delay_ms(self) -> float:
        """Per-traversal gateway processing cost fed into the latency model."""
        if not self.filtering_enabled:
            return BASE_FORWARDING_COST_MS
        lookup_cost = FILTERING_LOOKUP_COST_MS + FILTERING_COST_PER_1000_RULES_MS * (
            len(self.rule_cache) / 1000.0
        )
        return BASE_FORWARDING_COST_MS + lookup_cost

    def resource_sample(self, concurrent_flows: int) -> ResourceSample:
        """Sample the gateway's CPU/memory for a given flow load."""
        return self.resource_model.sample(
            concurrent_flows=concurrent_flows,
            enforcement_rules=len(self.rule_cache),
            filtering_enabled=self.filtering_enabled,
        )

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def device_record(self, mac: MACAddress) -> DeviceRecord:
        if mac not in self.devices:
            raise EnforcementError(f"unknown device: {mac}")
        return self.devices[mac]

    def devices_in_overlay(self, overlay: NetworkOverlay) -> list[DeviceRecord]:
        return [record for record in self.devices.values() if record.overlay is overlay]

    @property
    def connected_device_count(self) -> int:
        return len(self.devices)
