"""Per-device WPA2-PSK management (WPS) of the Security Gateway.

Sect. III-A: wireless devices obtain *device-specific* WPA2 pre-shared keys
via WiFi Protected Setup, so that compromising one device does not let the
adversary impersonate or eavesdrop on others.  Sect. VIII-A describes
re-keying legacy devices into the trusted overlay.  This module models the
credential lifecycle (issue, verify, re-key, revoke); actual 802.11
cryptography is out of scope.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import EnforcementError
from repro.gateway.enforcement import NetworkOverlay
from repro.net.addresses import MACAddress


@dataclass(frozen=True)
class WirelessCredential:
    """A device-specific WPA2-PSK bound to one overlay."""

    device_mac: MACAddress
    psk: str
    overlay: NetworkOverlay
    issued_at: float = 0.0
    revoked: bool = False

    @property
    def fingerprint(self) -> str:
        """A short non-reversible identifier of the PSK (for logs/UIs)."""
        return hashlib.sha256(self.psk.encode("ascii")).hexdigest()[:12]


@dataclass
class WPSKeyManager:
    """Issues, verifies and rotates device-specific WPA2 pre-shared keys."""

    psk_bytes: int = 16
    _credentials: dict[MACAddress, WirelessCredential] = field(default_factory=dict)
    issued_count: int = 0
    rekey_count: int = 0

    def issue(
        self,
        device_mac: MACAddress,
        overlay: NetworkOverlay = NetworkOverlay.UNTRUSTED,
        now: float = 0.0,
    ) -> WirelessCredential:
        """Issue a fresh device-specific PSK (initial WPS handshake)."""
        credential = WirelessCredential(
            device_mac=device_mac,
            psk=secrets.token_hex(self.psk_bytes),
            overlay=overlay,
            issued_at=now,
        )
        self._credentials[device_mac] = credential
        self.issued_count += 1
        return credential

    def credential_of(self, device_mac: MACAddress) -> Optional[WirelessCredential]:
        return self._credentials.get(device_mac)

    def verify(self, device_mac: MACAddress, psk: str) -> bool:
        """True when ``psk`` is the currently valid key of the device."""
        credential = self._credentials.get(device_mac)
        return credential is not None and not credential.revoked and credential.psk == psk

    def rekey(
        self, device_mac: MACAddress, overlay: NetworkOverlay, now: float = 0.0
    ) -> WirelessCredential:
        """Rotate a device's PSK, moving it to ``overlay`` (WPS re-keying).

        Used when a legacy device without known vulnerabilities is promoted
        from the untrusted to the trusted overlay (Sect. VIII-A).
        """
        if device_mac not in self._credentials:
            raise EnforcementError(f"cannot re-key unknown device {device_mac}")
        credential = self.issue(device_mac, overlay=overlay, now=now)
        self.rekey_count += 1
        return credential

    def revoke(self, device_mac: MACAddress) -> bool:
        """Revoke a device's credential (device removed from the network)."""
        credential = self._credentials.get(device_mac)
        if credential is None:
            return False
        self._credentials[device_mac] = WirelessCredential(
            device_mac=credential.device_mac,
            psk=credential.psk,
            overlay=credential.overlay,
            issued_at=credential.issued_at,
            revoked=True,
        )
        return True

    def __len__(self) -> int:
        return len(self._credentials)
