"""Two-stage device-type identification (Sect. IV-B of the paper)."""

from repro.identification.classifier_bank import (
    BankScores,
    ClassifierBank,
    DeviceTypeClassifier,
)
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.identification.lifecycle import (
    CacheEpoch,
    LifecycleCoordinator,
    QuarantineLog,
    QuarantinedDevice,
    RelearnReport,
)
from repro.identification.model_store import (
    bundle_epoch,
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)
from repro.identification.registry import FingerprintRegistry

__all__ = [
    "BankScores",
    "CacheEpoch",
    "ClassifierBank",
    "DeviceTypeClassifier",
    "DeviceTypeIdentifier",
    "IdentificationResult",
    "LifecycleCoordinator",
    "QuarantineLog",
    "QuarantinedDevice",
    "RelearnReport",
    "FingerprintRegistry",
    "bundle_epoch",
    "load_bank",
    "load_identifier",
    "save_bank",
    "save_identifier",
]
