"""Two-stage device-type identification (Sect. IV-B of the paper)."""

from repro.identification.classifier_bank import (
    BankScores,
    ClassifierBank,
    DeviceTypeClassifier,
)
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.identification.model_store import (
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)
from repro.identification.registry import FingerprintRegistry

__all__ = [
    "BankScores",
    "ClassifierBank",
    "DeviceTypeClassifier",
    "DeviceTypeIdentifier",
    "IdentificationResult",
    "FingerprintRegistry",
    "load_bank",
    "load_identifier",
    "save_bank",
    "save_identifier",
]
