"""Two-stage device-type identification (Sect. IV-B of the paper)."""

from repro.identification.classifier_bank import ClassifierBank, DeviceTypeClassifier
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.identification.registry import FingerprintRegistry

__all__ = [
    "ClassifierBank",
    "DeviceTypeClassifier",
    "DeviceTypeIdentifier",
    "IdentificationResult",
    "FingerprintRegistry",
]
