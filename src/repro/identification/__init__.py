"""Two-stage device-type identification (Sect. IV-B of the paper)."""

from repro.identification.autopilot import (
    AutopilotDecision,
    LearnProposal,
    LifecycleAutopilot,
    ReprofileReport,
    ReprofileScheduler,
    TriggerPolicy,
    provisional_label,
)
from repro.identification.classifier_bank import (
    BankScores,
    ClassifierBank,
    DeviceTypeClassifier,
)
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.identification.lifecycle import (
    CacheEpoch,
    LifecycleCoordinator,
    QuarantineLog,
    QuarantinedDevice,
    RelearnReport,
    fingerprint_key,
    load_quarantine_log,
    save_quarantine_log,
)
from repro.identification.model_store import (
    bundle_epoch,
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)
from repro.identification.registry import FingerprintRegistry

__all__ = [
    "AutopilotDecision",
    "BankScores",
    "CacheEpoch",
    "ClassifierBank",
    "DeviceTypeClassifier",
    "DeviceTypeIdentifier",
    "IdentificationResult",
    "LearnProposal",
    "LifecycleAutopilot",
    "LifecycleCoordinator",
    "QuarantineLog",
    "QuarantinedDevice",
    "RelearnReport",
    "ReprofileReport",
    "ReprofileScheduler",
    "TriggerPolicy",
    "FingerprintRegistry",
    "bundle_epoch",
    "fingerprint_key",
    "load_bank",
    "load_identifier",
    "load_quarantine_log",
    "provisional_label",
    "save_bank",
    "save_identifier",
    "save_quarantine_log",
]
