"""Autonomous lifecycle operations: trigger policies and re-profiling.

:mod:`repro.identification.lifecycle` gives the gateway a *coherent*
runtime-registration primitive (``learn_device_type``), but after PR 3
every transition still needed an operator: someone had to notice that a
pile of identical unknown devices had formed, call the learn API by hand,
and remember that sticky enforcement never revisits devices whose
fingerprints drift after a firmware update.  This module closes that loop
-- the paper's gateway *autonomously* tightens and relaxes enforcement as
device-type knowledge evolves (Sect. VIII-B):

* :class:`TriggerPolicy` -- the knobs deciding *when* a quarantine
  cluster (devices sharing one unseen-model fingerprint key) justifies an
  automatic learn: cluster size, dwell time, a trigger rate limit, and a
  cap on learns pending operator confirmation.
* :class:`LifecycleAutopilot` -- watches the
  :class:`~repro.identification.lifecycle.QuarantineLog` through
  :meth:`~LifecycleAutopilot.poll`, fires :class:`LearnProposal`\\ s when
  the policy is satisfied, and either executes
  ``learn_device_type`` immediately (auto-confirm) or parks the proposal
  for an operator decision (:meth:`~LifecycleAutopilot.approve` /
  :meth:`~LifecycleAutopilot.reject`).  Auto-learned types carry a
  *provisional* label and are capped below trusted isolation until an
  operator :meth:`~LifecycleAutopilot.promote`\\ s them.
* :class:`ReprofileScheduler` -- the steady-state pass: every
  ``interval`` stream-seconds it re-identifies a budgeted batch of the
  fleet with sticky enforcement off, so firmware updates that shift a
  device's fingerprint are detected and routed through the same
  quarantine -> learn flow instead of being silently ignored.

Departed devices are handled by the coordinator's disconnect coupling:
the autopilot registers itself as a disconnect listener, so a device that
leaves the network is shed from pending proposals (dissolving a cluster
below threshold cancels its proposal outright).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Collection, Optional, Sequence, Union

from repro.exceptions import AutopilotError
from repro.features.fingerprint import Fingerprint
from repro.identification.lifecycle import (
    LifecycleCoordinator,
    RelearnReport,
    fingerprint_key,
)
from repro.net.addresses import MACAddress

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.hub import Observability
    from repro.streaming.dispatcher import IdentifiedDevice

#: Prefix of provisional labels minted for auto-learned unknown models.
PROVISIONAL_LABEL_PREFIX = "unknown-model-"

#: Hex digits of the cluster-key digest carried in a provisional label.
#: Widened from the original 8 (32 bits -- a birthday collision at a few
#: tens of thousands of models) to 12 (48 bits); an *actual* prefix
#: collision is additionally disambiguated with a numeric suffix.
PROVISIONAL_LABEL_DIGEST_HEX = 12

#: ``completion_reason`` carried by verdicts produced by the steady-state
#: re-profiling pass (vs. ``"relearn"`` from fleet re-identification and
#: ``"budget"``/``"idle"``/``"flush"`` from the streaming assembler).
REPROFILE_REASON = "reprofile"


def provisional_label(cluster_key: bytes, taken: Collection[str] = ()) -> str:
    """The deterministic provisional label for an unseen-model cluster.

    Derived from the cluster's fingerprint content hash, so in the
    collision-free case (overwhelming at 48 digest bits) the same
    unknown model proposes the same label on every gateway and across
    restarts.  ``taken`` carries the labels already in use (known
    device-types, pending proposals, previously learned labels); when two
    different models hash-prefix-collide, the later one is disambiguated
    with a numeric suffix instead of silently merging into the first
    model's type.  The suffix is assigned in *discovery order*: it is
    deterministic per gateway, but two gateways that discovered the
    colliding models in opposite orders mint opposite suffixes -- on an
    actual collision, operator review (the provisional-label rename path
    tracked in the ROADMAP) is the cross-gateway reconciliation.

    Example:
        >>> provisional_label(bytes.fromhex("ab12cd34ef567890") + bytes(12))
        'unknown-model-ab12cd34ef56'
        >>> provisional_label(
        ...     bytes.fromhex("ab12cd34ef56ffff") + bytes(12),
        ...     taken={"unknown-model-ab12cd34ef56"},
        ... )
        'unknown-model-ab12cd34ef56-2'
    """
    base = PROVISIONAL_LABEL_PREFIX + cluster_key.hex()[:PROVISIONAL_LABEL_DIGEST_HEX]
    if base not in taken:
        return base
    suffix = 2
    while f"{base}-{suffix}" in taken:
        suffix += 1
    return f"{base}-{suffix}"


@dataclass(frozen=True)
class TriggerPolicy:
    """When does a quarantine cluster justify an automatic learn?

    Attributes:
        min_cluster_size: quarantined devices sharing one fingerprint key
            before the trigger may fire (the ROADMAP's "many devices of
            one unseen model pile up").
        min_dwell_seconds: the cluster's *oldest* member must have been
            quarantined at least this long -- a debounce so a transient
            burst does not immediately mint a device-type.
        cooldown_seconds: minimum stream-seconds between fired triggers
            (rate limit across *all* clusters).
        max_pending: proposals allowed to sit unconfirmed at once; when
            the operator hook defers and this many are parked, further
            clusters must wait.

    Example:
        >>> policy = TriggerPolicy(min_cluster_size=3, cooldown_seconds=60.0)
        >>> policy.min_cluster_size
        3
        >>> TriggerPolicy(min_cluster_size=0)
        Traceback (most recent call last):
            ...
        repro.exceptions.AutopilotError: min_cluster_size must be positive, got 0
    """

    min_cluster_size: int = 3
    min_dwell_seconds: float = 0.0
    cooldown_seconds: float = 0.0
    max_pending: int = 4

    def __post_init__(self) -> None:
        if self.min_cluster_size <= 0:
            raise AutopilotError(
                f"min_cluster_size must be positive, got {self.min_cluster_size}"
            )
        if self.min_dwell_seconds < 0:
            raise AutopilotError(
                f"min_dwell_seconds cannot be negative, got {self.min_dwell_seconds}"
            )
        if self.cooldown_seconds < 0:
            raise AutopilotError(
                f"cooldown_seconds cannot be negative, got {self.cooldown_seconds}"
            )
        if self.max_pending <= 0:
            raise AutopilotError(f"max_pending must be positive, got {self.max_pending}")


@dataclass
class LearnProposal:
    """One fired trigger: an unseen-model cluster proposed for learning."""

    cluster_key: bytes
    label: str
    macs: tuple[MACAddress, ...]
    fingerprints: tuple[Fingerprint, ...]
    proposed_at: float = 0.0

    @property
    def cluster_size(self) -> int:
        return len(self.macs)

    def without(self, mac: MACAddress) -> "LearnProposal":
        """A copy of the proposal with one (departed) member removed."""
        keep = [index for index, member in enumerate(self.macs) if member != mac]
        return LearnProposal(
            cluster_key=self.cluster_key,
            label=self.label,
            macs=tuple(self.macs[index] for index in keep),
            fingerprints=tuple(self.fingerprints[index] for index in keep),
            proposed_at=self.proposed_at,
        )


@dataclass(frozen=True)
class AutopilotDecision:
    """What :meth:`LifecycleAutopilot.poll` did about one proposal."""

    proposal: LearnProposal
    action: str  # "learned" | "pending" | "rejected"
    report: Optional[RelearnReport] = None


class LifecycleAutopilot:
    """Policy-driven automation of the quarantine -> learn flow.

    Attributes:
        coordinator: the lifecycle coordinator whose quarantine log is
            watched and whose ``learn_device_type`` is driven.
        policy: the :class:`TriggerPolicy` deciding when clusters fire.
        confirm: optional operator-confirmation hook, called once per
            fired trigger with the :class:`LearnProposal`.  Return a
            label (the proposal's provisional one, or a better name) to
            execute the learn immediately; return ``None`` to park the
            proposal for a later :meth:`approve` / :meth:`reject`;
            return ``False`` to veto the cluster outright (it stays
            quarantined and is never re-proposed).  With no hook, every
            proposal auto-executes under its provisional label and the
            label is marked *provisional* with the security service
            (capped below trusted isolation) until :meth:`promote` is
            called.
        security_service: optional
            :class:`~repro.security_service.service.IoTSecurityService`;
            auto-confirmed labels are registered as provisional with it.
            When unset, the sink's ``security_service`` (a
            :class:`~repro.streaming.pipeline.GatewayEnforcementSink`
            carries one) is used instead, so the cap applies under either
            wiring.
        cluster_key: content-hash function grouping quarantined devices
            into same-model clusters; defaults to
            :func:`~repro.identification.lifecycle.fingerprint_key` (the
            dispatcher cache's key -- identical setups, identical key).
        observability: optional hub; defaults to the coordinator's so a
            wired lifecycle automatically covers its autopilot.  When
            attached, trigger counters become snapshot sources and every
            promotion lands in the evidence ledger (learns are recorded
            by the coordinator itself).
    """

    def __init__(
        self,
        coordinator: LifecycleCoordinator,
        policy: Optional[TriggerPolicy] = None,
        confirm: Optional[Callable[[LearnProposal], Union[str, bool, None]]] = None,
        security_service=None,
        cluster_key: Callable[[Fingerprint], bytes] = fingerprint_key,
        observability: Optional["Observability"] = None,
    ):
        self.coordinator = coordinator
        self.policy = policy if policy is not None else TriggerPolicy()
        self.confirm = confirm
        self.security_service = security_service
        self.cluster_key = cluster_key
        self.observability = (
            observability if observability is not None else coordinator.observability
        )
        if self.observability is not None:
            self.observability.register_autopilot(self)
        self.triggers_fired = 0
        self.learned = 0
        self.rejected = 0
        self.cancelled = 0
        self.last_trigger_at: Optional[float] = None
        self._pending: dict[bytes, LearnProposal] = {}
        self._vetoed: set[bytes] = set()
        self._learned_members: dict[str, tuple[MACAddress, ...]] = {}
        coordinator.add_disconnect_listener(self._on_disconnect)

    # ------------------------------------------------------------------ #
    # Cluster detection.
    # ------------------------------------------------------------------ #
    def clusters(self) -> dict[bytes, list]:
        """Quarantined devices grouped by fingerprint content key."""
        grouped: dict[bytes, list] = {}
        for entry in self.coordinator.quarantine.devices():
            grouped.setdefault(self.cluster_key(entry.fingerprint), []).append(entry)
        return grouped

    @property
    def pending(self) -> tuple[LearnProposal, ...]:
        """Proposals awaiting an operator decision, oldest first."""
        return tuple(self._pending.values())

    # ------------------------------------------------------------------ #
    # The trigger loop.
    # ------------------------------------------------------------------ #
    def poll(self, now: float = 0.0) -> list[AutopilotDecision]:
        """Scan the quarantine log and fire every trigger the policy allows.

        ``now`` is stream time (the gateway clock).  Returns one
        :class:`AutopilotDecision` per proposal acted on this poll:
        ``"learned"`` when ``learn_device_type`` ran (the report rides
        along), ``"pending"`` when the confirmation hook deferred,
        ``"rejected"`` when the hook vetoed the cluster.
        """
        decisions: list[AutopilotDecision] = []
        clusters = self.clusters()

        # Pending proposals whose cluster dissolved below threshold
        # (devices identified, were released, or left the network) are
        # withdrawn -- the evidence for the learn no longer exists.
        for key in list(self._pending):
            members = clusters.get(key, [])
            if len(members) < self.policy.min_cluster_size:
                del self._pending[key]
                self.cancelled += 1

        for key, members in clusters.items():
            if key in self._pending:
                continue  # already proposed, operator still deciding
            if key in self._vetoed:
                continue  # operator said no; do not re-propose the model
            if len(members) < self.policy.min_cluster_size:
                continue
            oldest = min(entry.quarantined_at for entry in members)
            if now - oldest < self.policy.min_dwell_seconds:
                continue
            if (
                self.last_trigger_at is not None
                and now - self.last_trigger_at < self.policy.cooldown_seconds
            ):
                continue  # rate limit: one trigger per cooldown window
            if len(self._pending) >= self.policy.max_pending:
                continue

            proposal = LearnProposal(
                cluster_key=key,
                label=provisional_label(key, taken=self._taken_labels()),
                macs=tuple(entry.mac for entry in members),
                fingerprints=tuple(entry.fingerprint for entry in members),
                proposed_at=now,
            )
            self.triggers_fired += 1
            self.last_trigger_at = now

            if self.confirm is None:
                report = self._execute(proposal, proposal.label, provisional=True)
                decisions.append(AutopilotDecision(proposal, "learned", report))
                continue
            label = self.confirm(proposal)
            if label is None:
                self._pending[key] = proposal
                decisions.append(AutopilotDecision(proposal, "pending"))
            elif label is False:
                self._vetoed.add(key)
                self.rejected += 1
                decisions.append(AutopilotDecision(proposal, "rejected"))
            else:
                report = self._execute(proposal, label, provisional=False)
                decisions.append(AutopilotDecision(proposal, "learned", report))
        return decisions

    def approve(self, cluster_key: bytes, label: Optional[str] = None) -> RelearnReport:
        """Operator confirmation of a pending proposal; executes the learn.

        ``label`` overrides the provisional one (the operator knows the
        real model name).  An approved label is *not* provisional: the
        security service assesses it normally.
        """
        proposal = self._pending.pop(cluster_key, None)
        if proposal is None:
            raise AutopilotError(f"no pending proposal for cluster {cluster_key.hex()[:8]}")
        return self._execute(proposal, label or proposal.label, provisional=False)

    def reject(self, cluster_key: bytes) -> LearnProposal:
        """Operator veto of a pending proposal.

        The fleet stays quarantined (an operator can still learn it
        manually through the coordinator) and the cluster key is
        remembered so the same model is not re-proposed on every poll.
        """
        proposal = self._pending.pop(cluster_key, None)
        if proposal is None:
            raise AutopilotError(f"no pending proposal for cluster {cluster_key.hex()[:8]}")
        self._vetoed.add(cluster_key)
        self.rejected += 1
        return proposal

    def promote(self, label: str) -> int:
        """Clear a provisional label after operator review.

        The security service stops capping the type's isolation, and every
        device the autopilot learned under the label is re-assessed so its
        gateway rule relaxes to the full assessed level.  Returns the
        number of devices re-enforced.
        """
        service = self._service()
        if service is not None:
            service.provisional_types.discard(label)
        sink = self.coordinator.sink
        gateway = getattr(sink, "gateway", None)
        upgraded = 0
        if gateway is not None and service is not None:
            for mac in self._learned_members.get(label, ()):
                if mac in gateway.devices:
                    gateway.apply_assessment(mac, service.assess_device_type(label))
                    upgraded += 1
        if self.observability is not None:
            self.observability.record_promotion(
                label=label,
                upgraded=upgraded,
                revision=self.coordinator.identifier.revision,
                epoch=self.coordinator.epoch.generation,
            )
        return upgraded

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _taken_labels(self) -> set[str]:
        """Labels a freshly minted provisional label must not collide with.

        Known device-types (a hash-prefix collision with an existing type
        would silently merge two models into one classifier), labels of
        proposals still awaiting an operator decision, and labels this
        autopilot has already learned.
        """
        taken = set(self.coordinator.identifier.known_device_types)
        taken.update(proposal.label for proposal in self._pending.values())
        taken.update(self._learned_members)
        return taken

    def _service(self):
        """The security service to register provisional labels with.

        Falls back to the sink's service so the below-trusted cap applies
        whether or not the autopilot was handed one explicitly.
        """
        if self.security_service is not None:
            return self.security_service
        return getattr(self.coordinator.sink, "security_service", None)

    def _execute(
        self, proposal: LearnProposal, label: str, provisional: bool
    ) -> RelearnReport:
        if provisional:
            service = self._service()
            if service is not None:
                # Registered *before* the learn: the relearn pass
                # re-assesses the fleet, and an auto-minted type must not
                # come out trusted.
                service.provisional_types.add(label)
        report = self.coordinator.learn_device_type(label, proposal.fingerprints)
        self.learned += 1
        self._learned_members[label] = proposal.macs
        return report

    def _on_disconnect(self, mac: MACAddress) -> None:
        """Shed a departed device from every pending proposal."""
        for key, proposal in list(self._pending.items()):
            if mac not in proposal.macs:
                continue
            slimmed = proposal.without(mac)
            if slimmed.cluster_size < self.policy.min_cluster_size:
                del self._pending[key]
                self.cancelled += 1
            else:
                self._pending[key] = slimmed


# --------------------------------------------------------------------- #
# Steady-state re-profiling.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReprofileReport:
    """What one :meth:`ReprofileScheduler.run` pass found."""

    examined: int
    unchanged: tuple[MACAddress, ...] = ()
    drifted: tuple[MACAddress, ...] = ()  # known type -> unknown: quarantined
    retyped: tuple[MACAddress, ...] = ()  # known type -> other known type
    still_unknown: tuple[MACAddress, ...] = ()
    deferred: int = 0  # budget exhausted; next pass picks them up
    identify_seconds: float = 0.0


class ReprofileScheduler:
    """Periodic fleet-wide re-identification with sticky enforcement off.

    ``GatewayEnforcementSink(sticky=True)`` deliberately drops post-setup
    "unknown" verdicts on identified devices -- steady-state traffic is
    not setup traffic.  The cost is blindness to *real* fingerprint drift
    (a firmware update changes the setup behaviour, Sect. VIII-B).  This
    scheduler closes the gap: every ``interval`` stream-seconds it takes
    freshly assembled fingerprints for (a budgeted batch of) the fleet,
    re-identifies them through ``identify_many``, and applies every
    verdict verbatim -- drifted devices are downgraded to strict,
    quarantined, and from there flow through the autopilot's normal
    quarantine -> learn path.

    Attributes:
        coordinator: supplies the identifier, sink and quarantine log.
        interval: stream-seconds between passes (:meth:`due` gates
            :meth:`run`; calling :meth:`run` directly forces a pass).
        batch_budget: devices re-identified per pass; the rest are
            reported as ``deferred`` and the internal cursor resumes with
            them next pass, so a large fleet is covered round-robin
            without one giant classification burst.
    """

    def __init__(
        self,
        coordinator: LifecycleCoordinator,
        interval: float = 3600.0,
        batch_budget: int = 64,
    ):
        if interval <= 0:
            raise AutopilotError(f"reprofile interval must be positive, got {interval}")
        if batch_budget <= 0:
            raise AutopilotError(f"batch_budget must be positive, got {batch_budget}")
        self.coordinator = coordinator
        self.interval = interval
        self.batch_budget = batch_budget
        self.last_run_at: Optional[float] = None
        self.passes = 0
        self._cursor = 0

    def due(self, now: float) -> bool:
        """True when a steady-state pass is owed at stream time ``now``."""
        return self.last_run_at is None or now - self.last_run_at >= self.interval

    def run(
        self,
        fleet: Sequence[tuple[MACAddress, Fingerprint]],
        now: float = 0.0,
    ) -> ReprofileReport:
        """Re-identify (a budgeted slice of) the fleet, sticky off.

        ``fleet`` pairs each MAC with a *freshly assembled* steady-state
        fingerprint (the caller owns capture; this method owns verdicts).
        Verdict handling, per device:

        * same type as the gateway record: nothing to do;
        * a different known type: the verdict is pushed through the sink
          (rule replaced in place);
        * unknown while the record carries a known type: *drift* -- the
          verdict is enforced verbatim (strict isolation) and the device
          is quarantined, entering the normal learn flow;
        * unknown and never identified: stays quarantined, no rule churn.
        """
        # Imported lazily: repro.streaming imports this package.
        from repro.streaming.dispatcher import IdentifiedDevice

        self.passes += 1
        self.last_run_at = now
        if not fleet:
            return ReprofileReport(examined=0)

        # Budgeted round-robin: resume where the previous pass stopped.
        if self._cursor >= len(fleet):
            self._cursor = 0
        window = list(fleet[self._cursor : self._cursor + self.batch_budget])
        self._cursor += len(window)
        deferred = len(fleet) - len(window)

        start = time.perf_counter()
        results = self.coordinator.identifier.identify_many(
            [fingerprint for _, fingerprint in window],
            use_discrimination=self.coordinator.use_discrimination,
        )
        identify_seconds = time.perf_counter() - start

        sink = self.coordinator.sink
        gateway = getattr(sink, "gateway", None)
        unchanged: list[MACAddress] = []
        drifted: list[MACAddress] = []
        retyped: list[MACAddress] = []
        still_unknown: list[MACAddress] = []

        was_sticky = getattr(sink, "sticky", None)
        if was_sticky:
            sink.sticky = False  # a re-profiling verdict is applied verbatim
        try:
            for (mac, fingerprint), result in zip(window, results):
                record = gateway.devices.get(mac) if gateway is not None else None
                previous = record.device_type if record is not None else None
                identified = IdentifiedDevice(
                    mac=mac,
                    fingerprint=fingerprint,
                    result=result,
                    completion_reason=REPROFILE_REASON,
                )
                if result.is_new_device_type:
                    if previous not in (None, result.device_type):
                        drifted.append(mac)
                        if sink is not None:
                            sink(identified)  # downgrade to strict + quarantine
                        if mac not in self.coordinator.quarantine:
                            # A sink without lifecycle wiring enforced the
                            # strict rule but never parked the device.
                            self.coordinator.note_identified(identified, now=now)
                    else:
                        still_unknown.append(mac)
                        # Already-parked devices keep their original entry:
                        # re-recording would swap the clustered *setup*
                        # fingerprint for this per-device steady-state one
                        # and reset the dwell clock, starving the trigger.
                        if mac not in self.coordinator.quarantine:
                            self.coordinator.note_identified(identified, now=now)
                    continue
                if previous == result.device_type:
                    unchanged.append(mac)
                    self.coordinator.note_identified(identified, now=now)
                    continue
                retyped.append(mac)
                if sink is not None:
                    sink(identified)
                # Idempotent when the sink already reported through its
                # lifecycle wiring; releases the quarantine entry otherwise.
                self.coordinator.note_identified(identified, now=now)
        finally:
            if was_sticky:
                sink.sticky = was_sticky

        return ReprofileReport(
            examined=len(window),
            unchanged=tuple(unchanged),
            drifted=tuple(drifted),
            retyped=tuple(retyped),
            still_unknown=tuple(still_unknown),
            deferred=deferred,
            identify_seconds=identify_seconds,
        )
