"""One binary Random Forest classifier per device-type.

The paper's first identification stage trains, for every known device-type
``D_i``, a classifier ``C_i`` that answers "does this fingerprint belong to
``D_i``?".  All fingerprints of ``D_i`` form the positive class; a random
subsample of ``10 x n`` fingerprints of other types forms the negative
class (to avoid imbalanced-class learning issues).  New device-types can be
added without retraining the existing classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import IdentificationError
from repro.features.fingerprint import FIXED_PACKET_COUNT, Fingerprint
from repro.identification.registry import FingerprintRegistry
from repro.ml.forest import RandomForestClassifier
from repro.ml.sampling import negative_subsample

NEGATIVE_LABEL = 0
POSITIVE_LABEL = 1


@dataclass
class DeviceTypeClassifier:
    """The binary accept/reject classifier of a single device-type."""

    device_type: str
    model: RandomForestClassifier
    positive_count: int = 0
    negative_count: int = 0

    def accepts(self, fixed_vector: np.ndarray) -> bool:
        """True when the classifier predicts the fingerprint matches its type."""
        prediction = self.model.predict(np.atleast_2d(fixed_vector))[0]
        return int(prediction) == POSITIVE_LABEL

    def acceptance_probability(self, fixed_vector: np.ndarray) -> float:
        """The forest's probability that the fingerprint matches its type."""
        probabilities = self.model.predict_proba(np.atleast_2d(fixed_vector))[0]
        classes = list(self.model.classes_)
        if POSITIVE_LABEL not in classes:
            return 0.0
        return float(probabilities[classes.index(POSITIVE_LABEL)])


@dataclass
class ClassifierBank:
    """The collection of per-device-type classifiers.

    Attributes:
        negative_ratio: negative-to-positive sample ratio (10 in the paper).
        n_estimators: trees per Random Forest.
        max_depth: optional per-tree depth limit.
        fixed_packet_count: number of packets in the fixed fingerprint F'.
        random_state: seed controlling negative subsampling and forests.
    """

    negative_ratio: float = 10.0
    n_estimators: int = 10
    max_depth: Optional[int] = None
    fixed_packet_count: int = FIXED_PACKET_COUNT
    random_state: Optional[int] = None

    _classifiers: dict[str, DeviceTypeClassifier] = field(default_factory=dict)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.random_state)

    # ------------------------------------------------------------------ #
    # Training.
    # ------------------------------------------------------------------ #
    def train_type(
        self,
        device_type: str,
        positives: Sequence[Fingerprint],
        negatives: Sequence[Fingerprint],
    ) -> DeviceTypeClassifier:
        """Train (or retrain) the classifier of one device-type.

        Only this type's classifier is touched; the paper highlights that
        adding a new device-type never requires relearning existing models.
        """
        if not positives:
            raise IdentificationError(f"no positive fingerprints for type {device_type!r}")
        if not negatives:
            raise IdentificationError(f"no negative fingerprints for type {device_type!r}")

        chosen_negative_indices = negative_subsample(
            range(len(negatives)), len(positives), ratio=self.negative_ratio, rng=self._rng
        )
        chosen_negatives = [negatives[int(index)] for index in chosen_negative_indices]

        positive_matrix = np.stack(
            [fingerprint.to_fixed_vector(self.fixed_packet_count) for fingerprint in positives]
        )
        negative_matrix = np.stack(
            [
                fingerprint.to_fixed_vector(self.fixed_packet_count)
                for fingerprint in chosen_negatives
            ]
        )
        X = np.vstack([positive_matrix, negative_matrix]).astype(np.float64)
        y = np.concatenate(
            [
                np.full(len(positive_matrix), POSITIVE_LABEL),
                np.full(len(negative_matrix), NEGATIVE_LABEL),
            ]
        )
        model = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=int(self._rng.integers(0, 2**31 - 1)),
        )
        model.fit(X, y)
        classifier = DeviceTypeClassifier(
            device_type=device_type,
            model=model,
            positive_count=len(positive_matrix),
            negative_count=len(negative_matrix),
        )
        self._classifiers[device_type] = classifier
        return classifier

    def train_from_registry(self, registry: FingerprintRegistry) -> None:
        """Train one classifier per device-type present in the registry."""
        if not registry.device_types:
            raise IdentificationError("the fingerprint registry is empty")
        for device_type in registry.device_types:
            self.train_type(
                device_type,
                registry.fingerprints_of(device_type),
                registry.fingerprints_excluding(device_type),
            )

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    @property
    def device_types(self) -> list[str]:
        return sorted(self._classifiers)

    def __len__(self) -> int:
        return len(self._classifiers)

    def __contains__(self, device_type: object) -> bool:
        return device_type in self._classifiers

    def classifier_of(self, device_type: str) -> DeviceTypeClassifier:
        if device_type not in self._classifiers:
            raise IdentificationError(f"no classifier trained for type {device_type!r}")
        return self._classifiers[device_type]

    def remove_type(self, device_type: str) -> None:
        """Drop the classifier of a device-type (e.g. a retired model)."""
        self._classifiers.pop(device_type, None)

    def matching_types(self, fingerprint: Fingerprint) -> list[str]:
        """Every device-type whose classifier accepts the fingerprint."""
        fixed = fingerprint.to_fixed_vector(self.fixed_packet_count)
        return [
            device_type
            for device_type, classifier in sorted(self._classifiers.items())
            if classifier.accepts(fixed)
        ]

    def acceptance_probabilities(self, fingerprint: Fingerprint) -> dict[str, float]:
        """Per-type acceptance probabilities (useful for diagnostics)."""
        fixed = fingerprint.to_fixed_vector(self.fixed_packet_count)
        return {
            device_type: classifier.acceptance_probability(fixed)
            for device_type, classifier in sorted(self._classifiers.items())
        }
