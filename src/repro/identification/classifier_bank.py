"""One binary Random Forest classifier per device-type.

The paper's first identification stage trains, for every known device-type
``D_i``, a classifier ``C_i`` that answers "does this fingerprint belong to
``D_i``?".  All fingerprints of ``D_i`` form the positive class; a random
subsample of ``10 x n`` fingerprints of other types forms the negative
class (to avoid imbalanced-class learning issues).  New device-types can be
added without retraining the existing classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import IdentificationError
from repro.features.fingerprint import FIXED_PACKET_COUNT, Fingerprint
from repro.identification.registry import FingerprintRegistry
from repro.ml.compiled import CompiledForest
from repro.ml.forest import RandomForestClassifier
from repro.ml.sampling import negative_subsample

NEGATIVE_LABEL = 0
POSITIVE_LABEL = 1


@dataclass
class DeviceTypeClassifier:
    """The binary accept/reject classifier of a single device-type.

    Either of ``model`` (the interpreted forest) and ``compiled`` (its
    flattened-array form) may be absent: freshly trained classifiers carry
    both, classifiers reloaded by the model store carry only the compiled
    arrays.  Predictions are identical through either path; the compiled
    one is preferred because it scores whole batches without touching
    Python node objects.
    """

    device_type: str
    model: Optional[RandomForestClassifier]
    compiled: Optional[CompiledForest] = None
    positive_count: int = 0
    negative_count: int = 0

    @property
    def scorer(self) -> Union[RandomForestClassifier, CompiledForest]:
        """The prediction backend: compiled when available, else interpreted."""
        backend = self.compiled if self.compiled is not None else self.model
        if backend is None:
            raise IdentificationError(
                f"classifier for type {self.device_type!r} has no model attached"
            )
        return backend

    def accepts(self, fixed_vector: np.ndarray) -> bool:
        """True when the classifier predicts the fingerprint matches its type."""
        prediction = self.scorer.predict(np.atleast_2d(fixed_vector))[0]
        return int(prediction) == POSITIVE_LABEL

    def acceptance_probability(self, fixed_vector: np.ndarray) -> float:
        """The forest's probability that the fingerprint matches its type."""
        scorer = self.scorer
        probabilities = scorer.predict_proba(np.atleast_2d(fixed_vector))[0]
        classes = list(scorer.classes_)
        if POSITIVE_LABEL not in classes:
            return 0.0
        return float(probabilities[classes.index(POSITIVE_LABEL)])


@dataclass(frozen=True)
class BankScores:
    """Stage-1 scores of a fingerprint batch against every classifier.

    Attributes:
        device_types: bank types, sorted; the column order of the matrices.
        positive: ``(n, n_types)`` probability that sample ``i`` belongs to
            type ``j``.
        accepted: ``(n, n_types)`` boolean accept verdicts (the same
            argmax rule the per-sample path applies: ties reject).
    """

    device_types: tuple[str, ...]
    positive: np.ndarray
    accepted: np.ndarray

    def matched_types(self, row: int) -> list[str]:
        """The accepted device-types of one sample, in sorted type order."""
        return [
            device_type
            for device_type, accepted in zip(self.device_types, self.accepted[row])
            if accepted
        ]

    def probabilities_of(self, row: int) -> dict[str, float]:
        """Per-type acceptance probabilities of one sample."""
        return {
            device_type: float(probability)
            for device_type, probability in zip(self.device_types, self.positive[row])
        }


@dataclass
class ClassifierBank:
    """The collection of per-device-type classifiers.

    Attributes:
        negative_ratio: negative-to-positive sample ratio (10 in the paper).
        n_estimators: trees per Random Forest.
        max_depth: optional per-tree depth limit.
        fixed_packet_count: number of packets in the fixed fingerprint F'.
        random_state: seed controlling negative subsampling and forests.
        n_jobs: worker processes per forest fit (see
            :class:`~repro.ml.forest.RandomForestClassifier`).
        compile_models: flatten each freshly trained forest into a
            :class:`~repro.ml.compiled.CompiledForest` so that batch
            scoring never walks Python node objects (default True).
    """

    negative_ratio: float = 10.0
    n_estimators: int = 10
    max_depth: Optional[int] = None
    fixed_packet_count: int = FIXED_PACKET_COUNT
    random_state: Optional[int] = None
    n_jobs: Optional[int] = None
    compile_models: bool = True

    _classifiers: dict[str, DeviceTypeClassifier] = field(default_factory=dict)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.random_state)

    # ------------------------------------------------------------------ #
    # Training.
    # ------------------------------------------------------------------ #
    def train_type(
        self,
        device_type: str,
        positives: Sequence[Fingerprint],
        negatives: Sequence[Fingerprint],
    ) -> DeviceTypeClassifier:
        """Train (or retrain) the classifier of one device-type.

        Only this type's classifier is touched; the paper highlights that
        adding a new device-type never requires relearning existing models.
        """
        if not positives:
            raise IdentificationError(f"no positive fingerprints for type {device_type!r}")
        if not negatives:
            raise IdentificationError(f"no negative fingerprints for type {device_type!r}")

        chosen_negative_indices = negative_subsample(
            range(len(negatives)), len(positives), ratio=self.negative_ratio, rng=self._rng
        )
        chosen_negatives = [negatives[int(index)] for index in chosen_negative_indices]

        positive_matrix = np.stack(
            [fingerprint.to_fixed_vector(self.fixed_packet_count) for fingerprint in positives]
        )
        negative_matrix = np.stack(
            [
                fingerprint.to_fixed_vector(self.fixed_packet_count)
                for fingerprint in chosen_negatives
            ]
        )
        X = np.vstack([positive_matrix, negative_matrix]).astype(np.float64)
        y = np.concatenate(
            [
                np.full(len(positive_matrix), POSITIVE_LABEL),
                np.full(len(negative_matrix), NEGATIVE_LABEL),
            ]
        )
        model = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=int(self._rng.integers(0, 2**31 - 1)),
            n_jobs=self.n_jobs,
        )
        model.fit(X, y)
        classifier = DeviceTypeClassifier(
            device_type=device_type,
            model=model,
            compiled=model.compile() if self.compile_models else None,
            positive_count=len(positive_matrix),
            negative_count=len(negative_matrix),
        )
        self._classifiers[device_type] = classifier
        return classifier

    def train_from_registry(self, registry: FingerprintRegistry) -> None:
        """Train one classifier per device-type present in the registry."""
        if not registry.device_types:
            raise IdentificationError("the fingerprint registry is empty")
        for device_type in registry.device_types:
            self.train_type(
                device_type,
                registry.fingerprints_of(device_type),
                registry.fingerprints_excluding(device_type),
            )

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    @property
    def device_types(self) -> list[str]:
        return sorted(self._classifiers)

    def __len__(self) -> int:
        return len(self._classifiers)

    def __contains__(self, device_type: object) -> bool:
        return device_type in self._classifiers

    def classifier_of(self, device_type: str) -> DeviceTypeClassifier:
        if device_type not in self._classifiers:
            raise IdentificationError(f"no classifier trained for type {device_type!r}")
        return self._classifiers[device_type]

    def remove_type(self, device_type: str) -> None:
        """Drop the classifier of a device-type (e.g. a retired model)."""
        self._classifiers.pop(device_type, None)

    # ------------------------------------------------------------------ #
    # Batch scoring.
    # ------------------------------------------------------------------ #
    def score_batch(self, fixed_matrix: np.ndarray) -> BankScores:
        """Score a ``(batch, d)`` fixed-vector matrix against every type.

        One call replaces the historical nested loop (per sample, per
        type, per tree, per node): each classifier scores the whole batch
        through its compiled forest, producing the ``(batch x types)``
        probability and accept matrices in ``n_types`` vectorized calls.
        """
        fixed_matrix = np.atleast_2d(np.asarray(fixed_matrix, dtype=np.float64))
        types = tuple(self.device_types)
        positive = np.zeros((len(fixed_matrix), len(types)), dtype=np.float64)
        accepted = np.zeros((len(fixed_matrix), len(types)), dtype=bool)
        for column, device_type in enumerate(types):
            scorer = self._classifiers[device_type].scorer
            probabilities = scorer.predict_proba(fixed_matrix)
            positions = np.nonzero(np.asarray(scorer.classes_) == POSITIVE_LABEL)[0]
            if not len(positions):
                continue
            positive_column = int(positions[0])
            positive[:, column] = probabilities[:, positive_column]
            # Same rule as the per-sample path: accepted iff argmax lands on
            # the positive class (ties resolve to the lower label = reject).
            accepted[:, column] = np.argmax(probabilities, axis=1) == positive_column
        return BankScores(device_types=types, positive=positive, accepted=accepted)

    def score_fingerprints(self, fingerprints: Sequence[Fingerprint]) -> BankScores:
        """Batch-score fingerprints (fixed vectors are built here)."""
        if not fingerprints:
            return BankScores(
                device_types=tuple(self.device_types),
                positive=np.zeros((0, len(self._classifiers))),
                accepted=np.zeros((0, len(self._classifiers)), dtype=bool),
            )
        fixed = np.stack(
            [fingerprint.to_fixed_vector(self.fixed_packet_count) for fingerprint in fingerprints]
        )
        return self.score_batch(fixed)

    def matching_types(self, fingerprint: Fingerprint) -> list[str]:
        """Every device-type whose classifier accepts the fingerprint."""
        return self.score_fingerprints([fingerprint]).matched_types(0)

    def acceptance_probabilities(self, fingerprint: Fingerprint) -> dict[str, float]:
        """Per-type acceptance probabilities (useful for diagnostics)."""
        return self.score_fingerprints([fingerprint]).probabilities_of(0)
