"""The full two-stage device-type identification pipeline."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.distance.discrimination import DissimilarityScore, EditDistanceDiscriminator
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint
from repro.identification.classifier_bank import BankScores, ClassifierBank
from repro.identification.registry import FingerprintRegistry

#: Label returned for fingerprints rejected by every per-type classifier.
UNKNOWN_DEVICE_TYPE = "unknown"


@dataclass(frozen=True)
class IdentificationResult:
    """The outcome of identifying one fingerprint.

    Attributes:
        device_type: the final predicted type, or ``"unknown"``.
        matched_types: every type whose classifier accepted the fingerprint.
        discrimination_scores: per-candidate dissimilarity scores, present
            only when the edit-distance stage ran.
        classification_seconds: wall-clock time of the classification stage.
        discrimination_seconds: wall-clock time of the discrimination stage.
        is_new_device_type: True when no classifier accepted the fingerprint.
    """

    device_type: str
    matched_types: tuple[str, ...]
    discrimination_scores: tuple[DissimilarityScore, ...] = ()
    classification_seconds: float = 0.0
    discrimination_seconds: float = 0.0

    @property
    def is_new_device_type(self) -> bool:
        return self.device_type == UNKNOWN_DEVICE_TYPE

    @property
    def needed_discrimination(self) -> bool:
        return len(self.matched_types) > 1

    @property
    def total_seconds(self) -> float:
        return self.classification_seconds + self.discrimination_seconds

    @property
    def provenance(self) -> dict[str, tuple[tuple[int, ...], Optional[int]]]:
        """Audit trail of the edit-distance stage, per candidate type.

        Maps each compared ``device_type`` to ``(reference_indices,
        selection_seed)``: exactly which reference fingerprints (indices
        into the registry's per-type list) the dissimilarity score was
        computed against, and the deterministic draw seed that selected
        them (``None`` when the whole pool was compared or the paper-style
        random mode ran).  Empty when the edit-distance stage never ran.
        """
        return {
            score.device_type: (score.reference_indices, score.selection_seed)
            for score in self.discrimination_scores
        }


@dataclass
class DeviceTypeIdentifier:
    """Identifies device-types from fingerprints (classification + discrimination).

    Typical usage::

        registry = FingerprintRegistry()
        registry.add_all(training_fingerprints)
        identifier = DeviceTypeIdentifier.train(registry, random_state=0)
        result = identifier.identify(unknown_fingerprint)

    Attributes:
        bank: the per-device-type classifier bank (stage 1).
        registry: training fingerprints, used as discrimination references.
        discriminator: the edit-distance discriminator (stage 2).
        novelty_threshold: extension to the paper -- after the winning type
            is determined, the mean normalised edit distance between the
            fingerprint and the winner's reference fingerprints must stay
            below this value, otherwise the device is reported as a new
            (unknown) device-type.  This protects against per-type
            classifiers accepting wildly out-of-distribution fingerprints.
            ``None`` disables the guard (the paper's exact behaviour).
        revision: bumped by every :meth:`add_device_type`.  Doubles as the
            *salt* of the discriminator's deterministic reference draw:
            identical fingerprints meet identical references until the
            registry actually changes, at which point every draw is
            re-randomised at once.  Any component
            caching identification results must treat a revision change as
            invalidating every cached verdict; the
            :class:`~repro.identification.lifecycle.LifecycleCoordinator`
            automates that (epoch bump + cache clears + fleet
            re-identification).
    """

    bank: ClassifierBank
    registry: FingerprintRegistry
    discriminator: EditDistanceDiscriminator = field(default_factory=EditDistanceDiscriminator)
    novelty_threshold: Optional[float] = 0.85
    revision: int = 0

    @classmethod
    def train(
        cls,
        registry: FingerprintRegistry,
        negative_ratio: float = 10.0,
        n_estimators: int = 10,
        references_per_type: int = 5,
        random_state: Optional[int] = None,
        novelty_threshold: Optional[float] = 0.85,
    ) -> "DeviceTypeIdentifier":
        """Train an identifier from a labelled fingerprint registry."""
        bank = ClassifierBank(
            negative_ratio=negative_ratio,
            n_estimators=n_estimators,
            random_state=random_state,
        )
        bank.train_from_registry(registry)
        # Deterministic reference selection: the draw is seeded per
        # fingerprint from its content hash (plus this identifier's
        # revision), so no trained-in generator state exists to seed here.
        discriminator = EditDistanceDiscriminator(references_per_type=references_per_type)
        return cls(
            bank=bank,
            registry=registry,
            discriminator=discriminator,
            novelty_threshold=novelty_threshold,
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance.
    # ------------------------------------------------------------------ #
    def add_device_type(self, device_type: str, fingerprints: Sequence[Fingerprint]) -> None:
        """Register a new device-type and train only its classifier.

        Existing classifiers are left untouched -- the scalability property
        the paper emphasises over multi-class approaches such as GTID.
        Callers holding caches of identification results must invalidate
        them (see :attr:`revision`); previously "unknown" devices should be
        re-identified against the grown bank -- the
        :class:`~repro.identification.lifecycle.LifecycleCoordinator` does
        both.
        """
        if not fingerprints:
            raise IdentificationError("a new device-type needs at least one fingerprint")
        for fingerprint in fingerprints:
            self.registry.add(fingerprint, device_type=device_type)
        self.bank.train_type(
            device_type,
            self.registry.fingerprints_of(device_type),
            self.registry.fingerprints_excluding(device_type),
        )
        self.revision += 1

    # ------------------------------------------------------------------ #
    # Identification.
    # ------------------------------------------------------------------ #
    def identify(self, fingerprint: Fingerprint, use_discrimination: bool = True) -> IdentificationResult:
        """Identify the device-type of a fingerprint.

        ``use_discrimination=False`` disables the edit-distance stage (used
        by the ablation experiment); ties are then broken by the classifier
        acceptance probability.
        """
        start = time.perf_counter()
        scores = self.bank.score_fingerprints([fingerprint])
        classification_seconds = time.perf_counter() - start
        return self._resolve(
            fingerprint, scores, 0, classification_seconds, use_discrimination
        )

    def _resolve(
        self,
        fingerprint: Fingerprint,
        scores: BankScores,
        row: int,
        classification_seconds: float,
        use_discrimination: bool,
    ) -> IdentificationResult:
        """Stages 1.5-2: turn one sample's bank scores into a verdict."""
        matched = scores.matched_types(row)

        if not matched:
            return IdentificationResult(
                device_type=UNKNOWN_DEVICE_TYPE,
                matched_types=(),
                classification_seconds=classification_seconds,
            )
        if len(matched) == 1:
            start = time.perf_counter()
            best, guard_score = self._apply_novelty_guard(fingerprint, matched[0])
            discrimination_seconds = time.perf_counter() - start
            return IdentificationResult(
                device_type=best,
                matched_types=tuple(matched),
                # The guard's score is surfaced so single-match borderline
                # verdicts carry the same audit provenance (reference
                # indices + draw seed) as multi-match ones; ablation mode
                # (use_discrimination=False) keeps the scores empty.
                discrimination_scores=(guard_score,)
                if use_discrimination and guard_score is not None
                else (),
                classification_seconds=classification_seconds,
                discrimination_seconds=discrimination_seconds,
            )

        if not use_discrimination:
            probabilities = scores.probabilities_of(row)
            best = max(matched, key=lambda device_type: probabilities[device_type])
            return IdentificationResult(
                device_type=best,
                matched_types=tuple(matched),
                classification_seconds=classification_seconds,
            )

        start = time.perf_counter()
        candidates = {
            device_type: self.registry.fingerprints_of(device_type) for device_type in matched
        }
        best, discrimination_scores = self.discriminator.discriminate(
            fingerprint, candidates, salt=self.revision
        )
        if self.novelty_threshold is not None:
            winning = discrimination_scores[0]
            if winning.comparisons and winning.score / winning.comparisons > self.novelty_threshold:
                best = UNKNOWN_DEVICE_TYPE
        discrimination_seconds = time.perf_counter() - start
        return IdentificationResult(
            device_type=best,
            matched_types=tuple(matched),
            discrimination_scores=tuple(discrimination_scores),
            classification_seconds=classification_seconds,
            discrimination_seconds=discrimination_seconds,
        )

    def _apply_novelty_guard(
        self, fingerprint: Fingerprint, device_type: str
    ) -> tuple[str, Optional[DissimilarityScore]]:
        """Reject a single-classifier match whose fingerprints look nothing alike.

        Returns the (possibly downgraded) verdict plus the guard's
        dissimilarity score for provenance (``None`` when the guard is
        disabled).  The score's reference draw is salted with
        :attr:`revision`, so a borderline single-match verdict is exactly
        as reproducible as a discriminated one.
        """
        if self.novelty_threshold is None:
            return device_type, None
        score = self.discriminator.score_type(
            fingerprint,
            device_type,
            self.registry.fingerprints_of(device_type),
            salt=self.revision,
        )
        if score.comparisons and score.score / score.comparisons > self.novelty_threshold:
            return UNKNOWN_DEVICE_TYPE, score
        return device_type, score

    def identify_many(
        self, fingerprints: Sequence[Fingerprint], use_discrimination: bool = True
    ) -> list[IdentificationResult]:
        """Identify a batch of fingerprints.

        Stage 1 scores the whole batch as one ``(batch x device-types)``
        matrix through the bank's compiled forests instead of looping
        ``identify`` per fingerprint; the edit-distance stage still runs
        per sample (it only fires on multi-match or novelty-guard cases).
        Each result's ``classification_seconds`` is the batch's stage-1
        wall-clock divided evenly across its members.
        """
        if not fingerprints:
            return []
        start = time.perf_counter()
        scores = self.bank.score_fingerprints(fingerprints)
        classification_seconds = (time.perf_counter() - start) / len(fingerprints)
        return [
            self._resolve(fingerprint, scores, row, classification_seconds, use_discrimination)
            for row, fingerprint in enumerate(fingerprints)
        ]

    @property
    def known_device_types(self) -> list[str]:
        return self.bank.device_types
