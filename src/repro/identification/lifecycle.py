"""Online-learning lifecycle: quarantine -> learn -> re-identify -> enforce.

The paper's scalability argument (Sect. IV-B, contrasted with multi-class
approaches such as GTID) is that a per-type classifier can be added at any
time without retraining the rest of the bank.  The runtime consequences of
such a registration reach far beyond the bank, though, and each consumer
of identification verdicts holds state that silently goes stale:

* the dispatcher's :class:`~repro.streaming.dispatcher.IdentificationCache`
  keeps serving verdicts computed against the *old* bank;
* devices that identified as ``"unknown"`` were quarantined under strict
  isolation by the Security Gateway and nothing ever revisits them;
* model-store bundles saved before the registration reload a bank that
  does not know the new type.

This module is the coherence layer that makes runtime type registration
atomic across all three:

* :class:`CacheEpoch` -- a shared generation counter.  Caches stamp every
  entry with the generation current at insertion time and reject entries
  from older generations on lookup, so a stale verdict is unreachable even
  if an explicit ``clear()`` was missed (crash between bank update and
  invalidation, a cache registered after the fact, ...).
* :class:`QuarantineLog` -- a bounded record of the devices whose
  fingerprints every classifier rejected, retained so they can be
  re-identified once their type is learned.
* :class:`LifecycleCoordinator` -- orchestrates
  :meth:`~LifecycleCoordinator.learn_device_type`: trains the new
  classifier through the identifier's incremental path, bumps the epoch
  and clears every registered cache, batch re-identifies the quarantined
  fleet through ``identify_many`` (compiled forests), pushes the upgraded
  verdicts through the enforcement sink so strict gateway rules are
  replaced (and WPS credentials rekeyed where the new isolation level
  warrants it), and rolls a fresh model-store snapshot stamped with the
  new epoch so a loaded bundle knows which cache generation it belongs to.

Two durability/coupling layers round the subsystem out:

* the quarantine log can be *persisted* beside the model bundle
  (:func:`save_quarantine_log` / :func:`load_quarantine_log`, or
  write-through via :attr:`LifecycleCoordinator.quarantine_path`); a
  restarted gateway rebuilds the whole lifecycle state with
  :meth:`LifecycleCoordinator.resume` and loses no pending device;
* :meth:`LifecycleCoordinator.note_disconnected` couples gateway-side
  device departure (explicit disconnect, idle rule eviction) into the
  lifecycle so departed devices are neither re-identified nor counted
  toward the autopilot's learning clusters
  (:mod:`repro.identification.autopilot` drives the triggers).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.exceptions import LifecycleError

# fingerprint_key is canonically defined in repro.features.fingerprint (the
# discrimination stage seeds its deterministic reference draw from it, and
# repro.distance must not import repro.identification); it is re-exported
# here under its historical lifecycle-layer name for the dispatcher cache
# and the autopilot's cluster detection.
from repro.features.fingerprint import Fingerprint
from repro.features.fingerprint import fingerprint_key as fingerprint_key
from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.model_store import (
    load_identifier,
    load_identifier_with_epoch,
    load_quarantine_records,
    save_identifier,
    save_quarantine_records,
)
from repro.net.addresses import MACAddress
from repro.obs.evidence import (
    QUARANTINE_DISCARDED,
    QUARANTINE_RECORDED,
    QUARANTINE_RELEASED,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.obs.hub import Observability
    from repro.streaming.dispatcher import IdentificationCache, IdentifiedDevice

#: ``completion_reason`` carried by verdicts produced by fleet
#: re-identification (vs. ``"budget"``/``"idle"``/``"flush"`` from the
#: streaming assembler).
RELEARN_REASON = "relearn"


class CacheEpoch:
    """A monotonic generation counter shared by verdict caches.

    Every cache entry is stamped with the generation current when it was
    written; a lookup that finds an entry from an older generation treats
    it as a miss and evicts it.  Bumping the epoch therefore invalidates
    every sharing cache *atomically*, without enumerating them -- the
    belt to ``clear()``'s braces.

    Example:
        >>> epoch = CacheEpoch()
        >>> epoch.bump()
        1
        >>> epoch.generation, epoch.invalidations
        (1, 1)
    """

    __slots__ = ("generation", "invalidations")

    def __init__(self, generation: int = 0):
        if generation < 0:
            raise LifecycleError(f"epoch generation cannot be negative, got {generation}")
        self.generation = generation
        self.invalidations = 0

    def bump(self) -> int:
        """Invalidate every entry stamped with the current generation."""
        self.generation += 1
        self.invalidations += 1
        return self.generation

    def advance_to(self, generation: int) -> int:
        """Jump forward to an externally assigned generation (fleet push).

        A pushed model bundle arrives stamped with the epoch watermark the
        trainer assigned; the receiving gateway adopts that generation
        instead of minting its own, so every member of the fleet reports
        the *same* number for the same model.  Advancing counts as one
        invalidation (all current cache entries become unreachable);
        advancing to the current generation is a no-op; moving backwards
        is refused -- a rollback re-publishes the old bundle under a
        *fresh, higher* watermark (see ``FleetCoordinator.rollback``).
        """
        if generation < self.generation:
            raise LifecycleError(
                f"cannot move epoch backwards (at {self.generation}, "
                f"asked for {generation}); rollbacks re-stamp the bundle "
                "under a fresh higher epoch"
            )
        if generation > self.generation:
            self.generation = generation
            self.invalidations += 1
        return self.generation

    def __repr__(self) -> str:
        return f"CacheEpoch(generation={self.generation})"


@dataclass(frozen=True)
class QuarantinedDevice:
    """One device parked under strict isolation awaiting a learnable type."""

    mac: MACAddress
    fingerprint: Fingerprint
    quarantined_at: float = 0.0
    completion_reason: str = ""


class QuarantineLog:
    """A bounded log of devices whose fingerprints matched no classifier.

    The gateway pins such devices to strict isolation; this log retains
    their fingerprints so that, once the missing device-type is learned,
    the fleet can be re-identified and its rules upgraded without
    re-onboarding anything.  Insertion order is retained; exceeding
    ``capacity`` evicts the oldest entry (a device quarantined long ago is
    the least likely to still be connected).

    Example:
        >>> import numpy as np
        >>> from repro.features.fingerprint import Fingerprint, FEATURE_COUNT
        >>> from repro.net.addresses import MACAddress
        >>> log = QuarantineLog(capacity=8)
        >>> mac = MACAddress.from_string("02:00:00:00:00:01")
        >>> entry = log.record(
        ...     mac,
        ...     Fingerprint(vectors=np.zeros((1, FEATURE_COUNT))),
        ...     now=4.0,
        ...     completion_reason="idle",
        ... )
        >>> mac in log, len(log)
        (True, 1)
        >>> log.discard(mac)  # the device identified, or left the network
        True
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise LifecycleError(f"quarantine capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self.evicted = 0
        self.released = 0
        self._devices: OrderedDict[MACAddress, QuarantinedDevice] = OrderedDict()

    def record(
        self,
        mac: MACAddress,
        fingerprint: Fingerprint,
        now: float = 0.0,
        completion_reason: str = "",
    ) -> QuarantinedDevice:
        """Park a device; a repeat sighting replaces the stored fingerprint."""
        entry = QuarantinedDevice(
            mac=mac,
            fingerprint=fingerprint,
            quarantined_at=now,
            completion_reason=completion_reason,
        )
        self._devices[mac] = entry
        self._devices.move_to_end(mac)
        self.recorded += 1
        while len(self._devices) > self.capacity:
            self._devices.popitem(last=False)
            self.evicted += 1
        return entry

    def discard(self, mac: MACAddress) -> bool:
        """Release a device (it identified, or left the network)."""
        present = self._devices.pop(mac, None) is not None
        if present:
            self.released += 1
        return present

    def devices(self) -> list[QuarantinedDevice]:
        """Snapshot of the quarantined fleet, oldest first."""
        return list(self._devices.values())

    def macs(self) -> list[MACAddress]:
        return list(self._devices)

    def __contains__(self, mac: object) -> bool:
        return mac in self._devices

    def __len__(self) -> int:
        return len(self._devices)


def save_quarantine_log(
    path: Union[str, Path], log: QuarantineLog, epoch: Optional[int] = None
) -> Path:
    """Persist a quarantine log beside the model bundle.

    The bundle is schema-versioned, SHA-256-checksummed, epoch-stamped and
    written atomically (write-then-rename), so a gateway that dies
    mid-save keeps its last good log.  A restarted gateway reloads it with
    :func:`load_quarantine_log` and resumes pending re-identifications
    with no lost devices.
    """
    records = [
        {
            "mac": entry.mac.value,
            "vectors": entry.fingerprint.vectors,
            "quarantined_at": entry.quarantined_at,
            "completion_reason": entry.completion_reason,
        }
        for entry in log.devices()
    ]
    counters = {
        "recorded": log.recorded,
        "evicted": log.evicted,
        "released": log.released,
    }
    return save_quarantine_records(
        path, records, capacity=log.capacity, epoch=epoch, counters=counters
    )


def load_quarantine_log(
    path: Union[str, Path], expected_epoch: Optional[int] = None
) -> QuarantineLog:
    """Reload a quarantine log persisted by :func:`save_quarantine_log`.

    ``expected_epoch`` (when given) must equal the epoch recorded in the
    bundle: a log saved before the latest type registration references a
    fleet that was already re-identified (or still lists devices a newer
    runtime has released), so version skew is rejected with
    :class:`~repro.exceptions.ModelStoreError` rather than resumed.
    Insertion order and the log's lifetime counters are restored exactly.
    """
    meta, records = load_quarantine_records(path, expected_epoch=expected_epoch)
    log = QuarantineLog(capacity=meta["capacity"])
    for record in records:
        log.record(
            MACAddress(record["mac"]),
            Fingerprint(vectors=record["vectors"]),
            now=record["quarantined_at"],
            completion_reason=record["completion_reason"],
        )
    # record() above counted the restorations; overwrite with the saved
    # lifetime counters so persistence is invisible to the accounting.
    counters = meta.get("counters", {})
    log.recorded = counters.get("recorded", log.recorded)
    log.evicted = counters.get("evicted", log.evicted)
    log.released = counters.get("released", log.released)
    return log


@dataclass(frozen=True)
class RelearnReport:
    """What one :meth:`LifecycleCoordinator.learn_device_type` call did."""

    device_type: str
    generation: int
    quarantined: int
    upgraded: tuple[MACAddress, ...] = ()
    still_unknown: tuple[MACAddress, ...] = ()
    identify_seconds: float = 0.0
    snapshot_path: Optional[Path] = None

    @property
    def devices_per_second(self) -> float:
        """Fleet re-identification throughput of this relearn."""
        return self.quarantined / self.identify_seconds if self.identify_seconds else 0.0


@dataclass
class LifecycleCoordinator:
    """Coordinates runtime type registration across every verdict consumer.

    Attributes:
        identifier: the live two-stage identifier whose bank grows.
        quarantine: the unknown-device log fed by :meth:`note_identified`.
        sink: per-device verdict consumer, typically a
            :class:`~repro.streaming.pipeline.GatewayEnforcementSink`;
            upgraded verdicts of the re-identified fleet are pushed through
            it so enforcement rules are replaced in place.
        epoch: the shared cache generation counter.  Caches created through
            :meth:`make_cache` share it; independently created caches can
            pass it as ``IdentificationCache(epoch=coordinator.epoch)``.
        store_path: when set, :meth:`learn_device_type` rolls a fresh
            model-store snapshot here after every registration.
        quarantine_path: when set, the quarantine log is persisted here
            (epoch-stamped, beside the model bundle) after every change --
            a restarted gateway resumes pending re-identifications via
            :meth:`resume` with no lost devices.
        use_discrimination: forwarded to ``identify_many`` during fleet
            re-identification.
        observability: optional hub; when attached, every quarantine
            transition and type registration lands in the evidence ledger
            and the coordinator's counters become snapshot sources.
    """

    identifier: DeviceTypeIdentifier
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    sink: Optional[Callable[["IdentifiedDevice"], None]] = None
    epoch: CacheEpoch = field(default_factory=CacheEpoch)
    store_path: Optional[Union[str, Path]] = None
    quarantine_path: Optional[Union[str, Path]] = None
    use_discrimination: bool = True
    observability: Optional["Observability"] = None
    relearns: int = 0
    disconnects: int = 0
    _caches: list = field(default_factory=list, repr=False)
    _disconnect_listeners: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.observability is not None:
            self.observability.register_lifecycle(self)

    def _record_quarantine_transition(
        self,
        mac: MACAddress,
        transition: str,
        now: float = 0.0,
        fingerprint: Optional[Fingerprint] = None,
        completion_reason: str = "",
    ) -> None:
        if self.observability is None:
            return
        self.observability.record_quarantine(
            mac=str(mac),
            transition=transition,
            revision=self.identifier.revision,
            epoch=self.epoch.generation,
            stream_time=now,
            fingerprint_key_hex=fingerprint_key(fingerprint).hex()
            if fingerprint is not None
            else None,
            completion_reason=completion_reason,
        )

    # ------------------------------------------------------------------ #
    # Cache registration.
    # ------------------------------------------------------------------ #
    def register_cache(self, cache) -> None:
        """Register a verdict cache to be cleared on every registration.

        Anything with a ``clear()`` method qualifies.  Caches that also
        share :attr:`epoch` get the stronger guarantee: their stale entries
        are rejected at lookup time even if this clear never reaches them.
        """
        if not callable(getattr(cache, "clear", None)):
            raise LifecycleError("a registered cache must expose a clear() method")
        # Dedup by identity: two distinct caches may compare equal by
        # value (dataclasses, plain dicts) yet both need clearing.
        if not any(existing is cache for existing in self._caches):
            self._caches.append(cache)

    def make_cache(self, capacity: int = 512) -> "IdentificationCache":
        """A registered :class:`IdentificationCache` bound to this epoch."""
        # Imported lazily: repro.streaming imports this module for
        # CacheEpoch, so a module-level import here would be circular.
        from repro.streaming.dispatcher import IdentificationCache

        cache = IdentificationCache(capacity=capacity, epoch=self.epoch)
        self.register_cache(cache)
        return cache

    @property
    def registered_caches(self) -> tuple:
        return tuple(self._caches)

    # ------------------------------------------------------------------ #
    # Streaming-side hook.
    # ------------------------------------------------------------------ #
    def note_identified(self, identified: "IdentifiedDevice", now: float = 0.0) -> bool:
        """Track one verdict leaving the pipeline; True when quarantined.

        Unknown verdicts park the device in the quarantine log (the
        gateway has pinned it to strict isolation); a successful
        identification releases any earlier quarantine entry for the MAC.
        """
        if identified.result.is_new_device_type:
            self.quarantine.record(
                identified.mac,
                identified.fingerprint,
                now=now,
                completion_reason=identified.completion_reason,
            )
            self._record_quarantine_transition(
                identified.mac,
                QUARANTINE_RECORDED,
                now=now,
                fingerprint=identified.fingerprint,
                completion_reason=identified.completion_reason,
            )
            self._persist_quarantine()
            return True
        if self.quarantine.discard(identified.mac):
            self._record_quarantine_transition(
                identified.mac, QUARANTINE_RELEASED, now=now
            )
            self._persist_quarantine()
        return False

    def note_disconnected(self, mac: MACAddress) -> bool:
        """A device left the network; stop re-identifying it.

        Called by :meth:`SecurityGateway.disconnect_device
        <repro.gateway.security_gateway.SecurityGateway.disconnect_device>`
        (and by the rule cache's idle-eviction path) on a gateway wired
        through ``attach_lifecycle``.  The device's quarantine entry is
        dropped -- a departed device must not be re-identified, enforced
        or counted toward an autopilot learning cluster -- and every
        registered disconnect listener (e.g. a
        :class:`~repro.identification.autopilot.LifecycleAutopilot`) is
        told so pending proposals shed the MAC too.  Returns True when a
        quarantine entry existed.
        """
        self.disconnects += 1
        present = self.quarantine.discard(mac)
        if present:
            self._record_quarantine_transition(mac, QUARANTINE_DISCARDED)
            self._persist_quarantine()
        for listener in self._disconnect_listeners:
            listener(mac)
        return present

    def add_disconnect_listener(self, listener: Callable[[MACAddress], None]) -> None:
        """Register a callable invoked with the MAC of every disconnect."""
        if not callable(listener):
            raise LifecycleError("a disconnect listener must be callable")
        if not any(existing is listener for existing in self._disconnect_listeners):
            self._disconnect_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # The coherent registration path.
    # ------------------------------------------------------------------ #
    def learn_device_type(
        self,
        device_type: str,
        fingerprints: Sequence[Fingerprint],
        snapshot: bool = True,
    ) -> RelearnReport:
        """Register a device-type and restore coherence everywhere.

        In order: train the new per-type classifier through the
        identifier's incremental path, bump the cache epoch and clear
        every registered cache, batch re-identify the quarantined fleet,
        push each upgraded verdict through the sink (replacing the
        device's strict rule with its assessed isolation level), and --
        when :attr:`store_path` is set and ``snapshot`` is True -- roll a
        model-store snapshot stamped with the new epoch.

        Devices the grown bank still rejects remain quarantined for the
        next registration.

        Reproducibility: the registration bumps the identifier
        ``revision``, which salts the discrimination stage's
        deterministic reference draw.  The fleet re-identification is
        therefore *bit-reproducible* -- two gateways that learn the same
        type over the same bundle produce identical upgraded/still-unknown
        partitions, regardless of their prior traffic histories.
        """
        self.identifier.add_device_type(device_type, fingerprints)
        generation = self.epoch.bump()
        for cache in self._caches:
            cache.clear()

        fleet = self.quarantine.devices()
        upgraded: list[MACAddress] = []
        still_unknown: list[MACAddress] = []
        identify_seconds = 0.0
        if fleet:
            from repro.streaming.dispatcher import IdentifiedDevice  # import cycle guard

            start = time.perf_counter()
            results = self.identifier.identify_many(
                [entry.fingerprint for entry in fleet],
                use_discrimination=self.use_discrimination,
            )
            identify_seconds = time.perf_counter() - start
            for entry, result in zip(fleet, results):
                if result.is_new_device_type:
                    still_unknown.append(entry.mac)
                    continue
                if self.sink is not None:
                    self.sink(
                        IdentifiedDevice(
                            mac=entry.mac,
                            fingerprint=entry.fingerprint,
                            result=result,
                            completion_reason=RELEARN_REASON,
                        )
                    )
                # Released only after enforcement succeeded: if the sink
                # raises, the device stays quarantined and a retry can
                # still reach it (discard is idempotent -- a lifecycle-
                # wired sink has already released the MAC by now).
                self.quarantine.discard(entry.mac)
                upgraded.append(entry.mac)

        snapshot_path = None
        if snapshot and self.store_path is not None:
            snapshot_path = self.save_snapshot()
        self._persist_quarantine()
        self.relearns += 1
        report = RelearnReport(
            device_type=device_type,
            generation=generation,
            quarantined=len(fleet),
            upgraded=tuple(upgraded),
            still_unknown=tuple(still_unknown),
            identify_seconds=identify_seconds,
            snapshot_path=snapshot_path,
        )
        if self.observability is not None:
            self.observability.record_learn(report, revision=self.identifier.revision)
        return report

    # ------------------------------------------------------------------ #
    # Fleet-push adoption.
    # ------------------------------------------------------------------ #
    def adopt_epoch(self, generation: int) -> int:
        """Advance to a pushed bundle's epoch watermark and invalidate.

        The fleet counterpart of the bump inside
        :meth:`learn_device_type`: the generation is *assigned* by the
        trainer that stamped the bundle rather than minted locally, so
        every gateway that applies the same push converges on the same
        number.  Every registered cache is cleared (belt) on top of the
        epoch advance (braces), and the quarantine log is re-persisted
        under the new stamp so a restart resumes at the adopted epoch.
        """
        generation = self.epoch.advance_to(generation)
        for cache in self._caches:
            cache.clear()
        self._persist_quarantine()
        return generation

    def adopt_identifier(
        self, identifier: DeviceTypeIdentifier, generation: int
    ) -> DeviceTypeIdentifier:
        """Install a pushed model and restore coherence (hot swap path).

        Replaces the coordinator's identifier reference and adopts the
        bundle's epoch watermark.  The caller (normally
        :meth:`repro.api.GatewayHandle.swap_bundle`) is responsible for
        swapping the same identifier into the dispatcher and the security
        service -- the coordinator cannot reach objects that merely point
        at the old identifier.  Returns the replaced identifier.
        """
        previous = self.identifier
        self.identifier = identifier
        self.adopt_epoch(generation)
        return previous

    # ------------------------------------------------------------------ #
    # Epoch-aware persistence.
    # ------------------------------------------------------------------ #
    def save_snapshot(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the identifier, stamping the bundle with the epoch."""
        target = path if path is not None else self.store_path
        if target is None:
            raise LifecycleError("no snapshot path: pass one or set store_path")
        return save_identifier(target, self.identifier, epoch=self.epoch.generation)

    def load_snapshot(self, path: Optional[Union[str, Path]] = None) -> DeviceTypeIdentifier:
        """Reload a snapshot, rejecting bundles from a different epoch.

        A bundle saved before the latest registration reloads a bank that
        does not know the newest type (and would quietly re-introduce the
        stale-verdict bug this subsystem exists to fix); a bundle from a
        *later* epoch belongs to a runtime that has learned types this
        coordinator has not seen.  Both raise
        :class:`~repro.exceptions.ModelStoreError`.
        """
        target = path if path is not None else self.store_path
        if target is None:
            raise LifecycleError("no snapshot path: pass one or set store_path")
        return load_identifier(target, expected_epoch=self.epoch.generation)

    # ------------------------------------------------------------------ #
    # Durable quarantine.
    # ------------------------------------------------------------------ #
    def save_quarantine(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the quarantine log, stamped with the current epoch."""
        target = path if path is not None else self.quarantine_path
        if target is None:
            raise LifecycleError("no quarantine path: pass one or set quarantine_path")
        return save_quarantine_log(target, self.quarantine, epoch=self.epoch.generation)

    def load_quarantine(self, path: Optional[Union[str, Path]] = None) -> QuarantineLog:
        """Replace the in-memory quarantine log with a persisted one.

        The bundle must carry this coordinator's epoch: a log from another
        generation describes a fleet the runtime has already re-identified
        (or not yet quarantined) and is rejected as version skew.
        """
        target = path if path is not None else self.quarantine_path
        if target is None:
            raise LifecycleError("no quarantine path: pass one or set quarantine_path")
        self.quarantine = load_quarantine_log(target, expected_epoch=self.epoch.generation)
        return self.quarantine

    def _persist_quarantine(self) -> None:
        """Write-through of the quarantine log when a path is configured."""
        if self.quarantine_path is not None:
            save_quarantine_log(
                self.quarantine_path, self.quarantine, epoch=self.epoch.generation
            )

    @classmethod
    def resume(
        cls,
        store_path: Union[str, Path],
        quarantine_path: Optional[Union[str, Path]] = None,
        sink: Optional[Callable[["IdentifiedDevice"], None]] = None,
        use_discrimination: bool = True,
    ) -> "LifecycleCoordinator":
        """Rebuild a coordinator from persisted state after a restart.

        Loads the model bundle, adopts the cache epoch it was stamped with
        (so caches created through :meth:`make_cache` start at the right
        generation), and -- when ``quarantine_path`` names an existing
        file -- restores the quarantine log, rejecting one whose epoch
        disagrees with the bundle's.  The restarted gateway therefore
        resumes pending re-identifications exactly where the previous
        process stopped.
        """
        identifier, recorded_epoch = load_identifier_with_epoch(store_path)
        generation = recorded_epoch or 0
        coordinator = cls(
            identifier=identifier,
            epoch=CacheEpoch(generation),
            store_path=store_path,
            quarantine_path=quarantine_path,
            sink=sink,
            use_discrimination=use_discrimination,
        )
        if quarantine_path is not None and Path(quarantine_path).exists():
            coordinator.load_quarantine()
        return coordinator
