"""Online-learning lifecycle: quarantine -> learn -> re-identify -> enforce.

The paper's scalability argument (Sect. IV-B, contrasted with multi-class
approaches such as GTID) is that a per-type classifier can be added at any
time without retraining the rest of the bank.  The runtime consequences of
such a registration reach far beyond the bank, though, and each consumer
of identification verdicts holds state that silently goes stale:

* the dispatcher's :class:`~repro.streaming.dispatcher.IdentificationCache`
  keeps serving verdicts computed against the *old* bank;
* devices that identified as ``"unknown"`` were quarantined under strict
  isolation by the Security Gateway and nothing ever revisits them;
* model-store bundles saved before the registration reload a bank that
  does not know the new type.

This module is the coherence layer that makes runtime type registration
atomic across all three:

* :class:`CacheEpoch` -- a shared generation counter.  Caches stamp every
  entry with the generation current at insertion time and reject entries
  from older generations on lookup, so a stale verdict is unreachable even
  if an explicit ``clear()`` was missed (crash between bank update and
  invalidation, a cache registered after the fact, ...).
* :class:`QuarantineLog` -- a bounded record of the devices whose
  fingerprints every classifier rejected, retained so they can be
  re-identified once their type is learned.
* :class:`LifecycleCoordinator` -- orchestrates
  :meth:`~LifecycleCoordinator.learn_device_type`: trains the new
  classifier through the identifier's incremental path, bumps the epoch
  and clears every registered cache, batch re-identifies the quarantined
  fleet through ``identify_many`` (compiled forests), pushes the upgraded
  verdicts through the enforcement sink so strict gateway rules are
  replaced (and WPS credentials rekeyed where the new isolation level
  warrants it), and rolls a fresh model-store snapshot stamped with the
  new epoch so a loaded bundle knows which cache generation it belongs to.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.exceptions import LifecycleError
from repro.features.fingerprint import Fingerprint
from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.model_store import load_identifier, save_identifier
from repro.net.addresses import MACAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.streaming.dispatcher import IdentificationCache, IdentifiedDevice

#: ``completion_reason`` carried by verdicts produced by fleet
#: re-identification (vs. ``"budget"``/``"idle"``/``"flush"`` from the
#: streaming assembler).
RELEARN_REASON = "relearn"


class CacheEpoch:
    """A monotonic generation counter shared by verdict caches.

    Every cache entry is stamped with the generation current when it was
    written; a lookup that finds an entry from an older generation treats
    it as a miss and evicts it.  Bumping the epoch therefore invalidates
    every sharing cache *atomically*, without enumerating them -- the
    belt to ``clear()``'s braces.
    """

    __slots__ = ("generation", "invalidations")

    def __init__(self, generation: int = 0):
        if generation < 0:
            raise LifecycleError(f"epoch generation cannot be negative, got {generation}")
        self.generation = generation
        self.invalidations = 0

    def bump(self) -> int:
        """Invalidate every entry stamped with the current generation."""
        self.generation += 1
        self.invalidations += 1
        return self.generation

    def __repr__(self) -> str:
        return f"CacheEpoch(generation={self.generation})"


@dataclass(frozen=True)
class QuarantinedDevice:
    """One device parked under strict isolation awaiting a learnable type."""

    mac: MACAddress
    fingerprint: Fingerprint
    quarantined_at: float = 0.0
    completion_reason: str = ""


class QuarantineLog:
    """A bounded log of devices whose fingerprints matched no classifier.

    The gateway pins such devices to strict isolation; this log retains
    their fingerprints so that, once the missing device-type is learned,
    the fleet can be re-identified and its rules upgraded without
    re-onboarding anything.  Insertion order is retained; exceeding
    ``capacity`` evicts the oldest entry (a device quarantined long ago is
    the least likely to still be connected).
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise LifecycleError(f"quarantine capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self.evicted = 0
        self.released = 0
        self._devices: OrderedDict[MACAddress, QuarantinedDevice] = OrderedDict()

    def record(
        self,
        mac: MACAddress,
        fingerprint: Fingerprint,
        now: float = 0.0,
        completion_reason: str = "",
    ) -> QuarantinedDevice:
        """Park a device; a repeat sighting replaces the stored fingerprint."""
        entry = QuarantinedDevice(
            mac=mac,
            fingerprint=fingerprint,
            quarantined_at=now,
            completion_reason=completion_reason,
        )
        self._devices[mac] = entry
        self._devices.move_to_end(mac)
        self.recorded += 1
        while len(self._devices) > self.capacity:
            self._devices.popitem(last=False)
            self.evicted += 1
        return entry

    def discard(self, mac: MACAddress) -> bool:
        """Release a device (it identified, or left the network)."""
        present = self._devices.pop(mac, None) is not None
        if present:
            self.released += 1
        return present

    def devices(self) -> list[QuarantinedDevice]:
        """Snapshot of the quarantined fleet, oldest first."""
        return list(self._devices.values())

    def macs(self) -> list[MACAddress]:
        return list(self._devices)

    def __contains__(self, mac: object) -> bool:
        return mac in self._devices

    def __len__(self) -> int:
        return len(self._devices)


@dataclass(frozen=True)
class RelearnReport:
    """What one :meth:`LifecycleCoordinator.learn_device_type` call did."""

    device_type: str
    generation: int
    quarantined: int
    upgraded: tuple[MACAddress, ...] = ()
    still_unknown: tuple[MACAddress, ...] = ()
    identify_seconds: float = 0.0
    snapshot_path: Optional[Path] = None

    @property
    def devices_per_second(self) -> float:
        """Fleet re-identification throughput of this relearn."""
        return self.quarantined / self.identify_seconds if self.identify_seconds else 0.0


@dataclass
class LifecycleCoordinator:
    """Coordinates runtime type registration across every verdict consumer.

    Attributes:
        identifier: the live two-stage identifier whose bank grows.
        quarantine: the unknown-device log fed by :meth:`note_identified`.
        sink: per-device verdict consumer, typically a
            :class:`~repro.streaming.pipeline.GatewayEnforcementSink`;
            upgraded verdicts of the re-identified fleet are pushed through
            it so enforcement rules are replaced in place.
        epoch: the shared cache generation counter.  Caches created through
            :meth:`make_cache` share it; independently created caches can
            pass it as ``IdentificationCache(epoch=coordinator.epoch)``.
        store_path: when set, :meth:`learn_device_type` rolls a fresh
            model-store snapshot here after every registration.
        use_discrimination: forwarded to ``identify_many`` during fleet
            re-identification.
    """

    identifier: DeviceTypeIdentifier
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    sink: Optional[Callable[["IdentifiedDevice"], None]] = None
    epoch: CacheEpoch = field(default_factory=CacheEpoch)
    store_path: Optional[Union[str, Path]] = None
    use_discrimination: bool = True
    relearns: int = 0
    _caches: list = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ #
    # Cache registration.
    # ------------------------------------------------------------------ #
    def register_cache(self, cache) -> None:
        """Register a verdict cache to be cleared on every registration.

        Anything with a ``clear()`` method qualifies.  Caches that also
        share :attr:`epoch` get the stronger guarantee: their stale entries
        are rejected at lookup time even if this clear never reaches them.
        """
        if not callable(getattr(cache, "clear", None)):
            raise LifecycleError("a registered cache must expose a clear() method")
        # Dedup by identity: two distinct caches may compare equal by
        # value (dataclasses, plain dicts) yet both need clearing.
        if not any(existing is cache for existing in self._caches):
            self._caches.append(cache)

    def make_cache(self, capacity: int = 512) -> "IdentificationCache":
        """A registered :class:`IdentificationCache` bound to this epoch."""
        # Imported lazily: repro.streaming imports this module for
        # CacheEpoch, so a module-level import here would be circular.
        from repro.streaming.dispatcher import IdentificationCache

        cache = IdentificationCache(capacity=capacity, epoch=self.epoch)
        self.register_cache(cache)
        return cache

    @property
    def registered_caches(self) -> tuple:
        return tuple(self._caches)

    # ------------------------------------------------------------------ #
    # Streaming-side hook.
    # ------------------------------------------------------------------ #
    def note_identified(self, identified: "IdentifiedDevice", now: float = 0.0) -> bool:
        """Track one verdict leaving the pipeline; True when quarantined.

        Unknown verdicts park the device in the quarantine log (the
        gateway has pinned it to strict isolation); a successful
        identification releases any earlier quarantine entry for the MAC.
        """
        if identified.result.is_new_device_type:
            self.quarantine.record(
                identified.mac,
                identified.fingerprint,
                now=now,
                completion_reason=identified.completion_reason,
            )
            return True
        self.quarantine.discard(identified.mac)
        return False

    # ------------------------------------------------------------------ #
    # The coherent registration path.
    # ------------------------------------------------------------------ #
    def learn_device_type(
        self,
        device_type: str,
        fingerprints: Sequence[Fingerprint],
        snapshot: bool = True,
    ) -> RelearnReport:
        """Register a device-type and restore coherence everywhere.

        In order: train the new per-type classifier through the
        identifier's incremental path, bump the cache epoch and clear
        every registered cache, batch re-identify the quarantined fleet,
        push each upgraded verdict through the sink (replacing the
        device's strict rule with its assessed isolation level), and --
        when :attr:`store_path` is set and ``snapshot`` is True -- roll a
        model-store snapshot stamped with the new epoch.

        Devices the grown bank still rejects remain quarantined for the
        next registration.
        """
        self.identifier.add_device_type(device_type, fingerprints)
        generation = self.epoch.bump()
        for cache in self._caches:
            cache.clear()

        fleet = self.quarantine.devices()
        upgraded: list[MACAddress] = []
        still_unknown: list[MACAddress] = []
        identify_seconds = 0.0
        if fleet:
            from repro.streaming.dispatcher import IdentifiedDevice  # import cycle guard

            start = time.perf_counter()
            results = self.identifier.identify_many(
                [entry.fingerprint for entry in fleet],
                use_discrimination=self.use_discrimination,
            )
            identify_seconds = time.perf_counter() - start
            for entry, result in zip(fleet, results):
                if result.is_new_device_type:
                    still_unknown.append(entry.mac)
                    continue
                if self.sink is not None:
                    self.sink(
                        IdentifiedDevice(
                            mac=entry.mac,
                            fingerprint=entry.fingerprint,
                            result=result,
                            completion_reason=RELEARN_REASON,
                        )
                    )
                # Released only after enforcement succeeded: if the sink
                # raises, the device stays quarantined and a retry can
                # still reach it (discard is idempotent -- a lifecycle-
                # wired sink has already released the MAC by now).
                self.quarantine.discard(entry.mac)
                upgraded.append(entry.mac)

        snapshot_path = None
        if snapshot and self.store_path is not None:
            snapshot_path = self.save_snapshot()
        self.relearns += 1
        return RelearnReport(
            device_type=device_type,
            generation=generation,
            quarantined=len(fleet),
            upgraded=tuple(upgraded),
            still_unknown=tuple(still_unknown),
            identify_seconds=identify_seconds,
            snapshot_path=snapshot_path,
        )

    # ------------------------------------------------------------------ #
    # Epoch-aware persistence.
    # ------------------------------------------------------------------ #
    def save_snapshot(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the identifier, stamping the bundle with the epoch."""
        target = path if path is not None else self.store_path
        if target is None:
            raise LifecycleError("no snapshot path: pass one or set store_path")
        return save_identifier(target, self.identifier, epoch=self.epoch.generation)

    def load_snapshot(self, path: Optional[Union[str, Path]] = None) -> DeviceTypeIdentifier:
        """Reload a snapshot, rejecting bundles from a different epoch.

        A bundle saved before the latest registration reloads a bank that
        does not know the newest type (and would quietly re-introduce the
        stale-verdict bug this subsystem exists to fix); a bundle from a
        *later* epoch belongs to a runtime that has learned types this
        coordinator has not seen.  Both raise
        :class:`~repro.exceptions.ModelStoreError`.
        """
        target = path if path is not None else self.store_path
        if target is None:
            raise LifecycleError("no snapshot path: pass one or set store_path")
        return load_identifier(target, expected_epoch=self.epoch.generation)
