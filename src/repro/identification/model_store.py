"""Persistent model store: train once, serve from any process.

Serialises a whole trained identification stack -- the
:class:`~repro.identification.classifier_bank.ClassifierBank` (as compiled
forests, see :mod:`repro.ml.compiled`), the
:class:`~repro.identification.registry.FingerprintRegistry` the
discrimination stage reads its references from, and the discriminator /
novelty configuration -- into a single ``.npz`` bundle.  A gateway can
therefore train in the lab, ship the bundle, and serve identifications
without ever re-fitting a forest.

Bundle layout (one zip archive written by :func:`numpy.savez_compressed`):

* ``meta`` -- a UTF-8 JSON document (stored as a ``uint8`` array) holding
  the magic string, the schema version, bank/discriminator configuration,
  per-classifier metadata, per-fingerprint registry metadata and a SHA-256
  checksum over every data array;
* ``bank{i}_*`` -- the packed compiled forest of the ``i``-th device-type
  (see :meth:`~repro.ml.compiled.CompiledForest.pack`);
* ``registry_vectors`` / ``registry_lengths`` -- every registry
  fingerprint's packet rows, concatenated, plus the per-fingerprint row
  counts to slice them back apart.

Robustness guarantees:

* loading a bundle with a different ``schema_version`` (or missing magic)
  raises :class:`~repro.exceptions.ModelStoreError` instead of
  misinterpreting bytes;
* every data array is checksummed; truncated or bit-flipped files fail
  loudly at load time, not at serve time;
* verdict reproducibility is *structural*, not stateful: since schema v3
  the discrimination stage selects its references deterministically from
  each fingerprint's content hash (plus the persisted identifier
  ``revision``), so a reloaded identifier returns bit-identical verdicts
  with **no** generator state in the bundle.  Legacy v1/v2 bundles, which
  captured the discriminator's rng state, still load -- the stored state
  is discarded in favour of the deterministic draw (see
  :func:`legacy_fallback_counts`);
* a bundle may be stamped with the cache-generation *epoch* it was saved
  under (see :mod:`repro.identification.lifecycle`); loading with
  ``expected_epoch`` rejects bundles from any other epoch, so a runtime
  that has learned device-types since a snapshot cannot silently serve
  the pre-learning bank.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zipfile
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.distance.discrimination import NUMPY_DRAW, EditDistanceDiscriminator
from repro.exceptions import ModelError, ModelStoreError
from repro.features.fingerprint import Fingerprint
from repro.identification.classifier_bank import ClassifierBank, DeviceTypeClassifier
from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.registry import FingerprintRegistry
from repro.ml.compiled import CompiledForest

#: Identifies a file as an IoT SENTINEL model bundle.
STORE_MAGIC = "iot-sentinel-model-store"

#: Bump on any incompatible change to the bundle layout.
#: Version 2 added the optional cache-generation ``epoch`` stamp.
#: Version 3 dropped the discriminator rng-state capture (reference
#: selection is deterministic per fingerprint) and added the identifier
#: ``revision`` (the discrimination draw salt) to the metadata.
#: Version 4 records the discriminator's ``draw`` algorithm (the
#: self-contained splitmix64 draw vs the legacy numpy ``Generator.choice``
#: draw), so verdict streams survive numpy upgrades.
SCHEMA_VERSION = 4

#: Versions this build can still read.  Version 1 bundles predate the
#: epoch stamp (an additive change); they load with ``epoch=None``.
#: Version 1/2 bundles carry a discriminator rng state that v3+ runtimes
#: discard -- see :func:`legacy_fallback_counts`.  Version 3 bundles
#: predate the ``draw`` field and load with the legacy numpy draw, so
#: their historical verdict streams replay unchanged.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)


# --------------------------------------------------------------------- #
# Helpers.
# --------------------------------------------------------------------- #
def _checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every data array, in sorted key order."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _rng_state(rng: Optional[np.random.Generator]) -> Optional[dict]:
    if rng is None:
        return None
    return rng.bit_generator.state


#: Lifetime counters of legacy-bundle loads that could not restore exact
#: state and fell back to documented defaults.  Keys:
#:
#: * ``"bank_rng"`` -- the bundle recorded no bank generator state, so a
#:   fresh *nondeterministic* generator was created.  Verdicts are
#:   unaffected (serving never draws from the bank rng); future
#:   ``train_type`` negative subsampling on the loaded bank is not
#:   reproducible.
#: * ``"discriminator_rng"`` -- either a v1/v2 bundle carried a captured
#:   discriminator generator state that a deterministic-selection runtime
#:   discarded (verdicts are reproducible but may *differ* from the
#:   retired random-draw stream), or a ``selection="random"`` bundle was
#:   missing its state and got a fresh nondeterministic generator.
_LEGACY_FALLBACKS = {"bank_rng": 0, "discriminator_rng": 0}


def legacy_fallback_counts() -> dict[str, int]:
    """A snapshot of the legacy-bundle fallback counters (see above)."""
    return dict(_LEGACY_FALLBACKS)


def _restore_rng(state: Optional[dict], context: str = "bank") -> np.random.Generator:
    """Restore a captured generator state, or *explicitly* fall back.

    A ``None`` state historically returned a fresh nondeterministic
    generator in silence; the fallback is now documented, warned about and
    counted (``legacy_fallback_counts()[f"{context}_rng"]``) so an
    operator auditing reproducibility can tell exactly which loads of
    which subsystem degraded.
    """
    if state is None:
        _LEGACY_FALLBACKS[f"{context}_rng"] = _LEGACY_FALLBACKS.get(f"{context}_rng", 0) + 1
        warnings.warn(
            f"legacy model bundle recorded no {context} rng state; "
            "falling back to a fresh nondeterministic generator "
            f"(future draws from the {context} generator are not reproducible)",
            RuntimeWarning,
            stacklevel=3,
        )
        # repro-lint: disable=no-unseeded-rng -- the documented, warned, counted legacy fallback: the bundle recorded no state, so no seed exists to restore
        return np.random.default_rng()
    # repro-lint: disable=no-unseeded-rng -- seed irrelevant: the captured bit-generator state is installed on the next line
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def _registry_arrays(registry: FingerprintRegistry) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Flatten every registry fingerprint into two arrays + JSON metadata."""
    records: list[dict] = []
    blocks: list[np.ndarray] = []
    for fingerprint in registry:  # iterates in sorted-type order
        records.append(
            {
                "device_type": fingerprint.device_type,
                "device_mac": fingerprint.device_mac,
                "metadata": fingerprint.metadata,
                "packets": fingerprint.packet_count,
            }
        )
        blocks.append(fingerprint.vectors)
    if blocks:
        vectors = np.concatenate(blocks, axis=0)
    else:
        vectors = np.zeros((0, 0), dtype=np.int64)
    lengths = np.array([record["packets"] for record in records], dtype=np.int64)
    return records, {"registry_vectors": vectors, "registry_lengths": lengths}


def _rebuild_registry(meta: dict, arrays: dict[str, np.ndarray]) -> FingerprintRegistry:
    registry = FingerprintRegistry(fixed_packet_count=meta["fixed_packet_count"])
    records = meta["fingerprints"]
    vectors = arrays["registry_vectors"]
    lengths = arrays["registry_lengths"]
    if len(records) != len(lengths):
        raise ModelStoreError("registry metadata and lengths disagree on fingerprint count")
    if int(lengths.sum()) != len(vectors):
        raise ModelStoreError("registry vector block disagrees with recorded lengths")
    offset = 0
    for record, length in zip(records, lengths):
        rows = vectors[offset : offset + int(length)]
        offset += int(length)
        registry.add(
            Fingerprint(
                vectors=np.asarray(rows, dtype=np.int64),
                device_type=record["device_type"],
                device_mac=record.get("device_mac"),
                metadata=record.get("metadata") or {},
            )
        )
    return registry


def _bank_payload(bank: ClassifierBank) -> tuple[dict, dict[str, np.ndarray]]:
    classifiers_meta: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for index, device_type in enumerate(bank.device_types):
        classifier = bank.classifier_of(device_type)
        compiled = classifier.compiled
        if compiled is None:
            if classifier.model is None:
                raise ModelStoreError(
                    f"classifier for type {device_type!r} has no model to persist"
                )
            compiled = classifier.model.compile()
        packed = compiled.pack()
        for key, array in packed.items():
            arrays[f"bank{index}_{key}"] = array
        classifiers_meta.append(
            {
                "device_type": device_type,
                "positive_count": classifier.positive_count,
                "negative_count": classifier.negative_count,
            }
        )
    meta = {
        "negative_ratio": bank.negative_ratio,
        "n_estimators": bank.n_estimators,
        "max_depth": bank.max_depth,
        "fixed_packet_count": bank.fixed_packet_count,
        "random_state": bank.random_state,
        "n_jobs": bank.n_jobs,
        "compile_models": bank.compile_models,
        "rng_state": _rng_state(bank._rng),
        "classifiers": classifiers_meta,
    }
    return meta, arrays


def _rebuild_bank(meta: dict, arrays: dict[str, np.ndarray]) -> ClassifierBank:
    bank = ClassifierBank(
        negative_ratio=meta["negative_ratio"],
        n_estimators=meta["n_estimators"],
        max_depth=meta["max_depth"],
        fixed_packet_count=meta["fixed_packet_count"],
        random_state=meta["random_state"],
        n_jobs=meta.get("n_jobs"),
        compile_models=meta.get("compile_models", True),
    )
    bank._rng = _restore_rng(meta.get("rng_state"), context="bank")
    for index, record in enumerate(meta["classifiers"]):
        prefix = f"bank{index}_"
        packed = {
            key[len(prefix) :]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
        forest = CompiledForest.unpack(packed)
        device_type = record["device_type"]
        bank._classifiers[device_type] = DeviceTypeClassifier(
            device_type=device_type,
            model=None,
            compiled=forest,
            positive_count=record["positive_count"],
            negative_count=record["negative_count"],
        )
    return bank


def _write_bundle(
    path: Union[str, Path],
    meta: dict,
    arrays: dict[str, np.ndarray],
    magic: str = STORE_MAGIC,
    schema_version: int = SCHEMA_VERSION,
) -> Path:
    path = Path(path)
    meta = dict(meta)
    meta["magic"] = magic
    meta["schema_version"] = schema_version
    meta["checksum"] = _checksum(arrays)
    encoded = np.frombuffer(
        json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8"),
        dtype=np.uint8,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename keeps an existing bundle intact if this process
    # dies mid-save: the gateway never loses its last good model.
    scratch = path.with_name(path.name + ".tmp")
    try:
        with open(scratch, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **arrays)
        os.replace(scratch, path)
    finally:
        if scratch.exists():
            scratch.unlink()
    return path


def _read_bundle(
    path: Union[str, Path],
    magic: str = STORE_MAGIC,
    supported_versions: tuple[int, ...] = SUPPORTED_SCHEMA_VERSIONS,
    kind: str = "model bundle",
) -> tuple[dict, dict[str, np.ndarray]]:
    path = Path(path)
    if not path.exists():
        raise ModelStoreError(f"{kind} does not exist: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, zlib.error, ValueError, OSError, EOFError, KeyError) as exc:
        raise ModelStoreError(f"{kind} is unreadable (corrupt or truncated): {path}") from exc
    if "meta" not in contents:
        raise ModelStoreError(f"{kind} has no metadata record: {path}")
    try:
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelStoreError(f"{kind} metadata is not valid JSON: {path}") from exc
    if meta.get("magic") != magic:
        raise ModelStoreError(f"not an IoT SENTINEL {kind}: {path}")
    if meta.get("schema_version") not in supported_versions:
        raise ModelStoreError(
            f"unsupported {kind} schema version {meta.get('schema_version')!r} "
            f"(this build reads versions {supported_versions})"
        )
    recorded = meta.get("checksum")
    actual = _checksum(contents)
    if recorded != actual:
        raise ModelStoreError(
            f"{kind} checksum mismatch (file corrupt): {path} "
            f"recorded={recorded!r} actual={actual!r}"
        )
    return meta, contents


def _check_epoch(
    meta: dict,
    expected_epoch: Optional[int],
    path: Union[str, Path],
    kind: str = "model bundle",
) -> None:
    """Reject a bundle whose recorded epoch differs from the expected one.

    A recorded epoch *older* than expected means the bundle predates one
    or more runtime type registrations (it would reload a bank that does
    not know those types); a *newer* one belongs to a runtime ahead of
    this one.  Either way the bundle's verdicts are not the live ones.
    """
    if expected_epoch is None:
        return
    recorded = meta.get("epoch")
    if recorded is None and expected_epoch == 0:
        # Unstamped bundle (schema v1, or a plain save_identifier call)
        # loaded by a runtime that has never learned a type: no staleness
        # is possible yet, so the migration path stays open.
        return
    if recorded != expected_epoch:
        raise ModelStoreError(
            f"stale {kind}: {path} was saved at cache epoch {recorded!r}, "
            f"this runtime is at epoch {expected_epoch!r}"
        )


def bundle_epoch(path: Union[str, Path]) -> Optional[int]:
    """The cache-generation epoch a bundle was saved under (None when unstamped)."""
    meta, _ = _read_bundle(path)
    return meta.get("epoch")


def bundle_info(path: Union[str, Path]) -> dict:
    """A bundle's distribution-relevant metadata in one validated read.

    Returns ``{"epoch", "revision", "schema_version", "device_types"}``
    -- what the fleet distribution channel needs to watermark a push
    (:meth:`repro.fleet.FleetCoordinator.push`) without rebuilding the
    whole identifier.  The read still runs the full magic/schema/checksum
    validation, so a corrupt bundle is rejected at *push* time instead of
    on N gateways at apply time.
    """
    meta, _ = _read_bundle(path)
    classifiers = meta.get("bank", {}).get("classifiers", [])
    return {
        "epoch": meta.get("epoch"),
        "revision": int(meta.get("revision", 0)),
        "schema_version": meta.get("schema_version"),
        "device_types": [record["device_type"] for record in classifiers],
    }


# --------------------------------------------------------------------- #
# Quarantine-log persistence.
# --------------------------------------------------------------------- #
#: Identifies a file as a persisted quarantine log (saved beside the model
#: bundle so a restarted gateway resumes pending re-identifications).
QUARANTINE_MAGIC = "iot-sentinel-quarantine-log"

#: Bump on any incompatible change to the quarantine-log layout.
QUARANTINE_SCHEMA_VERSION = 1

#: Versions this build can still read.
SUPPORTED_QUARANTINE_SCHEMA_VERSIONS = (1,)

_QUARANTINE_KIND = "quarantine log"


def save_quarantine_records(
    path: Union[str, Path],
    records: list[dict],
    capacity: int,
    epoch: Optional[int] = None,
    counters: Optional[dict] = None,
) -> Path:
    """Persist raw quarantine entries with the store's robustness guarantees.

    ``records`` is a list of dicts with keys ``mac`` (48-bit int),
    ``vectors`` (the fingerprint's ``(n, 23)`` int64 matrix),
    ``quarantined_at`` (float) and ``completion_reason`` (str).  The
    bundle is checksummed, schema-versioned, epoch-stamped and written
    atomically, exactly like a model bundle -- the higher-level
    :func:`~repro.identification.lifecycle.save_quarantine_log` wraps
    this for :class:`~repro.identification.lifecycle.QuarantineLog`.
    """
    if capacity <= 0:
        raise ModelStoreError(f"quarantine capacity must be positive, got {capacity}")
    blocks = [np.asarray(record["vectors"], dtype=np.int64) for record in records]
    if blocks:
        vectors = np.concatenate(blocks, axis=0)
    else:
        vectors = np.zeros((0, 0), dtype=np.int64)
    arrays = {
        "quarantine_vectors": vectors,
        "quarantine_lengths": np.array([len(block) for block in blocks], dtype=np.int64),
        "quarantine_macs": np.array([record["mac"] for record in records], dtype=np.uint64),
        "quarantine_times": np.array(
            [record["quarantined_at"] for record in records], dtype=np.float64
        ),
    }
    meta = {
        "capacity": capacity,
        "epoch": epoch,
        "completion_reasons": [record["completion_reason"] for record in records],
        "counters": dict(counters or {}),
    }
    return _write_bundle(
        path,
        meta,
        arrays,
        magic=QUARANTINE_MAGIC,
        schema_version=QUARANTINE_SCHEMA_VERSION,
    )


def load_quarantine_records(
    path: Union[str, Path], expected_epoch: Optional[int] = None
) -> tuple[dict, list[dict]]:
    """Reload quarantine entries persisted by :func:`save_quarantine_records`.

    Returns ``(meta, records)`` with ``records`` shaped exactly as the
    save side took them.  Truncated or bit-flipped files, unsupported
    schema versions and epoch mismatches all raise
    :class:`~repro.exceptions.ModelStoreError`.
    """
    meta, arrays = _read_bundle(
        path,
        magic=QUARANTINE_MAGIC,
        supported_versions=SUPPORTED_QUARANTINE_SCHEMA_VERSIONS,
        kind=_QUARANTINE_KIND,
    )
    _check_epoch(meta, expected_epoch, path, kind=_QUARANTINE_KIND)
    try:
        vectors = arrays["quarantine_vectors"]
        lengths = arrays["quarantine_lengths"]
        macs = arrays["quarantine_macs"]
        times = arrays["quarantine_times"]
        reasons = meta["completion_reasons"]
    except KeyError as exc:
        raise ModelStoreError(f"{_QUARANTINE_KIND} is structurally invalid: {path}") from exc
    if not (len(lengths) == len(macs) == len(times) == len(reasons)):
        raise ModelStoreError(
            f"{_QUARANTINE_KIND} arrays disagree on entry count: {path}"
        )
    if int(lengths.sum()) != len(vectors):
        raise ModelStoreError(
            f"{_QUARANTINE_KIND} vector block disagrees with recorded lengths: {path}"
        )
    records: list[dict] = []
    offset = 0
    for mac, length, quarantined_at, reason in zip(macs, lengths, times, reasons):
        rows = vectors[offset : offset + int(length)]
        offset += int(length)
        records.append(
            {
                "mac": int(mac),
                "vectors": np.asarray(rows, dtype=np.int64),
                "quarantined_at": float(quarantined_at),
                "completion_reason": reason,
            }
        )
    return meta, records


# --------------------------------------------------------------------- #
# Public API.
# --------------------------------------------------------------------- #
def save_bank(
    path: Union[str, Path],
    bank: ClassifierBank,
    registry: FingerprintRegistry,
    epoch: Optional[int] = None,
) -> Path:
    """Persist a trained classifier bank and its fingerprint registry."""
    bank_meta, arrays = _bank_payload(bank)
    registry_records, registry_arrays = _registry_arrays(registry)
    arrays.update(registry_arrays)
    meta = {
        "bank": bank_meta,
        "registry": {
            "fixed_packet_count": registry.fixed_packet_count,
            "fingerprints": registry_records,
        },
        "epoch": epoch,
    }
    return _write_bundle(path, meta, arrays)


def load_bank(
    path: Union[str, Path], expected_epoch: Optional[int] = None
) -> tuple[ClassifierBank, FingerprintRegistry]:
    """Reload a bank + registry persisted by :func:`save_bank`."""
    meta, arrays = _read_bundle(path)
    _check_epoch(meta, expected_epoch, path)
    try:
        bank = _rebuild_bank(meta["bank"], arrays)
        registry = _rebuild_registry(meta["registry"], arrays)
    except (KeyError, TypeError, ModelError) as exc:
        raise ModelStoreError(f"model bundle is structurally invalid: {path}") from exc
    return bank, registry


def save_identifier(
    path: Union[str, Path],
    identifier: DeviceTypeIdentifier,
    epoch: Optional[int] = None,
) -> Path:
    """Persist a fully trained two-stage identifier.

    Captures the bank (compiled forests), the registry, the discriminator
    configuration, the identifier ``revision`` (the salt of the
    deterministic reference draw) and the novelty threshold, so the
    reloaded identifier returns bit-identical verdicts -- with no
    generator state in the bundle (schema v3) for the default
    deterministic selection.  An ablation identifier running the
    paper-style ``selection="random"`` draw *does* keep its generator
    state captured, so its (deliberately history-dependent) verdict
    stream also continues exactly after a reload.  ``epoch`` stamps the
    bundle with the cache generation it belongs to (see
    :class:`~repro.identification.lifecycle.LifecycleCoordinator`).
    """
    bank_meta, arrays = _bank_payload(identifier.bank)
    registry_records, registry_arrays = _registry_arrays(identifier.registry)
    arrays.update(registry_arrays)
    discriminator_meta = {
        "references_per_type": identifier.discriminator.references_per_type,
        "selection": identifier.discriminator.selection,
        "draw": identifier.discriminator.draw,
    }
    if not identifier.discriminator.is_deterministic:
        discriminator_meta["rng_state"] = _rng_state(identifier.discriminator.rng)
    meta = {
        "bank": bank_meta,
        "registry": {
            "fixed_packet_count": identifier.registry.fixed_packet_count,
            "fingerprints": registry_records,
        },
        "discriminator": discriminator_meta,
        "novelty_threshold": identifier.novelty_threshold,
        "revision": identifier.revision,
        "epoch": epoch,
    }
    return _write_bundle(path, meta, arrays)


def load_identifier(
    path: Union[str, Path], expected_epoch: Optional[int] = None
) -> DeviceTypeIdentifier:
    """Reload an identifier persisted by :func:`save_identifier`.

    ``expected_epoch`` (when given) must equal the epoch recorded in the
    bundle; a mismatch raises :class:`~repro.exceptions.ModelStoreError`
    instead of quietly serving a bank that is out of sync with the
    runtime's learned device-types.
    """
    return load_identifier_with_epoch(path, expected_epoch=expected_epoch)[0]


def load_identifier_with_epoch(
    path: Union[str, Path], expected_epoch: Optional[int] = None
) -> tuple[DeviceTypeIdentifier, Optional[int]]:
    """:func:`load_identifier` plus the bundle's recorded epoch.

    One read, one checksum pass: the restart path
    (:meth:`~repro.identification.lifecycle.LifecycleCoordinator.resume`)
    needs both the identifier and the epoch it was saved under, and a
    multi-megabyte bundle should not be decompressed and hashed twice
    for that.
    """
    meta, arrays = _read_bundle(path)
    _check_epoch(meta, expected_epoch, path)
    try:
        bank = _rebuild_bank(meta["bank"], arrays)
        registry = _rebuild_registry(meta["registry"], arrays)
        discriminator_meta = meta["discriminator"]
        selection = discriminator_meta.get("selection", "deterministic")
        if selection == "random":
            # An ablation identifier: the shared generator *is* the
            # semantics, so its captured state is restored exactly (a
            # random-mode bundle missing the state falls back loudly via
            # _restore_rng's counted warning).
            discriminator = EditDistanceDiscriminator(
                references_per_type=discriminator_meta["references_per_type"],
                selection=selection,
                rng=_restore_rng(
                    discriminator_meta.get("rng_state"), context="discriminator"
                ),
            )
        else:
            if discriminator_meta.get("rng_state") is not None:
                # A v1/v2 bundle: the discriminator's generator state was
                # captured to replay the old random reference draw.  The
                # draw is deterministic per fingerprint now, so the state
                # is discarded -- explicitly: the reloaded identifier's
                # verdicts are reproducible but may differ from the
                # retired random stream on borderline fingerprints.
                _LEGACY_FALLBACKS["discriminator_rng"] += 1
                warnings.warn(
                    f"legacy model bundle (schema v{meta.get('schema_version')}) "
                    "captured a discriminator rng state; discarding it in favour "
                    "of the deterministic per-fingerprint reference draw",
                    RuntimeWarning,
                    stacklevel=2,
                )
            # Schema v3 and earlier predate the ``draw`` field: those
            # bundles were trained under the numpy ``Generator.choice``
            # reference draw, which stays pinned so their verdict
            # streams replay byte-for-byte.
            discriminator = EditDistanceDiscriminator(
                references_per_type=discriminator_meta["references_per_type"],
                selection=selection,
                draw=discriminator_meta.get("draw", NUMPY_DRAW),
            )
        novelty_threshold = meta["novelty_threshold"]
        revision = int(meta.get("revision", 0))
    except (KeyError, TypeError, ModelError) as exc:
        raise ModelStoreError(f"model bundle is structurally invalid: {path}") from exc
    identifier = DeviceTypeIdentifier(
        bank=bank,
        registry=registry,
        discriminator=discriminator,
        novelty_threshold=novelty_threshold,
        revision=revision,
    )
    return identifier, meta.get("epoch")
