"""A store of labelled training fingerprints, grouped by device-type."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.exceptions import IdentificationError
from repro.features.fingerprint import FIXED_PACKET_COUNT, Fingerprint


@dataclass
class FingerprintRegistry:
    """Labelled fingerprints of known device-types.

    The IoT Security Service accumulates such a registry from laboratory
    ground-truth experiments (and potentially crowdsourcing); the classifier
    bank and the edit-distance discriminator both read from it.
    """

    fixed_packet_count: int = FIXED_PACKET_COUNT
    _by_type: dict[str, list[Fingerprint]] = field(default_factory=lambda: defaultdict(list))

    def add(self, fingerprint: Fingerprint, device_type: Optional[str] = None) -> None:
        """Add a labelled fingerprint (label from the argument or the fingerprint)."""
        label = device_type or fingerprint.device_type
        if not label:
            raise IdentificationError("cannot register a fingerprint without a device-type label")
        stored = fingerprint
        if fingerprint.device_type != label:
            stored = Fingerprint(
                vectors=fingerprint.vectors,
                device_type=label,
                device_mac=fingerprint.device_mac,
                metadata=dict(fingerprint.metadata),
            )
        self._by_type[label].append(stored)

    def add_all(self, fingerprints: Iterable[Fingerprint]) -> None:
        """Add many labelled fingerprints."""
        for fingerprint in fingerprints:
            self.add(fingerprint)

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    @property
    def device_types(self) -> list[str]:
        """All registered device-type names, sorted."""
        return sorted(self._by_type)

    @property
    def total_fingerprints(self) -> int:
        return sum(len(group) for group in self._by_type.values())

    def count(self, device_type: str) -> int:
        return len(self._by_type.get(device_type, []))

    def fingerprints_of(self, device_type: str) -> list[Fingerprint]:
        """The fingerprints registered for one device-type."""
        if device_type not in self._by_type:
            raise IdentificationError(f"unknown device-type: {device_type!r}")
        return list(self._by_type[device_type])

    def fingerprints_excluding(self, device_type: str) -> list[Fingerprint]:
        """All fingerprints whose type differs from ``device_type``."""
        others: list[Fingerprint] = []
        for label, group in self._by_type.items():
            if label != device_type:
                others.extend(group)
        return others

    def __iter__(self) -> Iterator[Fingerprint]:
        for label in sorted(self._by_type):
            yield from self._by_type[label]

    def __len__(self) -> int:
        return self.total_fingerprints

    def __contains__(self, device_type: object) -> bool:
        return device_type in self._by_type

    # ------------------------------------------------------------------ #
    # Matrix views used for classifier training.
    # ------------------------------------------------------------------ #
    def fixed_matrix(self, fingerprints: Iterable[Fingerprint]) -> np.ndarray:
        """Stack the fixed-length vectors F' of the given fingerprints."""
        vectors = [
            fingerprint.to_fixed_vector(self.fixed_packet_count) for fingerprint in fingerprints
        ]
        if not vectors:
            raise IdentificationError("cannot build a matrix from zero fingerprints")
        return np.stack(vectors).astype(np.float64)

    def training_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """All fixed vectors and their labels, in registry iteration order."""
        fingerprints = list(self)
        matrix = self.fixed_matrix(fingerprints)
        labels = np.array([fingerprint.device_type for fingerprint in fingerprints], dtype=object)
        return matrix, labels
