"""Machine-learning substrate: a scikit-learn stand-in.

The paper trains one binary Random Forest classifier per device-type.  This
subpackage provides a from-scratch implementation of CART decision trees,
bootstrap-aggregated Random Forests, stratified k-fold cross-validation,
common classification metrics and two simple baselines (Gaussian naive
Bayes and k-nearest-neighbours) used for comparison experiments.
"""

from repro.ml.baselines import GaussianNaiveBayes, KNeighborsClassifier, MajorityClassClassifier
from repro.ml.compiled import CompiledForest, CompiledTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.sampling import bootstrap_indices, negative_subsample, train_test_split
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.validation import StratifiedKFold, cross_val_predict

__all__ = [
    "CompiledForest",
    "CompiledTree",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GaussianNaiveBayes",
    "KNeighborsClassifier",
    "MajorityClassClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "classification_report",
    "StratifiedKFold",
    "cross_val_predict",
    "bootstrap_indices",
    "negative_subsample",
    "train_test_split",
]
