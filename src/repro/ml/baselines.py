"""Simple baseline classifiers used for comparison and ablation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ModelError


@dataclass
class MajorityClassClassifier:
    """Predicts the most frequent training class for every input."""

    majority_: Optional[object] = field(default=None, repr=False)
    classes_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MajorityClassClassifier":
        y = np.asarray(y)
        if len(y) == 0:
            raise ModelError("cannot fit on an empty dataset")
        self.classes_, counts = np.unique(y, return_counts=True)
        self.majority_ = self.classes_[int(np.argmax(counts))]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.majority_ is None:
            raise ModelError("predict called before fit")
        return np.full(len(np.atleast_2d(X)), self.majority_, dtype=object)


@dataclass
class GaussianNaiveBayes:
    """Gaussian naive Bayes classifier.

    Related work (Franklin et al., USENIX Security 2006) classified WiFi
    drivers with a Bayesian approach; this baseline lets the evaluation
    compare the paper's Random-Forest pipeline against that family.
    """

    var_smoothing: float = 1e-6

    classes_: Optional[np.ndarray] = field(default=None, repr=False)
    means_: Optional[np.ndarray] = field(default=None, repr=False)
    variances_: Optional[np.ndarray] = field(default=None, repr=False)
    priors_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise ModelError("invalid training data for GaussianNaiveBayes")
        self.classes_ = np.unique(y)
        self.means_ = np.zeros((len(self.classes_), X.shape[1]))
        self.variances_ = np.zeros_like(self.means_)
        self.priors_ = np.zeros(len(self.classes_))
        for index, label in enumerate(self.classes_):
            members = X[y == label]
            self.means_[index] = members.mean(axis=0)
            self.variances_[index] = members.var(axis=0) + self.var_smoothing
            self.priors_[index] = len(members) / len(X)
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise ModelError("predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        log_probabilities = np.zeros((len(X), len(self.classes_)))
        for index in range(len(self.classes_)):
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.variances_[index])
                + ((X - self.means_[index]) ** 2) / self.variances_[index],
                axis=1,
            )
            log_probabilities[:, index] = np.log(self.priors_[index]) + log_likelihood
        return log_probabilities

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_log_proba(X), axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))


@dataclass
class KNeighborsClassifier:
    """k-nearest-neighbours classifier with Euclidean distance."""

    n_neighbors: int = 5

    X_: Optional[np.ndarray] = field(default=None, repr=False)
    y_: Optional[np.ndarray] = field(default=None, repr=False)
    classes_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if self.n_neighbors <= 0:
            raise ModelError("n_neighbors must be positive")
        if len(X) != len(y) or len(X) == 0:
            raise ModelError("invalid training data for KNeighborsClassifier")
        self.X_ = X
        self.y_ = y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None:
            raise ModelError("predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        k = min(self.n_neighbors, len(self.X_))
        predictions = np.empty(len(X), dtype=self.y_.dtype)
        for index, row in enumerate(X):
            distances = np.sum((self.X_ - row) ** 2, axis=1)
            nearest = np.argpartition(distances, k - 1)[:k]
            labels, counts = np.unique(self.y_[nearest], return_counts=True)
            predictions[index] = labels[int(np.argmax(counts))]
        return predictions

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
