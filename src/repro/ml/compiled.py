"""Compiled (flattened, vectorized) inference for CART trees and forests.

The interpreted predict path walks ``_Node`` objects one sample at a time
in a Python loop, so a batch of ``n`` fingerprints against a bank of ``T``
device-type forests costs ``n x T x trees x depth`` Python iterations.
Compiling a fitted tree flattens it into contiguous numpy arrays (feature
index, threshold, child pointers and a per-node class-probability matrix)
and evaluates whole batches level by level: every iteration advances *all*
still-descending samples one level with a handful of vectorized gathers,
so the Python-loop count drops from ``n x depth`` to ``depth``.

The arrays are also the on-disk representation used by
:mod:`repro.identification.model_store`: a compiled forest round-trips
through :meth:`CompiledForest.pack` / :meth:`CompiledForest.unpack`
without ever rebuilding ``_Node`` objects.

Compiled predictions are bitwise-identical to the interpreted path: leaf
probability vectors are copied verbatim and the split comparison
(``x <= threshold``) is evaluated on the same float64 values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ml.tree import DecisionTreeClassifier, _Node

#: Sentinel feature index marking a leaf row in the flattened arrays.
LEAF = -1


def _flatten_nodes(root: "_Node") -> list["_Node"]:
    """Collect every node of a tree iteratively (no recursion), preorder."""
    nodes: list["_Node"] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not node.is_leaf:
            # Push right first so the left child is visited (and numbered)
            # immediately after its parent.
            stack.append(node.right)
            stack.append(node.left)
    return nodes


@dataclass(frozen=True)
class CompiledTree:
    """A fitted decision tree flattened into contiguous arrays.

    Attributes:
        feature: per-node split feature index, ``LEAF`` (-1) for leaves.
        threshold: per-node split threshold (``x <= t`` goes left).
        left / right: per-node child row indices (0 for leaves).
        probabilities: per-node class distribution; only leaf rows are read
            at predict time, inner rows are zero.
        classes_: class labels, in the column order of ``probabilities``.
        n_features_: expected input dimensionality.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    probabilities: np.ndarray
    classes_: np.ndarray
    n_features_: int

    @classmethod
    def from_tree(cls, tree: "DecisionTreeClassifier") -> "CompiledTree":
        """Flatten a fitted :class:`DecisionTreeClassifier`."""
        if tree._root is None or tree.classes_ is None:
            raise ModelError("cannot compile an unfitted tree")
        nodes = _flatten_nodes(tree._root)
        index_of = {id(node): index for index, node in enumerate(nodes)}
        count = len(nodes)
        feature = np.full(count, LEAF, dtype=np.int32)
        threshold = np.zeros(count, dtype=np.float64)
        left = np.zeros(count, dtype=np.int32)
        right = np.zeros(count, dtype=np.int32)
        probabilities = np.zeros((count, len(tree.classes_)), dtype=np.float64)
        for index, node in enumerate(nodes):
            if node.is_leaf:
                probabilities[index] = node.probabilities
            else:
                feature[index] = node.feature
                threshold[index] = node.threshold
                left[index] = index_of[id(node.left)]
                right[index] = index_of[id(node.right)]
        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            probabilities=probabilities,
            classes_=np.asarray(tree.classes_),
            n_features_=tree.n_features_,
        )

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def depth(self) -> int:
        """Depth of the compiled tree (0 for a single leaf), iteratively."""
        depths = np.zeros(self.node_count, dtype=np.int64)
        deepest = 0
        for index in range(self.node_count):
            if self.feature[index] == LEAF:
                deepest = max(deepest, int(depths[index]))
            else:
                depths[self.left[index]] = depths[index] + 1
                depths[self.right[index]] = depths[index] + 1
        return deepest

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Row index of the leaf each sample lands in, fully vectorized."""
        positions = np.zeros(len(X), dtype=np.int64)
        active = np.nonzero(self.feature[positions] != LEAF)[0]
        while active.size:
            current = positions[active]
            go_left = X[active, self.feature[current]] <= self.threshold[current]
            advanced = np.where(go_left, self.left[current], self.right[current])
            positions[active] = advanced
            active = active[self.feature[advanced] != LEAF]
        return positions

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, shape ``(n, n_classes)``."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"feature count mismatch: model has {self.n_features_}, input has {X.shape[1]}"
            )
        return self.probabilities[self.leaf_indices(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


def _aligned_probabilities(tree: CompiledTree, classes: np.ndarray) -> np.ndarray:
    """Expand a tree's probability columns onto the forest's class order."""
    if len(tree.classes_) == len(classes) and np.array_equal(tree.classes_, classes):
        return tree.probabilities
    aligned = np.zeros((tree.node_count, len(classes)), dtype=np.float64)
    column_map = np.searchsorted(classes, tree.classes_)
    aligned[:, column_map] = tree.probabilities
    return aligned


@dataclass(frozen=True)
class CompiledForest:
    """A bank-ready compiled Random Forest: a tuple of compiled trees.

    Every tree's probability matrix is pre-aligned onto the forest's class
    order at compile time, so prediction is a plain sum over trees.  The
    object is immutable and holds no Python node graphs, which is what the
    model store serialises.

    On construction the per-tree node blocks are additionally merged into
    one global array set (child pointers rebased onto global rows), so
    ``predict_proba`` descends every ``(sample, tree)`` pair of a batch
    simultaneously: the Python-level loop count is the *maximum tree
    depth*, not ``n_estimators x depth``.
    """

    trees: tuple[CompiledTree, ...]
    classes_: np.ndarray
    n_features_: int

    def __post_init__(self) -> None:
        if not self.trees:
            empty = np.zeros(0, dtype=np.int64)
            for name in ("_roots", "_feature", "_threshold", "_left", "_right"):
                object.__setattr__(self, name, empty)
            object.__setattr__(self, "_probabilities", np.zeros((0, len(self.classes_))))
            return
        offsets = np.zeros(len(self.trees) + 1, dtype=np.int64)
        for index, tree in enumerate(self.trees):
            offsets[index + 1] = offsets[index] + tree.node_count
        object.__setattr__(self, "_roots", offsets[:-1])
        object.__setattr__(
            self, "_feature", np.concatenate([tree.feature for tree in self.trees])
        )
        object.__setattr__(
            self, "_threshold", np.concatenate([tree.threshold for tree in self.trees])
        )
        object.__setattr__(
            self,
            "_left",
            np.concatenate(
                [tree.left.astype(np.int64) + offset for tree, offset in zip(self.trees, offsets)]
            ),
        )
        object.__setattr__(
            self,
            "_right",
            np.concatenate(
                [tree.right.astype(np.int64) + offset for tree, offset in zip(self.trees, offsets)]
            ),
        )
        object.__setattr__(
            self, "_probabilities", np.concatenate([tree.probabilities for tree in self.trees])
        )

    @classmethod
    def from_estimators(
        cls,
        estimators: list["DecisionTreeClassifier"],
        classes: np.ndarray,
        n_features: int,
    ) -> "CompiledForest":
        """Compile a fitted estimator list (the forest's trees)."""
        if not estimators:
            raise ModelError("cannot compile a forest with no fitted trees")
        classes = np.asarray(classes)
        compiled = []
        for tree in estimators:
            flat = CompiledTree.from_tree(tree)
            compiled.append(
                CompiledTree(
                    feature=flat.feature,
                    threshold=flat.threshold,
                    left=flat.left,
                    right=flat.right,
                    probabilities=_aligned_probabilities(flat, classes),
                    classes_=classes,
                    n_features_=n_features,
                )
            )
        return cls(trees=tuple(compiled), classes_=classes, n_features_=n_features)

    @property
    def n_estimators(self) -> int:
        return len(self.trees)

    @property
    def node_count(self) -> int:
        return sum(tree.node_count for tree in self.trees)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Averaged class-probability estimates over all trees.

        All ``(sample, tree)`` descents advance together, one tree level
        per Python iteration; leaf probabilities are then accumulated in
        tree order, which keeps the floating-point summation -- and hence
        the result -- bitwise identical to the interpreted forest.
        """
        if not self.trees:
            raise ModelError("compiled forest has no trees")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"feature count mismatch: model has {self.n_features_}, input has {X.shape[1]}"
            )
        samples = len(X)
        positions = np.tile(self._roots, (samples, 1))
        rows, columns = np.nonzero(self._feature[positions] != LEAF)
        while rows.size:
            current = positions[rows, columns]
            go_left = X[rows, self._feature[current]] <= self._threshold[current]
            advanced = np.where(go_left, self._left[current], self._right[current])
            positions[rows, columns] = advanced
            descending = self._feature[advanced] != LEAF
            rows = rows[descending]
            columns = columns[descending]
        accumulated = np.zeros((samples, len(self.classes_)), dtype=np.float64)
        for column in range(len(self.trees)):
            accumulated += self._probabilities[positions[:, column]]
        return accumulated / len(self.trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (majority probability)."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # ------------------------------------------------------------------ #
    # Serialisation (used by the model store).
    # ------------------------------------------------------------------ #
    def pack(self) -> dict[str, np.ndarray]:
        """Concatenate all trees into a flat dict of arrays.

        The per-tree node blocks are stacked back to back; ``offsets`` has
        ``n_estimators + 1`` entries delimiting each tree's rows.  Reuses
        the merged arrays cached at construction; only the child pointers
        are stored tree-local (rebased back off the global rows) so that
        :meth:`unpack` can validate each tree independently.
        """
        offsets = np.concatenate(
            [self._roots, np.array([len(self._feature)], dtype=np.int64)]
        )
        return {
            "offsets": offsets,
            "feature": self._feature,
            "threshold": self._threshold,
            "left": np.concatenate([tree.left for tree in self.trees]),
            "right": np.concatenate([tree.right for tree in self.trees]),
            "probabilities": self._probabilities,
            "classes": np.asarray(self.classes_),
            "n_features": np.array([self.n_features_], dtype=np.int64),
        }

    @classmethod
    def unpack(cls, arrays: Mapping[str, np.ndarray]) -> "CompiledForest":
        """Rebuild a compiled forest from :meth:`pack` output.

        Validates the structural invariants (offsets, child pointers and
        feature indices in range) so that corrupt or truncated payloads are
        rejected instead of producing out-of-bounds gathers at serve time.
        """
        required = ("offsets", "feature", "threshold", "left", "right", "probabilities",
                    "classes", "n_features")
        missing = [key for key in required if key not in arrays]
        if missing:
            raise ModelError(f"packed forest is missing arrays: {missing}")
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        feature = np.asarray(arrays["feature"], dtype=np.int32)
        threshold = np.asarray(arrays["threshold"], dtype=np.float64)
        left = np.asarray(arrays["left"], dtype=np.int32)
        right = np.asarray(arrays["right"], dtype=np.int32)
        probabilities = np.asarray(arrays["probabilities"], dtype=np.float64)
        classes = np.asarray(arrays["classes"])
        n_features = int(np.asarray(arrays["n_features"]).reshape(-1)[0])

        total = len(feature)
        if offsets.ndim != 1 or len(offsets) < 2 or offsets[0] != 0 or offsets[-1] != total:
            raise ModelError("packed forest offsets are inconsistent with the node arrays")
        if np.any(np.diff(offsets) <= 0):
            raise ModelError("packed forest offsets must be strictly increasing")
        for name, array in (("threshold", threshold), ("left", left), ("right", right)):
            if len(array) != total:
                raise ModelError(f"packed forest array {name!r} disagrees on node count")
        if probabilities.ndim != 2 or len(probabilities) != total:
            raise ModelError("packed forest probabilities disagree on node count")
        if probabilities.shape[1] != len(classes):
            raise ModelError("packed forest probabilities disagree on class count")
        if np.any(feature >= n_features) or np.any(feature < LEAF):
            raise ModelError("packed forest references features beyond n_features")

        trees = []
        for index in range(len(offsets) - 1):
            start, stop = int(offsets[index]), int(offsets[index + 1])
            count = stop - start
            tree_left = left[start:stop]
            tree_right = right[start:stop]
            inner = feature[start:stop] != LEAF
            # Flattening is preorder, so every child row index is strictly
            # greater than its parent's; requiring that here also rules out
            # cyclic pointer graphs that would spin predict_proba forever.
            own = np.arange(count, dtype=np.int64)[inner]
            if np.any((tree_left[inner] <= own) | (tree_left[inner] >= count)) or np.any(
                (tree_right[inner] <= own) | (tree_right[inner] >= count)
            ):
                raise ModelError("packed forest child pointers are out of range")
            trees.append(
                CompiledTree(
                    feature=feature[start:stop],
                    threshold=threshold[start:stop],
                    left=tree_left,
                    right=tree_right,
                    probabilities=probabilities[start:stop],
                    classes_=classes,
                    n_features_=n_features,
                )
            )
        return cls(trees=tuple(trees), classes_=classes, n_features_=n_features)
