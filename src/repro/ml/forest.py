"""Random Forest classifier (Breiman 2001): bagged CART trees."""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.exceptions import ModelError
from repro.ml.compiled import CompiledForest
from repro.ml.tree import DecisionTreeClassifier


def _fit_one_tree(
    task: tuple[dict, int, np.ndarray, np.ndarray],
) -> DecisionTreeClassifier:
    """Fit a single tree; module-level so process pools can pickle it."""
    params, seed, X, y = task
    tree = DecisionTreeClassifier(random_state=seed, **params)
    return tree.fit(X, y)


@dataclass
class RandomForestClassifier:
    """An ensemble of CART trees trained on bootstrap samples.

    This mirrors the classifier the paper uses for the per-device-type
    binary models.  Each tree is grown on a bootstrap resample of the
    training set and considers a random ``sqrt(d)`` subset of features at
    every split; predictions average the trees' leaf class distributions.

    Attributes:
        n_estimators: number of trees.
        max_depth: per-tree depth limit (None = unbounded).
        min_samples_split / min_samples_leaf: per-tree split constraints.
        max_features: per-split feature subsample ("sqrt" by default).
        bootstrap: draw bootstrap resamples (True) or use the full set.
        random_state: seed controlling bootstrap draws and feature subsampling.
        n_jobs: worker processes for fitting trees; ``None`` or 1 fits
            sequentially, -1 uses every CPU.  Per-tree seeds and bootstrap
            indices are drawn up front from the master generator, so the
            fitted forest is identical for every ``n_jobs`` value.
    """

    n_estimators: int = 10
    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Union[str, int, float, None] = "sqrt"
    bootstrap: bool = True
    random_state: Optional[int] = None
    n_jobs: Optional[int] = None

    estimators_: list[DecisionTreeClassifier] = field(default_factory=list, repr=False, compare=False)
    classes_: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    n_features_: int = field(default=0, repr=False, compare=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the forest on samples ``X`` (n, d) and labels ``y`` (n,)."""
        if self.n_estimators <= 0:
            raise ModelError(f"n_estimators must be positive, got {self.n_estimators}")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ModelError(f"X and y disagree on sample count: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ModelError("cannot fit a forest on an empty dataset")

        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        n_samples = len(X)

        # Draw every tree's seed and bootstrap sample from the master
        # generator up front: the draw order matches the historical
        # sequential loop exactly, and fitting then parallelises freely
        # without changing the resulting forest.
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        plans: list[tuple[int, np.ndarray]] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
                # Bootstrap resamples can miss a class entirely; redraw a few
                # times and fall back to the full set to keep the binary
                # classifiers well defined.
                for _attempt in range(5):
                    if len(np.unique(y[indices])) == len(self.classes_):
                        break
                    indices = rng.integers(0, n_samples, size=n_samples)
                else:
                    indices = np.arange(n_samples)
            else:
                indices = np.arange(n_samples)
            plans.append((seed, indices))

        workers = self._resolve_n_jobs()
        if workers > 1:
            try:
                self.estimators_ = self._fit_parallel(plans, params, X, y, workers)
            except (OSError, BrokenExecutor):
                # Restricted environments (no fork/spawn, workers killed by
                # the sandbox or OOM) fall back to the sequential path; the
                # result is identical either way.
                self.estimators_ = self._fit_sequential(plans, params, X, y)
        else:
            self.estimators_ = self._fit_sequential(plans, params, X, y)
        return self

    @staticmethod
    def _fit_sequential(plans, params, X, y) -> list[DecisionTreeClassifier]:
        # One bootstrap copy alive at a time, like the pre-parallel loop.
        return [_fit_one_tree((params, seed, X[indices], y[indices])) for seed, indices in plans]

    @staticmethod
    def _fit_parallel(plans, params, X, y, workers: int) -> list[DecisionTreeClassifier]:
        """Fit trees in a process pool, bounding in-flight bootstrap copies.

        Each submitted task ships its own resampled ``(X, y)`` to the
        worker; a sliding window of ``2 x workers`` outstanding tasks keeps
        peak memory proportional to the pool size, not ``n_estimators``.
        """
        fitted: list[Optional[DecisionTreeClassifier]] = [None] * len(plans)
        window = workers * 2
        with ProcessPoolExecutor(max_workers=min(workers, len(plans))) as pool:
            pending: dict = {}
            submitted = 0
            while submitted < len(plans) or pending:
                while submitted < len(plans) and len(pending) < window:
                    seed, indices = plans[submitted]
                    future = pool.submit(_fit_one_tree, (params, seed, X[indices], y[indices]))
                    pending[future] = submitted
                    submitted += 1
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    fitted[pending.pop(future)] = future.result()
        return fitted

    def _resolve_n_jobs(self) -> int:
        if self.n_jobs is None:
            return 1
        if self.n_jobs == -1:
            return os.cpu_count() or 1
        if self.n_jobs <= 0:
            raise ModelError(f"n_jobs must be positive or -1, got {self.n_jobs}")
        return self.n_jobs

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Averaged class-probability estimates over all trees."""
        if not self.estimators_ or self.classes_ is None:
            raise ModelError("RandomForestClassifier.predict_proba called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        accumulated = np.zeros((len(X), len(self.classes_)), dtype=np.float64)
        for tree in self.estimators_:
            tree_probabilities = tree.predict_proba(X)
            # Trees may have seen only a subset of classes (bootstrap edge
            # case); align their columns onto the forest's class order.
            if len(tree.classes_) == len(self.classes_):
                accumulated += tree_probabilities
            else:
                column_map = np.searchsorted(self.classes_, tree.classes_)
                accumulated[:, column_map] += tree_probabilities
        return accumulated / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (majority probability)."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def feature_importances(self) -> np.ndarray:
        """Average split-based feature importances over the trees."""
        if not self.estimators_:
            raise ModelError("forest is not fitted")
        total = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.estimators_:
            total += tree.feature_importances()
        return total / len(self.estimators_)

    def compile(self) -> CompiledForest:
        """Flatten the fitted forest for vectorized batch prediction.

        The compiled forest's ``predict_proba`` matches the interpreted
        path bitwise (see :mod:`repro.ml.compiled`) while replacing the
        per-sample Python node walk with level-synchronous array gathers.
        """
        if not self.estimators_ or self.classes_ is None:
            raise ModelError("RandomForestClassifier.compile called before fit")
        return CompiledForest.from_estimators(
            self.estimators_, classes=self.classes_, n_features=self.n_features_
        )
