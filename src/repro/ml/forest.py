"""Random Forest classifier (Breiman 2001): bagged CART trees."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.exceptions import ModelError
from repro.ml.tree import DecisionTreeClassifier


@dataclass
class RandomForestClassifier:
    """An ensemble of CART trees trained on bootstrap samples.

    This mirrors the classifier the paper uses for the per-device-type
    binary models.  Each tree is grown on a bootstrap resample of the
    training set and considers a random ``sqrt(d)`` subset of features at
    every split; predictions average the trees' leaf class distributions.

    Attributes:
        n_estimators: number of trees.
        max_depth: per-tree depth limit (None = unbounded).
        min_samples_split / min_samples_leaf: per-tree split constraints.
        max_features: per-split feature subsample ("sqrt" by default).
        bootstrap: draw bootstrap resamples (True) or use the full set.
        random_state: seed controlling bootstrap draws and feature subsampling.
    """

    n_estimators: int = 10
    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Union[str, int, float, None] = "sqrt"
    bootstrap: bool = True
    random_state: Optional[int] = None

    estimators_: list[DecisionTreeClassifier] = field(default_factory=list, repr=False, compare=False)
    classes_: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    n_features_: int = field(default=0, repr=False, compare=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the forest on samples ``X`` (n, d) and labels ``y`` (n,)."""
        if self.n_estimators <= 0:
            raise ModelError(f"n_estimators must be positive, got {self.n_estimators}")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ModelError(f"X and y disagree on sample count: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ModelError("cannot fit a forest on an empty dataset")

        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        self.estimators_ = []
        n_samples = len(X)
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
                # Bootstrap resamples can miss a class entirely; redraw a few
                # times and fall back to the full set to keep the binary
                # classifiers well defined.
                for _attempt in range(5):
                    if len(np.unique(y[indices])) == len(self.classes_):
                        break
                    indices = rng.integers(0, n_samples, size=n_samples)
                else:
                    indices = np.arange(n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Averaged class-probability estimates over all trees."""
        if not self.estimators_ or self.classes_ is None:
            raise ModelError("RandomForestClassifier.predict_proba called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        accumulated = np.zeros((len(X), len(self.classes_)), dtype=np.float64)
        for tree in self.estimators_:
            tree_probabilities = tree.predict_proba(X)
            # Trees may have seen only a subset of classes (bootstrap edge
            # case); align their columns onto the forest's class order.
            if len(tree.classes_) == len(self.classes_):
                accumulated += tree_probabilities
            else:
                column_map = np.searchsorted(self.classes_, tree.classes_)
                accumulated[:, column_map] += tree_probabilities
        return accumulated / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (majority probability)."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def feature_importances(self) -> np.ndarray:
        """Average split-based feature importances over the trees."""
        if not self.estimators_:
            raise ModelError("forest is not fitted")
        total = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.estimators_:
            total += tree.feature_importances()
        return total / len(self.estimators_)
