"""Classification metrics: accuracy, confusion matrix, precision/recall/F1."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ModelError


def _validate(y_true: Sequence, y_pred: Sequence) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    if len(true) != len(pred):
        raise ModelError(f"y_true and y_pred disagree on length: {len(true)} vs {len(pred)}")
    if len(true) == 0:
        raise ModelError("metrics require at least one sample")
    return true, pred


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of predictions equal to the ground truth."""
    true, pred = _validate(y_true, y_pred)
    return float(np.mean(true == pred))


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Optional[Sequence] = None
) -> tuple[np.ndarray, list]:
    """Confusion matrix ``M[i, j]`` = count of true label i predicted as j.

    Returns the matrix and the label order used for its rows/columns.
    Labels appearing only in predictions (e.g. the "unknown" pseudo-type)
    are included after the true labels.
    """
    true, pred = _validate(y_true, y_pred)
    if labels is None:
        label_list = sorted(set(true.tolist()) | set(pred.tolist()), key=str)
    else:
        label_list = list(labels)
    index = {label: position for position, label in enumerate(label_list)}
    matrix = np.zeros((len(label_list), len(label_list)), dtype=np.int64)
    for actual, predicted in zip(true.tolist(), pred.tolist()):
        if actual in index and predicted in index:
            matrix[index[actual], index[predicted]] += 1
    return matrix, label_list


def per_class_accuracy(y_true: Sequence, y_pred: Sequence) -> dict:
    """Ratio of correct identification per true class (Fig. 5 of the paper)."""
    true, pred = _validate(y_true, y_pred)
    result: dict = {}
    for label in sorted(set(true.tolist()), key=str):
        mask = true == label
        result[label] = float(np.mean(pred[mask] == label))
    return result


def precision_score(y_true: Sequence, y_pred: Sequence, label) -> float:
    """Precision of ``label``: TP / (TP + FP).  Returns 0 when never predicted."""
    true, pred = _validate(y_true, y_pred)
    predicted_positive = pred == label
    if not np.any(predicted_positive):
        return 0.0
    return float(np.mean(true[predicted_positive] == label))


def recall_score(y_true: Sequence, y_pred: Sequence, label) -> float:
    """Recall of ``label``: TP / (TP + FN).  Returns 0 when label never occurs."""
    true, pred = _validate(y_true, y_pred)
    actual_positive = true == label
    if not np.any(actual_positive):
        return 0.0
    return float(np.mean(pred[actual_positive] == label))


def f1_score(y_true: Sequence, y_pred: Sequence, label) -> float:
    """Harmonic mean of precision and recall for ``label``."""
    precision = precision_score(y_true, y_pred, label)
    recall = recall_score(y_true, y_pred, label)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def classification_report(y_true: Sequence, y_pred: Sequence) -> str:
    """A plain-text per-class precision/recall/F1 report."""
    true, _ = _validate(y_true, y_pred)
    labels = sorted(set(true.tolist()), key=str)
    width = max(len(str(label)) for label in labels)
    lines = [f"{'label'.ljust(width)}  precision  recall  f1      support"]
    for label in labels:
        support = int(np.sum(np.asarray(y_true) == label))
        lines.append(
            f"{str(label).ljust(width)}  "
            f"{precision_score(y_true, y_pred, label):9.3f}  "
            f"{recall_score(y_true, y_pred, label):6.3f}  "
            f"{f1_score(y_true, y_pred, label):6.3f}  {support:7d}"
        )
    lines.append(f"{'accuracy'.ljust(width)}  {accuracy_score(y_true, y_pred):9.3f}")
    return "\n".join(lines)
