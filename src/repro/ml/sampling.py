"""Sampling utilities: bootstrap, negative subsampling, train/test splits."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ModelError


def bootstrap_indices(
    n_samples: int, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Indices of a bootstrap resample (sampling with replacement)."""
    if n_samples <= 0:
        raise ModelError("bootstrap requires at least one sample")
    # repro-lint: disable=no-unseeded-rng -- documented exploratory default: callers wanting reproducible draws pass their own seeded generator
    rng = rng or np.random.default_rng()
    return rng.integers(0, n_samples, size=size or n_samples)


def negative_subsample(
    negative_indices: Sequence[int],
    positive_count: int,
    ratio: float = 10.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Select a bounded random subset of negative samples.

    The paper trains each per-type classifier with all ``n`` fingerprints of
    the target type as the positive class and ``10 * n`` randomly selected
    fingerprints of other types as the negative class, to avoid imbalanced
    class learning issues.  ``ratio`` is that multiplier.
    """
    if positive_count <= 0:
        raise ModelError("positive_count must be positive")
    if ratio <= 0:
        raise ModelError("ratio must be positive")
    negatives = np.asarray(list(negative_indices))
    if len(negatives) == 0:
        raise ModelError("no negative samples available")
    # repro-lint: disable=no-unseeded-rng -- documented exploratory default: callers wanting reproducible draws pass their own seeded generator
    rng = rng or np.random.default_rng()
    target = int(round(ratio * positive_count))
    if target >= len(negatives):
        return negatives.copy()
    chosen = rng.choice(len(negatives), size=target, replace=False)
    return negatives[chosen]


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.25,
    stratify: Optional[Sequence] = None,
    rng: Optional[np.random.Generator] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (optionally stratified) train/test index split."""
    if not 0 < test_fraction < 1:
        raise ModelError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if n_samples < 2:
        raise ModelError("train_test_split requires at least two samples")
    # repro-lint: disable=no-unseeded-rng -- documented exploratory default: callers wanting reproducible draws pass their own seeded generator
    rng = rng or np.random.default_rng()

    if stratify is None:
        permutation = rng.permutation(n_samples)
        test_size = max(1, int(round(test_fraction * n_samples)))
        return np.sort(permutation[test_size:]), np.sort(permutation[:test_size])

    labels = np.asarray(stratify)
    if len(labels) != n_samples:
        raise ModelError("stratify labels must match n_samples")
    test_indices: list[int] = []
    for label in np.unique(labels):
        members = np.nonzero(labels == label)[0]
        members = members[rng.permutation(len(members))]
        take = max(1, int(round(test_fraction * len(members))))
        test_indices.extend(members[:take].tolist())
    test = np.array(sorted(test_indices))
    mask = np.ones(n_samples, dtype=bool)
    mask[test] = False
    return np.nonzero(mask)[0], test
