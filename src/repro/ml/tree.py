"""CART decision tree classifier (Gini impurity, numeric features)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ml.compiled import CompiledTree


@dataclass
class _Node:
    """A single tree node; leaves carry class-probability vectors."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    probabilities: Optional[np.ndarray] = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts with the given row totals."""
    with np.errstate(divide="ignore", invalid="ignore"):
        proportions = counts / totals[:, None]
        impurity = 1.0 - np.sum(proportions**2, axis=1)
    impurity[totals == 0] = 0.0
    return impurity


@dataclass
class DecisionTreeClassifier:
    """A CART classification tree.

    Splits are exact threshold splits (``x <= t``) chosen to minimise the
    weighted Gini impurity of the children.  ``max_features`` limits the
    number of candidate features examined per node, which is how the Random
    Forest injects feature randomness.

    Attributes:
        max_depth: maximum tree depth (None means unbounded).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: minimum samples required in each child.
        max_features: number of features considered per split; ``"sqrt"``,
            ``"log2"``, an int, a float fraction, or None for all features.
        random_state: seed for the per-node feature subsampling.
    """

    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Union[str, int, float, None] = None
    random_state: Optional[int] = None

    _root: Optional[_Node] = field(default=None, repr=False, compare=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False, compare=False)
    classes_: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    n_features_: int = field(default=0, repr=False, compare=False)
    node_count_: int = field(default=0, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Fitting.
    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit the tree on samples ``X`` (n, d) and labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ModelError(f"X and y disagree on sample count: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ModelError("cannot fit a tree on an empty dataset")

        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self.node_count_ = 0
        self._root = self._build(X, encoded.astype(np.int64), depth=0)
        return self

    def _resolve_max_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(math.sqrt(self.n_features_)))
            if self.max_features == "log2":
                return max(1, int(math.log2(self.n_features_)))
            raise ModelError(f"unknown max_features value: {self.max_features!r}")
        if isinstance(self.max_features, float):
            return max(1, min(self.n_features_, int(self.max_features * self.n_features_)))
        return max(1, min(self.n_features_, int(self.max_features)))

    def _leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        self.node_count_ += 1
        return _Node(probabilities=counts / counts.sum(), n_samples=len(y))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n_samples = len(y)
        if (
            n_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(y)) == 1
        ):
            return self._leaf(y)

        feature, threshold = self._best_split(X, y)
        if feature < 0:
            return self._leaf(y)

        mask = X[:, feature] <= threshold
        left_count = int(mask.sum())
        if left_count < self.min_samples_leaf or n_samples - left_count < self.min_samples_leaf:
            return self._leaf(y)

        node = _Node(feature=feature, threshold=threshold, n_samples=n_samples)
        self.node_count_ += 1
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
        n_samples = len(y)
        n_classes = len(self.classes_)
        n_candidates = self._resolve_max_features()
        if n_candidates < self.n_features_:
            candidates = self._rng.choice(self.n_features_, size=n_candidates, replace=False)
        else:
            candidates = np.arange(self.n_features_)

        one_hot = np.zeros((n_samples, n_classes), dtype=np.float64)
        one_hot[np.arange(n_samples), y] = 1.0

        best_feature = -1
        best_threshold = 0.0
        best_impurity = np.inf
        min_leaf = self.min_samples_leaf

        for feature in candidates:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            cumulative = np.cumsum(one_hot[order], axis=0)

            # Candidate split positions: between consecutive distinct values.
            boundaries = np.nonzero(sorted_values[1:] != sorted_values[:-1])[0]
            if len(boundaries) == 0:
                continue
            left_sizes = boundaries + 1
            valid = (left_sizes >= min_leaf) & (n_samples - left_sizes >= min_leaf)
            if not np.any(valid):
                continue
            boundaries = boundaries[valid]
            left_sizes = left_sizes[valid]

            left_counts = cumulative[boundaries]
            right_counts = cumulative[-1] - left_counts
            right_sizes = n_samples - left_sizes

            left_gini = _gini_from_counts(left_counts, left_sizes.astype(np.float64))
            right_gini = _gini_from_counts(right_counts, right_sizes.astype(np.float64))
            weighted = (left_sizes * left_gini + right_sizes * right_gini) / n_samples

            index = int(np.argmin(weighted))
            if weighted[index] < best_impurity - 1e-12:
                best_impurity = float(weighted[index])
                best_feature = int(feature)
                position = boundaries[index]
                best_threshold = float((sorted_values[position] + sorted_values[position + 1]) / 2.0)

        return best_feature, best_threshold

    # ------------------------------------------------------------------ #
    # Prediction.
    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, shape ``(n, n_classes)``."""
        if self._root is None or self.classes_ is None:
            raise ModelError("DecisionTreeClassifier.predict_proba called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"feature count mismatch: model has {self.n_features_}, input has {X.shape[1]}"
            )
        output = np.empty((len(X), len(self.classes_)), dtype=np.float64)
        for index, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[index] = node.probabilities
        return output

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def depth(self) -> int:
        """The depth of the fitted tree (0 for a single leaf).

        Walks iteratively with an explicit stack: a pathological tree (e.g.
        one grown on adversarially ordered data with no ``max_depth``) can
        be deeper than Python's recursion limit.
        """
        if self._root is None:
            raise ModelError("tree is not fitted")
        deepest = 0
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    def feature_importances(self) -> np.ndarray:
        """Split-count based feature importances (normalised to sum to 1).

        Iterative for the same reason as :attr:`depth`: unbounded trees may
        exceed the recursion limit.
        """
        if self._root is None:
            raise ModelError("tree is not fitted")
        counts = np.zeros(self.n_features_, dtype=np.float64)
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            counts[node.feature] += node.n_samples
            stack.append(node.left)
            stack.append(node.right)
        total = counts.sum()
        return counts / total if total > 0 else counts

    def compile(self) -> "CompiledTree":
        """Flatten the fitted tree for vectorized batch prediction.

        See :mod:`repro.ml.compiled`; the compiled tree's ``predict_proba``
        is bitwise-identical to the interpreted walk.
        """
        from repro.ml.compiled import CompiledTree

        return CompiledTree.from_tree(self)
