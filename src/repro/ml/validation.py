"""Stratified k-fold cross-validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError


@dataclass
class StratifiedKFold:
    """Stratified k-fold splitter.

    Every fold receives approximately the same per-class sample proportions
    as the full dataset.  The paper evaluates identification with stratified
    10-fold cross-validation repeated 10 times; repetition is obtained by
    creating splitters with different ``random_state`` values.
    """

    n_splits: int = 10
    shuffle: bool = True
    random_state: Optional[int] = None

    def split(self, labels: Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        labels = np.asarray(labels)
        if self.n_splits < 2:
            raise ModelError(f"n_splits must be at least 2, got {self.n_splits}")
        if len(labels) < self.n_splits:
            raise ModelError(
                f"cannot split {len(labels)} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.random_state)

        fold_of_sample = np.empty(len(labels), dtype=np.int64)
        for label in np.unique(labels):
            members = np.nonzero(labels == label)[0]
            if self.shuffle:
                members = members[rng.permutation(len(members))]
            # Round-robin assignment keeps folds balanced per class.
            fold_of_sample[members] = np.arange(len(members)) % self.n_splits

        for fold in range(self.n_splits):
            test_mask = fold_of_sample == fold
            if not np.any(test_mask):
                continue
            yield np.nonzero(~test_mask)[0], np.nonzero(test_mask)[0]


def cross_val_predict(
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    X: np.ndarray,
    y: Sequence,
    n_splits: int = 10,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Out-of-fold predictions for every sample.

    ``fit_predict(X_train, y_train, X_test)`` must return predictions for
    ``X_test``; this helper stitches the per-fold predictions back into the
    original sample order.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    predictions = np.empty(len(y), dtype=object)
    splitter = StratifiedKFold(n_splits=n_splits, random_state=random_state)
    for train_indices, test_indices in splitter.split(y):
        fold_predictions = fit_predict(X[train_indices], y[train_indices], X[test_indices])
        for position, prediction in zip(test_indices, fold_predictions):
            predictions[position] = prediction
    return predictions
