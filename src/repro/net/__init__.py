"""Network packet substrate.

This subpackage is a self-contained replacement for the parts of scapy used
by the original IoT SENTINEL implementation: binary dissection and
serialisation of the protocol layers that matter for the Table-I features,
plus libpcap file reading/writing so that real capture files can be ingested.
"""

from repro.net.addresses import MACAddress, ip_to_int, is_ipv4, is_ipv6
from repro.net.batch import PacketBatch
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.net.pcap import CapturedPacket, PcapReader, PcapWriter, read_pcap, write_pcap

__all__ = [
    "MACAddress",
    "ip_to_int",
    "is_ipv4",
    "is_ipv6",
    "FlowKey",
    "Packet",
    "PacketBatch",
    "CapturedPacket",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]
