"""MAC and IP address helpers used throughout the packet substrate."""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2}[:-]){5}[0-9A-Fa-f]{2}$")


@dataclass(frozen=True, order=True)
class MACAddress:
    """A 48-bit IEEE 802 MAC address.

    Instances are immutable, hashable and comparable, so they can be used as
    dictionary keys (the Security Gateway keys its enforcement rules and
    device records by MAC address, as the paper does).
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 48:
            raise ValueError(f"MAC address out of range: {self.value!r}")

    @classmethod
    def from_string(cls, text: str) -> "MACAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` or ``AA-BB-CC-DD-EE-FF`` notation."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address string: {text!r}")
        digits = text.replace("-", ":").split(":")
        return cls(int("".join(digits), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MACAddress":
        """Parse a 6-byte big-endian MAC address."""
        if len(raw) != 6:
            raise PacketDecodeError(f"MAC address must be 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The all-ones broadcast address ``ff:ff:ff:ff:ff:ff``."""
        return cls((1 << 48) - 1)

    @classmethod
    def zero(cls) -> "MACAddress":
        """The all-zero address ``00:00:00:00:00:00``."""
        return cls(0)

    def to_bytes(self) -> bytes:
        """Serialise to the 6-byte wire format."""
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (least significant bit of first octet) is set."""
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        """True when the locally-administered bit of the first octet is set."""
        return bool((self.value >> 41) & 0x01)

    @property
    def oui(self) -> str:
        """The vendor OUI prefix, e.g. ``"b0:c5:54"``."""
        return str(self)[:8]

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


def is_ipv4(text: str) -> bool:
    """Return True when ``text`` is a valid dotted-quad IPv4 address."""
    try:
        ipaddress.IPv4Address(text)
    except (ipaddress.AddressValueError, ValueError):
        return False
    return True


def is_ipv6(text: str) -> bool:
    """Return True when ``text`` is a valid IPv6 address."""
    try:
        ipaddress.IPv6Address(text)
    except (ipaddress.AddressValueError, ValueError):
        return False
    return True


def ip_to_int(text: str) -> int:
    """Convert an IPv4 or IPv6 address string to its integer representation."""
    return int(ipaddress.ip_address(text))


def ipv4_to_bytes(text: str) -> bytes:
    """Serialise a dotted-quad IPv4 address to 4 bytes."""
    return ipaddress.IPv4Address(text).packed


def ipv4_from_bytes(raw: bytes) -> str:
    """Parse 4 bytes into a dotted-quad IPv4 address string."""
    if len(raw) != 4:
        raise PacketDecodeError(f"IPv4 address must be 4 bytes, got {len(raw)}")
    return str(ipaddress.IPv4Address(raw))


def ipv6_to_bytes(text: str) -> bytes:
    """Serialise an IPv6 address to 16 bytes."""
    return ipaddress.IPv6Address(text).packed


def ipv6_from_bytes(raw: bytes) -> str:
    """Parse 16 bytes into a canonical IPv6 address string."""
    if len(raw) != 16:
        raise PacketDecodeError(f"IPv6 address must be 16 bytes, got {len(raw)}")
    return str(ipaddress.IPv6Address(raw))


def is_private_ipv4(text: str) -> bool:
    """True when the IPv4 address lies in an RFC 1918 private range."""
    return ipaddress.IPv4Address(text).is_private


def is_multicast_ip(text: str) -> bool:
    """True when the address (v4 or v6) is a multicast address."""
    return ipaddress.ip_address(text).is_multicast
