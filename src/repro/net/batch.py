"""Columnar packet batches: the struct-of-arrays view of the hot path.

The per-packet datapath dissects every frame into a :class:`Packet` object
tree and then reads ~20 attributes per packet to build one feature row at a
time.  At streaming rates the object churn dominates the pipeline, so the
batch-first datapath moves *columns* instead: a :class:`PacketBatch` holds
exactly the fields the Table-I feature set and the assembler consume --
timestamps, source MACs, protocol flags, ports, sizes, destination-IP
tokens -- as numpy arrays over a whole batch of packets.

Two constructors cover the two stream shapes:

* :meth:`PacketBatch.from_packets` runs one tight attribute-read pass over
  already-dissected :class:`Packet` objects (simulator traces, generic
  sources).
* :meth:`PacketBatch.from_frames` parses raw Ethernet frames (pcap replay)
  with direct byte-offset reads -- no layer objects are built on the fast
  path.  Any frame the fast parser cannot prove it handles exactly like
  :meth:`Packet.dissect` (LLC, EAPOL, IP options, BOOTP ports, VLAN,
  truncated headers) falls back to the full dissector for that one frame,
  so the columns are *always* equal to what the per-packet path would
  have produced (the differential suite asserts this).

The per-packet API stays available as a thin view: :meth:`PacketBatch.packet`
returns the backing ``Packet`` (dissecting the raw frame lazily when the
batch was built from frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.net.addresses import ipv6_from_bytes
from repro.net.layers.dhcp import DHCPMessage
from repro.net.packet import Packet
from repro.net.pcap import CapturedPacket

_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_ARP = 0x0806
_ETHERTYPE_IPV6 = 0x86DD
_MAX_8023_LENGTH = 0x05DC

# Bit positions of the packed per-packet flag word built by both parsers.
_F_ARP = 1 << 0
_F_LLC = 1 << 1
_F_IP = 1 << 2
_F_ICMP = 1 << 3
_F_ICMPV6 = 1 << 4
_F_EAPOL = 1 << 5
_F_TCP = 1 << 6
_F_UDP = 1 << 7
_F_PADDING = 1 << 8
_F_ROUTER_ALERT = 1 << 9
_F_RAW_DATA = 1 << 10
_F_APP_NOT_DHCP = 1 << 11

# UDP ports whose application layer influences a feature beyond "payload
# present": BOOTP frames are only DHCP when the magic cookie parses, so the
# fast frame parser defers those to the full dissector.
_BOOTP_PORTS = (67, 68)


def _packet_fields(packet: Packet) -> tuple[int, int, int, int, Optional[str]]:
    """(flags, src_port, dst_port, size, dst_ip) of one dissected packet.

    This is the single definition both constructors share: the attribute
    reads mirror :class:`~repro.features.packet_features.PacketFeatureExtractor`
    field for field, so a batch built from objects and a batch built from
    the frames those objects serialise to carry identical columns.
    """
    tcp = packet.tcp
    udp = packet.udp
    ipv4 = packet.ipv4
    ipv6 = packet.ipv6
    app = packet.application
    flags = (
        (packet.arp is not None)
        | ((packet.llc is not None) << 1)
        | ((ipv4 is not None or ipv6 is not None) << 2)
        | ((packet.icmp is not None) << 3)
        | ((packet.icmpv6 is not None) << 4)
        | ((packet.eapol is not None) << 5)
        | ((tcp is not None) << 6)
        | ((udp is not None) << 7)
    )
    if ipv4 is not None:
        dst_ip: Optional[str] = ipv4.dst
        if ipv4.options:
            flags |= ipv4.has_padding_option << 8
            flags |= ipv4.has_router_alert_option << 9
    elif ipv6 is not None:
        dst_ip = ipv6.dst
        if ipv6.hop_by_hop_options:
            flags |= ipv6.has_padding_option << 8
            flags |= ipv6.has_router_alert_option << 9
    else:
        dst_ip = None
    if app is not None:
        flags |= _F_RAW_DATA
        if isinstance(app, DHCPMessage) and not app.is_dhcp:
            flags |= _F_APP_NOT_DHCP
    else:
        transport_payload = (
            tcp.payload if tcp is not None else (udp.payload if udp is not None else b"")
        )
        if transport_payload or (packet.payload and packet.arp is None):
            flags |= _F_RAW_DATA
    if tcp is not None:
        src_port, dst_port = tcp.src_port, tcp.dst_port
    elif udp is not None:
        src_port, dst_port = udp.src_port, udp.dst_port
    else:
        src_port = dst_port = -1
    size = packet.wire_length or len(packet.to_bytes())
    return flags, src_port, dst_port, size, dst_ip


def _fast_frame_fields(data: bytes) -> Optional[tuple[int, int, int, Optional[str]]]:
    """(flags, src_port, dst_port, dst_ip) straight from frame bytes.

    Returns ``None`` whenever the frame needs the full dissector to match
    :meth:`Packet.dissect` exactly -- the caller then takes the object
    path for that frame.  The byte offsets and length clamps below mirror
    the layer parsers (IPv4 total-length clamp, UDP length clamp, TCP data
    offset, IPv6's deliberately *unclamped* payload).
    """
    if len(data) < 34:
        # Too short for Ethernet + minimal IP: LLC, ARP, EAPOL, runts and
        # decode errors all live here -- let the dissector decide.
        return None
    ethertype = (data[12] << 8) | data[13]
    if ethertype == _ETHERTYPE_IPV4:
        if data[14] != 0x45:
            return None  # options (IHL > 5) or not version 4
        total_length = (data[16] << 8) | data[17]
        rest_len = len(data) - 14
        l4_end = min(rest_len, total_length) if total_length >= 20 else rest_len
        l4_len = max(0, l4_end - 20)
        l4_off = 34
        protocol = data[23]
        dst_ip = "%d.%d.%d.%d" % (data[30], data[31], data[32], data[33])
        flags = _F_IP
    elif ethertype == _ETHERTYPE_IPV6:
        if len(data) < 54 or (data[14] >> 4) != 6:
            return None
        protocol = data[20]
        if protocol == 0:  # hop-by-hop extension header: options territory
            return None
        dst_ip = ipv6_from_bytes(data[38:54])
        # IPv6Header.from_bytes does not clamp by payload_length: Ethernet
        # padding stays in the transport payload, exactly as scalar.
        l4_off = 54
        l4_len = len(data) - 54
        flags = _F_IP
    elif ethertype == _ETHERTYPE_ARP:
        rest = len(data) - 14
        if rest < 28 or data[18] != 6 or data[19] != 4:
            return None  # ARPPacket.from_bytes would reject it
        return _F_ARP, -1, -1, None
    else:
        if ethertype <= _MAX_8023_LENGTH or ethertype == 0x888E:
            return None  # LLC and EAPOL payload semantics: full dissect
        # Unknown EtherType: dissect keeps the bytes as raw payload.
        flags = _F_RAW_DATA if len(data) > 14 else 0
        return flags, -1, -1, None

    if protocol == 6:  # TCP
        if l4_len < 20:
            return None
        offset = (data[l4_off + 12] >> 4) * 4
        if offset < 20 or offset > l4_len:
            return None
        flags |= _F_TCP
        if l4_len - offset > 0:
            flags |= _F_RAW_DATA
    elif protocol == 17:  # UDP
        if l4_len < 8:
            return None
        udp_length = (data[l4_off + 4] << 8) | data[l4_off + 5]
        if udp_length < 8:
            return None
        flags |= _F_UDP
        if max(8, min(l4_len, udp_length)) - 8 > 0:
            flags |= _F_RAW_DATA
    elif protocol == 1 and ethertype == _ETHERTYPE_IPV4:  # ICMP
        if l4_len < 8:
            return None
        return flags | _F_ICMP, -1, -1, dst_ip
    elif protocol == 58 and ethertype == _ETHERTYPE_IPV6:  # ICMPv6
        if l4_len < 4:
            return None
        return flags | _F_ICMPV6, -1, -1, dst_ip
    else:
        # Unhandled layer-4 protocol: the dissector keeps the transport
        # bytes as raw payload.
        if l4_len > 0:
            flags |= _F_RAW_DATA
        return flags, -1, -1, dst_ip

    src_port = (data[l4_off] << 8) | data[l4_off + 1]
    dst_port = (data[l4_off + 2] << 8) | data[l4_off + 3]
    if src_port in _BOOTP_PORTS or dst_port in _BOOTP_PORTS:
        return None  # the DHCP-vs-BOOTP feature needs the parsed payload
    return flags, src_port, dst_port, dst_ip


@dataclass
class PacketBatch:
    """A batch of packets as parallel columns (one array element per packet).

    All arrays share the batch length; ``dst_ips`` is a plain list because
    destination tokens are compared, not computed on (``None`` marks a
    packet without an IP layer).  ``flags`` packs the twelve boolean
    columns into one int64 word per packet (bit layout: the ``_F_*``
    constants of this module); the named accessors unpack lazily.
    """

    timestamps: np.ndarray
    src_macs: np.ndarray
    flags: np.ndarray
    src_ports: np.ndarray
    dst_ports: np.ndarray
    sizes: np.ndarray
    dst_ips: list
    packets: Optional[list] = None
    frames: Optional[list] = None

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """One attribute-read pass over dissected packet objects."""
        timestamps = []
        macs = []
        flag_words = []
        src_ports = []
        dst_ports = []
        sizes = []
        dst_ips = []
        for packet in packets:
            flags, src_port, dst_port, size, dst_ip = _packet_fields(packet)
            timestamps.append(packet.timestamp)
            macs.append(packet.ethernet.src.value)
            flag_words.append(flags)
            src_ports.append(src_port)
            dst_ports.append(dst_port)
            sizes.append(size)
            dst_ips.append(dst_ip)
        return cls(
            timestamps=np.array(timestamps, dtype=np.float64),
            src_macs=np.array(macs, dtype=np.int64),
            flags=np.array(flag_words, dtype=np.int64),
            src_ports=np.array(src_ports, dtype=np.int64),
            dst_ports=np.array(dst_ports, dtype=np.int64),
            sizes=np.array(sizes, dtype=np.int64),
            dst_ips=dst_ips,
            packets=list(packets),
        )

    @classmethod
    def from_frames(
        cls, frames: Sequence[Union[CapturedPacket, tuple]]
    ) -> "PacketBatch":
        """Struct-batched parse of raw captured frames (pcap fast path).

        Each frame is either a :class:`CapturedPacket` or a
        ``(timestamp, data, original_length)`` tuple.  Frames the fast
        parser defers are dissected individually -- feature columns are
        bitwise-equal to ``from_packets([frame.dissect() ...])`` either
        way, just without building layer objects for the common case.
        """
        timestamps = []
        macs = []
        flag_words = []
        src_ports = []
        dst_ports = []
        sizes = []
        dst_ips = []
        kept_frames = []
        for frame in frames:
            if isinstance(frame, CapturedPacket):
                timestamp, data, original = frame.timestamp, frame.data, frame.original_length
            else:
                timestamp, data, original = frame
            kept_frames.append((timestamp, data, original))
            fast = _fast_frame_fields(data)
            if fast is not None:
                flags, src_port, dst_port, dst_ip = fast
                size = original or len(data)
                mac_value = int.from_bytes(data[6:12], "big")
            else:
                packet = Packet.dissect(data, timestamp=timestamp)
                if original:
                    packet.wire_length = original
                flags, src_port, dst_port, size, dst_ip = _packet_fields(packet)
                mac_value = packet.ethernet.src.value
            timestamps.append(timestamp)
            macs.append(mac_value)
            flag_words.append(flags)
            src_ports.append(src_port)
            dst_ports.append(dst_port)
            sizes.append(size)
            dst_ips.append(dst_ip)
        return cls(
            timestamps=np.array(timestamps, dtype=np.float64),
            src_macs=np.array(macs, dtype=np.int64),
            flags=np.array(flag_words, dtype=np.int64),
            src_ports=np.array(src_ports, dtype=np.int64),
            dst_ports=np.array(dst_ports, dtype=np.int64),
            sizes=np.array(sizes, dtype=np.int64),
            dst_ips=dst_ips,
            frames=kept_frames,
        )

    # ------------------------------------------------------------------ #
    # Column accessors (unpack the flag word on demand).
    # ------------------------------------------------------------------ #
    def _flag(self, bit: int) -> np.ndarray:
        return (self.flags & bit) != 0

    @property
    def arp(self) -> np.ndarray:
        return self._flag(_F_ARP)

    @property
    def llc(self) -> np.ndarray:
        return self._flag(_F_LLC)

    @property
    def ip(self) -> np.ndarray:
        return self._flag(_F_IP)

    @property
    def icmp(self) -> np.ndarray:
        return self._flag(_F_ICMP)

    @property
    def icmpv6(self) -> np.ndarray:
        return self._flag(_F_ICMPV6)

    @property
    def eapol(self) -> np.ndarray:
        return self._flag(_F_EAPOL)

    @property
    def tcp(self) -> np.ndarray:
        return self._flag(_F_TCP)

    @property
    def udp(self) -> np.ndarray:
        return self._flag(_F_UDP)

    @property
    def has_padding(self) -> np.ndarray:
        return self._flag(_F_PADDING)

    @property
    def has_router_alert(self) -> np.ndarray:
        return self._flag(_F_ROUTER_ALERT)

    @property
    def raw_data(self) -> np.ndarray:
        return self._flag(_F_RAW_DATA)

    @property
    def app_not_dhcp(self) -> np.ndarray:
        return self._flag(_F_APP_NOT_DHCP)

    # ------------------------------------------------------------------ #
    # Views and reshaping.
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def packet(self, index: int) -> Packet:
        """The per-packet thin view: the backing ``Packet`` at ``index``.

        Batches built from frames dissect lazily and memoise, so casual
        per-packet access does not re-parse on every call.
        """
        if self.packets is None:
            self.packets = [None] * len(self)
        cached = self.packets[index]
        if cached is None:
            if self.frames is None:
                raise IndexError("batch has neither packets nor frames")
            timestamp, data, original = self.frames[index]
            cached = Packet.dissect(data, timestamp=timestamp)
            if original:
                cached.wire_length = original
            self.packets[index] = cached
        return cached

    def iter_packets(self) -> Iterator[Packet]:
        for index in range(len(self)):
            yield self.packet(index)

    def slice(self, start: int, stop: int) -> "PacketBatch":
        """A zero-copy window ``[start, stop)`` (array views, list slices)."""
        return PacketBatch(
            timestamps=self.timestamps[start:stop],
            src_macs=self.src_macs[start:stop],
            flags=self.flags[start:stop],
            src_ports=self.src_ports[start:stop],
            dst_ports=self.dst_ports[start:stop],
            sizes=self.sizes[start:stop],
            dst_ips=self.dst_ips[start:stop],
            packets=self.packets[start:stop] if self.packets is not None else None,
            frames=self.frames[start:stop] if self.frames is not None else None,
        )

    def take(self, indices: np.ndarray, with_backing: bool = True) -> "PacketBatch":
        """The sub-batch at ``indices`` (copies; order follows ``indices``).

        ``with_backing=False`` drops the per-packet objects/frames -- the
        shape worker processes want, so a shard dispatch pickles six flat
        arrays and a string list instead of an object tree.
        """
        index_list = [int(i) for i in indices]
        return PacketBatch(
            timestamps=self.timestamps[indices],
            src_macs=self.src_macs[indices],
            flags=self.flags[indices],
            src_ports=self.src_ports[indices],
            dst_ports=self.dst_ports[indices],
            sizes=self.sizes[indices],
            dst_ips=[self.dst_ips[i] for i in index_list],
            packets=(
                [self.packets[i] for i in index_list]
                if with_backing and self.packets is not None
                else None
            ),
            frames=(
                [self.frames[i] for i in index_list]
                if with_backing and self.frames is not None
                else None
            ),
        )

    def device_runs(self) -> list[tuple[int, np.ndarray]]:
        """Group packet indices by source MAC, in first-appearance order.

        Returns ``(mac_value, indices)`` pairs; each index array is in
        ascending (stream) order, so per-device processing sees packets
        exactly as the per-packet path would.
        """
        n = len(self)
        if n == 0:
            return []
        order = np.argsort(self.src_macs, kind="stable")
        sorted_macs = self.src_macs[order]
        boundaries = np.nonzero(np.diff(sorted_macs))[0] + 1
        groups = np.split(order, boundaries)
        groups.sort(key=lambda idx: idx[0])
        return [(int(self.src_macs[idx[0]]), idx) for idx in groups]


__all__ = ["PacketBatch"]
