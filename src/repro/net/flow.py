"""Flow identification: the 5-tuple key used by the enforcement layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet


@dataclass(frozen=True, order=True)
class FlowKey:
    """A (src IP, dst IP, protocol, src port, dst port) flow identifier.

    The Security Gateway classifies traffic into flows when applying
    enforcement rules; two packets belong to the same flow when their keys
    are equal, and ``reversed_key`` identifies the return direction.
    """

    src_ip: str
    dst_ip: str
    protocol: str
    src_port: int = 0
    dst_port: int = 0

    @classmethod
    def from_packet(cls, packet: Packet) -> Optional["FlowKey"]:
        """Derive the flow key of a packet, or None for non-IP traffic."""
        if not packet.has_ip:
            return None
        if packet.tcp is not None:
            protocol = "tcp"
        elif packet.udp is not None:
            protocol = "udp"
        elif packet.icmp is not None:
            protocol = "icmp"
        elif packet.icmpv6 is not None:
            protocol = "icmpv6"
        else:
            protocol = "ip"
        return cls(
            src_ip=packet.src_ip or "",
            dst_ip=packet.dst_ip or "",
            protocol=protocol,
            src_port=packet.src_port or 0,
            dst_port=packet.dst_port or 0,
        )

    @property
    def reversed_key(self) -> "FlowKey":
        """The key of the opposite direction of this flow."""
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def __str__(self) -> str:
        return f"{self.protocol}:{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
