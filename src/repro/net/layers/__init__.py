"""Protocol layer dissectors and builders.

Every layer is a small dataclass with a ``to_bytes`` method and a
``from_bytes`` classmethod implementing the wire format.  Only the fields
needed by the IoT SENTINEL feature extractor (Table I of the paper) and by
the traffic simulator are modelled, but serialisation round-trips exactly.
"""

from repro.net.layers.arp import ARPPacket
from repro.net.layers.dhcp import DHCPMessage, DHCPOption
from repro.net.layers.dns import DNSMessage, DNSQuestion, DNSResourceRecord
from repro.net.layers.eapol import EAPOLFrame
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.http import HTTPMessage
from repro.net.layers.icmp import ICMPMessage
from repro.net.layers.icmpv6 import ICMPv6Message
from repro.net.layers.ipv4 import IPOption, IPv4Header
from repro.net.layers.ipv6 import IPv6Header
from repro.net.layers.llc import LLCHeader
from repro.net.layers.ntp import NTPMessage
from repro.net.layers.ssdp import SSDPMessage
from repro.net.layers.tcp import TCPSegment
from repro.net.layers.tls import TLSRecord
from repro.net.layers.udp import UDPDatagram

__all__ = [
    "ARPPacket",
    "DHCPMessage",
    "DHCPOption",
    "DNSMessage",
    "DNSQuestion",
    "DNSResourceRecord",
    "EAPOLFrame",
    "ETHERTYPE",
    "EthernetFrame",
    "HTTPMessage",
    "ICMPMessage",
    "ICMPv6Message",
    "IPOption",
    "IPv4Header",
    "IPv6Header",
    "LLCHeader",
    "NTPMessage",
    "SSDPMessage",
    "TCPSegment",
    "TLSRecord",
    "UDPDatagram",
]
