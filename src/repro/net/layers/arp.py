"""ARP packet (RFC 826) for IPv4 over Ethernet."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress, ipv4_from_bytes, ipv4_to_bytes

HEADER_LEN = 28

OP_REQUEST = 1
OP_REPLY = 2


@dataclass
class ARPPacket:
    """An ARP request or reply for IPv4 over Ethernet.

    ARP probes and gratuitous ARP announcements are among the very first
    packets most IoT devices emit after joining a network, so the ARP
    indicator is one of the strongest early-position features.
    """

    operation: int
    sender_mac: MACAddress
    sender_ip: str
    target_mac: MACAddress
    target_ip: str

    @property
    def is_request(self) -> bool:
        return self.operation == OP_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.operation == OP_REPLY

    @property
    def is_gratuitous(self) -> bool:
        """True for gratuitous ARP (sender announces its own address)."""
        return self.sender_ip == self.target_ip

    def to_bytes(self) -> bytes:
        """Serialise the 28-byte ARP payload (Ethernet/IPv4 flavour)."""
        header = struct.pack("!HHBBH", 1, 0x0800, 6, 4, self.operation)
        return (
            header
            + self.sender_mac.to_bytes()
            + ipv4_to_bytes(self.sender_ip)
            + self.target_mac.to_bytes()
            + ipv4_to_bytes(self.target_ip)
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["ARPPacket", bytes]:
        """Parse an ARP packet, returning it and any trailing bytes (padding)."""
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"ARP packet too short: {len(raw)} bytes")
        hw_type, proto_type, hw_len, proto_len, operation = struct.unpack("!HHBBH", raw[:8])
        if hw_len != 6 or proto_len != 4:
            raise PacketDecodeError(
                f"unsupported ARP address lengths: hw={hw_len} proto={proto_len}"
            )
        del hw_type, proto_type
        sender_mac = MACAddress.from_bytes(raw[8:14])
        sender_ip = ipv4_from_bytes(raw[14:18])
        target_mac = MACAddress.from_bytes(raw[18:24])
        target_ip = ipv4_from_bytes(raw[24:28])
        packet = cls(
            operation=operation,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=target_mac,
            target_ip=target_ip,
        )
        return packet, raw[HEADER_LEN:]
