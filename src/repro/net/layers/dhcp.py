"""DHCP / BOOTP message (RFC 2131 / RFC 951)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress, ipv4_from_bytes, ipv4_to_bytes

FIXED_LEN = 236
MAGIC_COOKIE = b"\x63\x82\x53\x63"

OP_REQUEST = 1
OP_REPLY = 2

OPTION_MESSAGE_TYPE = 53
OPTION_REQUESTED_IP = 50
OPTION_PARAMETER_LIST = 55
OPTION_HOSTNAME = 12
OPTION_VENDOR_CLASS = 60
OPTION_END = 255
OPTION_PAD = 0

MSG_DISCOVER = 1
MSG_OFFER = 2
MSG_REQUEST = 3
MSG_ACK = 5
MSG_INFORM = 8

CLIENT_PORT = 68
SERVER_PORT = 67


@dataclass
class DHCPOption:
    """A single DHCP option (code / raw value)."""

    code: int
    data: bytes = b""

    def to_bytes(self) -> bytes:
        return bytes([self.code, len(self.data)]) + self.data


@dataclass
class DHCPMessage:
    """A DHCP message; without options and magic cookie it is plain BOOTP.

    Table I distinguishes DHCP from BOOTP: a datagram on ports 67/68 that
    carries the DHCP magic cookie counts for both features, while one
    without the cookie counts only as BOOTP.  ``is_dhcp`` exposes that
    distinction.
    """

    op: int
    client_mac: MACAddress
    transaction_id: int = 0
    client_ip: str = "0.0.0.0"
    your_ip: str = "0.0.0.0"
    server_ip: str = "0.0.0.0"
    gateway_ip: str = "0.0.0.0"
    options: list[DHCPOption] = field(default_factory=list)
    is_dhcp: bool = True

    @property
    def message_type(self) -> int | None:
        """The DHCP message type (DISCOVER, REQUEST, ...), if present."""
        for option in self.options:
            if option.code == OPTION_MESSAGE_TYPE and option.data:
                return option.data[0]
        return None

    @property
    def hostname(self) -> str | None:
        """The client-supplied hostname option, if present."""
        for option in self.options:
            if option.code == OPTION_HOSTNAME:
                return option.data.decode("ascii", errors="replace")
        return None

    def to_bytes(self) -> bytes:
        chaddr = self.client_mac.to_bytes() + b"\x00" * 10
        fixed = struct.pack(
            "!BBBBIHH4s4s4s4s16s64s128s",
            self.op,
            1,  # htype: Ethernet
            6,  # hlen
            0,  # hops
            self.transaction_id,
            0,  # secs
            0x8000,  # flags: broadcast
            ipv4_to_bytes(self.client_ip),
            ipv4_to_bytes(self.your_ip),
            ipv4_to_bytes(self.server_ip),
            ipv4_to_bytes(self.gateway_ip),
            chaddr,
            b"",  # sname
            b"",  # file
        )
        if not self.is_dhcp:
            return fixed
        raw_options = b"".join(option.to_bytes() for option in self.options)
        return fixed + MAGIC_COOKIE + raw_options + bytes([OPTION_END])

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["DHCPMessage", bytes]:
        if len(raw) < FIXED_LEN:
            raise PacketDecodeError(f"BOOTP message too short: {len(raw)} bytes")
        (
            op,
            _htype,
            hlen,
            _hops,
            transaction_id,
            _secs,
            _flags,
            ciaddr,
            yiaddr,
            siaddr,
            giaddr,
            chaddr,
            _sname,
            _file,
        ) = struct.unpack("!BBBBIHH4s4s4s4s16s64s128s", raw[:FIXED_LEN])
        if hlen != 6:
            raise PacketDecodeError(f"unsupported BOOTP hardware address length: {hlen}")
        rest = raw[FIXED_LEN:]
        is_dhcp = rest.startswith(MAGIC_COOKIE)
        options: list[DHCPOption] = []
        if is_dhcp:
            options = _parse_options(rest[len(MAGIC_COOKIE) :])
        message = cls(
            op=op,
            client_mac=MACAddress.from_bytes(chaddr[:6]),
            transaction_id=transaction_id,
            client_ip=ipv4_from_bytes(ciaddr),
            your_ip=ipv4_from_bytes(yiaddr),
            server_ip=ipv4_from_bytes(siaddr),
            gateway_ip=ipv4_from_bytes(giaddr),
            options=options,
            is_dhcp=is_dhcp,
        )
        return message, b""


def _parse_options(raw: bytes) -> list[DHCPOption]:
    options: list[DHCPOption] = []
    offset = 0
    while offset < len(raw):
        code = raw[offset]
        if code == OPTION_END:
            break
        if code == OPTION_PAD:
            offset += 1
            continue
        if offset + 1 >= len(raw):
            raise PacketDecodeError("truncated DHCP option")
        length = raw[offset + 1]
        data = raw[offset + 2 : offset + 2 + length]
        if len(data) < length:
            raise PacketDecodeError("truncated DHCP option value")
        options.append(DHCPOption(code=code, data=data))
        offset += 2 + length
    return options


def discover(client_mac: MACAddress, transaction_id: int = 0, hostname: str | None = None) -> DHCPMessage:
    """Build a typical DHCPDISCOVER message for ``client_mac``."""
    options = [DHCPOption(OPTION_MESSAGE_TYPE, bytes([MSG_DISCOVER]))]
    if hostname is not None:
        options.append(DHCPOption(OPTION_HOSTNAME, hostname.encode("ascii")))
    options.append(DHCPOption(OPTION_PARAMETER_LIST, bytes([1, 3, 6, 15])))
    return DHCPMessage(op=OP_REQUEST, client_mac=client_mac, transaction_id=transaction_id, options=options)


def request(
    client_mac: MACAddress,
    requested_ip: str,
    transaction_id: int = 0,
    hostname: str | None = None,
) -> DHCPMessage:
    """Build a typical DHCPREQUEST message asking for ``requested_ip``."""
    options = [
        DHCPOption(OPTION_MESSAGE_TYPE, bytes([MSG_REQUEST])),
        DHCPOption(OPTION_REQUESTED_IP, ipv4_to_bytes(requested_ip)),
    ]
    if hostname is not None:
        options.append(DHCPOption(OPTION_HOSTNAME, hostname.encode("ascii")))
    return DHCPMessage(op=OP_REQUEST, client_mac=client_mac, transaction_id=transaction_id, options=options)
