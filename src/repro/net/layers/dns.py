"""DNS / mDNS message (RFC 1035 / RFC 6762)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import PacketBuildError, PacketDecodeError

HEADER_LEN = 12

TYPE_A = 1
TYPE_PTR = 12
TYPE_TXT = 16
TYPE_AAAA = 28
TYPE_SRV = 33
TYPE_ANY = 255

CLASS_IN = 1

PORT_DNS = 53
PORT_MDNS = 5353
MDNS_GROUP_V4 = "224.0.0.251"
MDNS_GROUP_V6 = "ff02::fb"


@dataclass
class DNSQuestion:
    """A single DNS question entry."""

    name: str
    qtype: int = TYPE_A
    qclass: int = CLASS_IN


@dataclass
class DNSResourceRecord:
    """A single DNS answer/authority/additional record."""

    name: str
    rtype: int
    rclass: int = CLASS_IN
    ttl: int = 120
    data: bytes = b""


@dataclass
class DNSMessage:
    """A DNS or mDNS message.

    Whether a message counts towards the DNS or the MDNS feature of Table I
    is decided by the UDP port it travels on (53 vs 5353), not by its
    content; the dissector therefore parses both with this single class.
    """

    transaction_id: int = 0
    is_response: bool = False
    questions: list[DNSQuestion] = field(default_factory=list)
    answers: list[DNSResourceRecord] = field(default_factory=list)

    @property
    def question_names(self) -> list[str]:
        return [question.name for question in self.questions]

    def to_bytes(self) -> bytes:
        flags = 0x8400 if self.is_response else 0x0100
        header = struct.pack(
            "!HHHHHH",
            self.transaction_id,
            flags,
            len(self.questions),
            len(self.answers),
            0,
            0,
        )
        body = b""
        for question in self.questions:
            body += _encode_name(question.name) + struct.pack("!HH", question.qtype, question.qclass)
        for record in self.answers:
            body += (
                _encode_name(record.name)
                + struct.pack("!HHIH", record.rtype, record.rclass, record.ttl, len(record.data))
                + record.data
            )
        return header + body

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["DNSMessage", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"DNS message too short: {len(raw)} bytes")
        transaction_id, flags, qdcount, ancount, _ns, _ar = struct.unpack("!HHHHHH", raw[:HEADER_LEN])
        offset = HEADER_LEN
        questions: list[DNSQuestion] = []
        for _ in range(qdcount):
            name, offset = _decode_name(raw, offset)
            if offset + 4 > len(raw):
                raise PacketDecodeError("truncated DNS question")
            qtype, qclass = struct.unpack("!HH", raw[offset : offset + 4])
            offset += 4
            questions.append(DNSQuestion(name=name, qtype=qtype, qclass=qclass))
        answers: list[DNSResourceRecord] = []
        for _ in range(ancount):
            name, offset = _decode_name(raw, offset)
            if offset + 10 > len(raw):
                raise PacketDecodeError("truncated DNS answer")
            rtype, rclass, ttl, rdlength = struct.unpack("!HHIH", raw[offset : offset + 10])
            offset += 10
            data = raw[offset : offset + rdlength]
            if len(data) < rdlength:
                raise PacketDecodeError("truncated DNS answer data")
            offset += rdlength
            answers.append(DNSResourceRecord(name=name, rtype=rtype, rclass=rclass, ttl=ttl, data=data))
        message = cls(
            transaction_id=transaction_id,
            is_response=bool(flags & 0x8000),
            questions=questions,
            answers=answers,
        )
        return message, raw[offset:]


def _encode_name(name: str) -> bytes:
    encoded = b""
    for label in name.rstrip(".").split("."):
        if not label:
            continue
        raw = label.encode("ascii")
        if len(raw) > 63:
            raise PacketBuildError(f"DNS label too long: {label!r}")
        encoded += bytes([len(raw)]) + raw
    return encoded + b"\x00"


def _decode_name(raw: bytes, offset: int) -> tuple[str, int]:
    labels: list[str] = []
    jumped = False
    end_offset = offset
    seen_offsets: set[int] = set()
    while True:
        if offset >= len(raw):
            raise PacketDecodeError("truncated DNS name")
        length = raw[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(raw):
                raise PacketDecodeError("truncated DNS compression pointer")
            pointer = ((length & 0x3F) << 8) | raw[offset + 1]
            if pointer in seen_offsets:
                raise PacketDecodeError("DNS compression pointer loop")
            seen_offsets.add(pointer)
            if not jumped:
                end_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        if length == 0:
            offset += 1
            break
        if offset + 1 + length > len(raw):
            raise PacketDecodeError("truncated DNS label")
        labels.append(raw[offset + 1 : offset + 1 + length].decode("ascii", errors="replace"))
        offset += 1 + length
    if not jumped:
        end_offset = offset
    return ".".join(labels), end_offset


def query(name: str, qtype: int = TYPE_A, transaction_id: int = 0) -> DNSMessage:
    """Build a standard single-question DNS query."""
    return DNSMessage(transaction_id=transaction_id, questions=[DNSQuestion(name=name, qtype=qtype)])


def mdns_announcement(service: str, hostname: str) -> DNSMessage:
    """Build a typical mDNS service announcement (PTR record response)."""
    target = f"{hostname}.{service}"
    return DNSMessage(
        transaction_id=0,
        is_response=True,
        answers=[DNSResourceRecord(name=service, rtype=TYPE_PTR, data=_encode_name(target))],
    )
