"""EAPoL (802.1X / EAP over LAN) frame, used during WPA2 key handshakes."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

HEADER_LEN = 4

TYPE_EAP_PACKET = 0
TYPE_START = 1
TYPE_LOGOFF = 2
TYPE_KEY = 3


@dataclass
class EAPOLFrame:
    """An EAPoL frame header.

    The WPA2 4-way handshake a WiFi device performs right after association
    consists of EAPoL-Key frames; they are typically the first packets a
    newly-introduced device sends and the paper lists EAPoL among the
    network-layer protocol features.
    """

    packet_type: int
    version: int = 2
    body: bytes = b""

    @property
    def is_key(self) -> bool:
        return self.packet_type == TYPE_KEY

    @property
    def is_start(self) -> bool:
        return self.packet_type == TYPE_START

    def to_bytes(self) -> bytes:
        return struct.pack("!BBH", self.version, self.packet_type, len(self.body)) + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["EAPOLFrame", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"EAPoL frame too short: {len(raw)} bytes")
        version, packet_type, length = struct.unpack("!BBH", raw[:HEADER_LEN])
        body = raw[HEADER_LEN : HEADER_LEN + length]
        return cls(packet_type=packet_type, version=version, body=body), raw[HEADER_LEN + length :]
