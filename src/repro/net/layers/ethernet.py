"""Ethernet II / IEEE 802.3 frame header."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress


class ETHERTYPE:
    """Well-known EtherType values used by the dissector."""

    IPV4 = 0x0800
    ARP = 0x0806
    IPV6 = 0x86DD
    EAPOL = 0x888E
    VLAN = 0x8100


# EtherType values below this threshold are 802.3 length fields; the payload
# then starts with an LLC header instead of a network-layer protocol.
_MAX_8023_LENGTH = 0x05DC

HEADER_LEN = 14


@dataclass
class EthernetFrame:
    """An Ethernet frame header (Ethernet II or 802.3).

    Attributes:
        dst: destination MAC address.
        src: source MAC address.
        ethertype: EtherType for Ethernet II frames, or the 802.3 payload
            length for LLC frames.
    """

    dst: MACAddress
    src: MACAddress
    ethertype: int

    @property
    def is_llc(self) -> bool:
        """True when the frame is an IEEE 802.3 frame carrying an LLC header."""
        return self.ethertype <= _MAX_8023_LENGTH

    def to_bytes(self) -> bytes:
        """Serialise the 14-byte Ethernet header."""
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["EthernetFrame", bytes]:
        """Parse an Ethernet header, returning the header and remaining payload."""
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"Ethernet frame too short: {len(raw)} bytes")
        dst = MACAddress.from_bytes(raw[0:6])
        src = MACAddress.from_bytes(raw[6:12])
        (ethertype,) = struct.unpack("!H", raw[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), raw[HEADER_LEN:]
