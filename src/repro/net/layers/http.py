"""Minimal HTTP/1.x request and response representation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PacketDecodeError

PORT_HTTP = 80
PORT_HTTP_ALT = 8080

_METHODS = ("GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS", "PATCH", "NOTIFY", "M-SEARCH", "SUBSCRIBE")


@dataclass
class HTTPMessage:
    """An HTTP/1.x request or response.

    IoT devices typically use plain HTTP during setup to fetch cloud
    endpoints, register with the vendor's service or check for firmware
    updates; the HTTP feature of Table I flags such packets.
    """

    start_line: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def is_request(self) -> bool:
        return self.start_line.split(" ", 1)[0].upper() in _METHODS

    @property
    def is_response(self) -> bool:
        return self.start_line.upper().startswith("HTTP/")

    @property
    def method(self) -> str | None:
        return self.start_line.split(" ", 1)[0].upper() if self.is_request else None

    @property
    def path(self) -> str | None:
        parts = self.start_line.split(" ")
        return parts[1] if self.is_request and len(parts) >= 2 else None

    @property
    def host(self) -> str | None:
        return self.headers.get("Host")

    def to_bytes(self) -> bytes:
        lines = [self.start_line] + [f"{key}: {value}" for key, value in self.headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["HTTPMessage", bytes]:
        try:
            head, _, body = raw.partition(b"\r\n\r\n")
            text = head.decode("ascii")
        except UnicodeDecodeError as exc:
            raise PacketDecodeError("HTTP header is not ASCII") from exc
        lines = text.split("\r\n")
        if not lines or not lines[0]:
            raise PacketDecodeError("empty HTTP message")
        start_line = lines[0]
        if not (start_line.upper().startswith("HTTP/") or start_line.split(" ", 1)[0].upper() in _METHODS):
            raise PacketDecodeError(f"not an HTTP start line: {start_line!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip()] = value.strip()
        return cls(start_line=start_line, headers=headers, body=body), b""


def get(path: str, host: str, user_agent: str = "repro-iot-device/1.0") -> HTTPMessage:
    """Build a simple HTTP GET request."""
    return HTTPMessage(
        start_line=f"GET {path} HTTP/1.1",
        headers={"Host": host, "User-Agent": user_agent, "Connection": "close"},
    )


def post(path: str, host: str, body: bytes, content_type: str = "application/json") -> HTTPMessage:
    """Build a simple HTTP POST request."""
    return HTTPMessage(
        start_line=f"POST {path} HTTP/1.1",
        headers={
            "Host": host,
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "close",
        },
        body=body,
    )
