"""ICMP (v4) message."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError
from repro.net.layers.ipv4 import checksum

HEADER_LEN = 8

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8


@dataclass
class ICMPMessage:
    """An ICMPv4 message (echo request/reply, destination unreachable, ...)."""

    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    payload: bytes = b""

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REPLY

    def to_bytes(self) -> bytes:
        """Serialise with a valid ICMP checksum."""
        header = struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.identifier, self.sequence)
        raw = header + self.payload
        csum = checksum(raw)
        return raw[:2] + struct.pack("!H", csum) + raw[4:]

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["ICMPMessage", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"ICMP message too short: {len(raw)} bytes")
        icmp_type, code, _csum, identifier, sequence = struct.unpack("!BBHHH", raw[:HEADER_LEN])
        return (
            cls(
                icmp_type=icmp_type,
                code=code,
                identifier=identifier,
                sequence=sequence,
                payload=raw[HEADER_LEN:],
            ),
            b"",
        )
