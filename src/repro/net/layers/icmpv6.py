"""ICMPv6 message (RFC 4443), including NDP and MLD types."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

HEADER_LEN = 4

TYPE_MLD_REPORT = 131
TYPE_MLDV2_REPORT = 143
TYPE_ROUTER_SOLICITATION = 133
TYPE_NEIGHBOR_SOLICITATION = 135
TYPE_NEIGHBOR_ADVERTISEMENT = 136
TYPE_ECHO_REQUEST = 128
TYPE_ECHO_REPLY = 129


@dataclass
class ICMPv6Message:
    """An ICMPv6 message.

    IPv6-capable IoT devices emit router solicitations, neighbour
    solicitations (duplicate address detection) and MLD reports as part of
    their join sequence, which the ICMPv6 feature of Table I captures.
    """

    icmp_type: int
    code: int = 0
    body: bytes = b""

    @property
    def is_neighbor_discovery(self) -> bool:
        return self.icmp_type in (
            TYPE_ROUTER_SOLICITATION,
            TYPE_NEIGHBOR_SOLICITATION,
            TYPE_NEIGHBOR_ADVERTISEMENT,
        )

    @property
    def is_mld(self) -> bool:
        return self.icmp_type in (TYPE_MLD_REPORT, TYPE_MLDV2_REPORT)

    def to_bytes(self) -> bytes:
        # The real ICMPv6 checksum requires an IPv6 pseudo-header; the
        # dissector never validates it, so zero is written here.
        return struct.pack("!BBH", self.icmp_type, self.code, 0) + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["ICMPv6Message", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"ICMPv6 message too short: {len(raw)} bytes")
        icmp_type, code, _csum = struct.unpack("!BBH", raw[:HEADER_LEN])
        return cls(icmp_type=icmp_type, code=code, body=raw[HEADER_LEN:]), b""
