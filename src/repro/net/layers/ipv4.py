"""IPv4 header (RFC 791), including the options the feature set cares about."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import PacketBuildError, PacketDecodeError
from repro.net.addresses import ipv4_from_bytes, ipv4_to_bytes

MIN_HEADER_LEN = 20

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

OPTION_END = 0
OPTION_NOP = 1
OPTION_ROUTER_ALERT = 148  # copied=1, class=0, number=20


@dataclass
class IPOption:
    """A single IPv4 header option (type / optional data)."""

    kind: int
    data: bytes = b""

    @property
    def is_padding(self) -> bool:
        """True for End-of-Options-List and No-Operation padding options."""
        return self.kind in (OPTION_END, OPTION_NOP)

    @property
    def is_router_alert(self) -> bool:
        """True for the Router Alert option (RFC 2113), used e.g. by IGMP."""
        return self.kind == OPTION_ROUTER_ALERT

    def to_bytes(self) -> bytes:
        if self.kind in (OPTION_END, OPTION_NOP):
            return bytes([self.kind])
        length = 2 + len(self.data)
        if length > 255:
            raise PacketBuildError(f"IP option too long: {length} bytes")
        return bytes([self.kind, length]) + self.data


def _parse_options(raw: bytes) -> list[IPOption]:
    options: list[IPOption] = []
    offset = 0
    while offset < len(raw):
        kind = raw[offset]
        if kind == OPTION_END:
            options.append(IPOption(kind=OPTION_END))
            break
        if kind == OPTION_NOP:
            options.append(IPOption(kind=OPTION_NOP))
            offset += 1
            continue
        if offset + 1 >= len(raw):
            raise PacketDecodeError("truncated IPv4 option")
        length = raw[offset + 1]
        if length < 2 or offset + length > len(raw):
            raise PacketDecodeError(f"invalid IPv4 option length: {length}")
        options.append(IPOption(kind=kind, data=raw[offset + 2 : offset + length]))
        offset += length
    return options


def checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) + data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class IPv4Header:
    """An IPv4 header with options.

    The ``options`` list feeds the two IP-option features of Table I
    (padding and router alert).
    """

    src: str
    dst: str
    protocol: int
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags: int = 2  # Don't Fragment by default
    fragment_offset: int = 0
    total_length: int = 0
    options: list[IPOption] = field(default_factory=list)

    @property
    def has_padding_option(self) -> bool:
        return any(opt.is_padding for opt in self.options)

    @property
    def has_router_alert_option(self) -> bool:
        return any(opt.is_router_alert for opt in self.options)

    def _options_bytes(self) -> bytes:
        raw = b"".join(opt.to_bytes() for opt in self.options)
        if len(raw) % 4:
            raw += b"\x00" * (4 - len(raw) % 4)
        if len(raw) > 40:
            raise PacketBuildError(f"IPv4 options too long: {len(raw)} bytes")
        return raw

    def to_bytes(self, payload: bytes = b"") -> bytes:
        """Serialise the header (with a valid checksum) followed by ``payload``."""
        options_raw = self._options_bytes()
        ihl = (MIN_HEADER_LEN + len(options_raw)) // 4
        total_length = self.total_length or (ihl * 4 + len(payload))
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | ihl,
            self.dscp << 2,
            total_length,
            self.identification,
            (self.flags << 13) | self.fragment_offset,
            self.ttl,
            self.protocol,
            0,
            ipv4_to_bytes(self.src),
            ipv4_to_bytes(self.dst),
        )
        header += options_raw
        csum = checksum(header)
        header = header[:10] + struct.pack("!H", csum) + header[12:]
        return header + payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["IPv4Header", bytes]:
        """Parse an IPv4 header, returning the header and the layer-4 payload."""
        if len(raw) < MIN_HEADER_LEN:
            raise PacketDecodeError(f"IPv4 header too short: {len(raw)} bytes")
        version_ihl = raw[0]
        version = version_ihl >> 4
        if version != 4:
            raise PacketDecodeError(f"not an IPv4 packet (version={version})")
        ihl = (version_ihl & 0x0F) * 4
        if ihl < MIN_HEADER_LEN or len(raw) < ihl:
            raise PacketDecodeError(f"invalid IPv4 IHL: {ihl}")
        (
            _,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", raw[:MIN_HEADER_LEN])
        options = _parse_options(raw[MIN_HEADER_LEN:ihl]) if ihl > MIN_HEADER_LEN else []
        header = cls(
            src=ipv4_from_bytes(src_raw),
            dst=ipv4_from_bytes(dst_raw),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            flags=flags_fragment >> 13,
            fragment_offset=flags_fragment & 0x1FFF,
            total_length=total_length,
            options=options,
        )
        payload_end = min(len(raw), total_length) if total_length >= ihl else len(raw)
        return header, raw[ihl:payload_end]
