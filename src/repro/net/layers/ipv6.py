"""IPv6 header (RFC 8200) with hop-by-hop option parsing."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import PacketDecodeError
from repro.net.addresses import ipv6_from_bytes, ipv6_to_bytes

HEADER_LEN = 40

NEXT_HEADER_HOP_BY_HOP = 0
NEXT_HEADER_TCP = 6
NEXT_HEADER_UDP = 17
NEXT_HEADER_ICMPV6 = 58

HBH_OPTION_PAD1 = 0
HBH_OPTION_PADN = 1
HBH_OPTION_ROUTER_ALERT = 5


@dataclass
class IPv6Header:
    """An IPv6 header, optionally followed by a hop-by-hop options header.

    MLD reports (used during multicast joins of mDNS/SSDP capable devices)
    carry a hop-by-hop Router Alert option; those surface in the IP-option
    features of Table I exactly as their IPv4 counterparts do.
    """

    src: str
    dst: str
    next_header: int
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0
    hop_by_hop_options: list[int] = field(default_factory=list)

    @property
    def has_router_alert_option(self) -> bool:
        return HBH_OPTION_ROUTER_ALERT in self.hop_by_hop_options

    @property
    def has_padding_option(self) -> bool:
        return any(o in (HBH_OPTION_PAD1, HBH_OPTION_PADN) for o in self.hop_by_hop_options)

    def _hbh_bytes(self, inner_next_header: int) -> bytes:
        """Build a minimal hop-by-hop extension header carrying the options."""
        body = b""
        for option in self.hop_by_hop_options:
            if option == HBH_OPTION_PAD1:
                body += bytes([HBH_OPTION_PAD1])
            elif option == HBH_OPTION_ROUTER_ALERT:
                body += bytes([HBH_OPTION_ROUTER_ALERT, 2, 0, 0])
            else:
                body += bytes([option, 0])
        # The extension header is a multiple of 8 bytes including the
        # 2-byte (next header, length) prefix.
        total = 2 + len(body)
        pad = (8 - total % 8) % 8
        body += bytes([HBH_OPTION_PADN, pad - 2] + [0] * (pad - 2)) if pad >= 2 else b"\x00" * pad
        ext_len = (2 + len(body)) // 8 - 1
        return bytes([inner_next_header, ext_len]) + body

    def to_bytes(self, payload: bytes = b"") -> bytes:
        """Serialise the header (plus hop-by-hop extension if any) and payload."""
        if self.hop_by_hop_options:
            ext = self._hbh_bytes(self.next_header)
            first_next_header = NEXT_HEADER_HOP_BY_HOP
            payload = ext + payload
        else:
            first_next_header = self.next_header
        payload_length = self.payload_length or len(payload)
        vtf = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        header = struct.pack(
            "!IHBB",
            vtf,
            payload_length,
            first_next_header,
            self.hop_limit,
        )
        return header + ipv6_to_bytes(self.src) + ipv6_to_bytes(self.dst) + payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["IPv6Header", bytes]:
        """Parse an IPv6 header (and hop-by-hop header), returning payload."""
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"IPv6 header too short: {len(raw)} bytes")
        vtf, payload_length, next_header, hop_limit = struct.unpack("!IHBB", raw[:8])
        version = vtf >> 28
        if version != 6:
            raise PacketDecodeError(f"not an IPv6 packet (version={version})")
        src = ipv6_from_bytes(raw[8:24])
        dst = ipv6_from_bytes(raw[24:40])
        payload = raw[HEADER_LEN:]
        hbh_options: list[int] = []
        if next_header == NEXT_HEADER_HOP_BY_HOP:
            if len(payload) < 8:
                raise PacketDecodeError("truncated IPv6 hop-by-hop header")
            inner_next = payload[0]
            ext_len = (payload[1] + 1) * 8
            if len(payload) < ext_len:
                raise PacketDecodeError("truncated IPv6 hop-by-hop header body")
            hbh_options = _parse_hbh_options(payload[2:ext_len])
            next_header = inner_next
            payload = payload[ext_len:]
        header = cls(
            src=src,
            dst=dst,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(vtf >> 20) & 0xFF,
            flow_label=vtf & 0xFFFFF,
            payload_length=payload_length,
            hop_by_hop_options=hbh_options,
        )
        return header, payload


def _parse_hbh_options(raw: bytes) -> list[int]:
    options: list[int] = []
    offset = 0
    while offset < len(raw):
        kind = raw[offset]
        options.append(kind)
        if kind == HBH_OPTION_PAD1:
            offset += 1
            continue
        if offset + 1 >= len(raw):
            break
        offset += 2 + raw[offset + 1]
    return options
