"""IEEE 802.2 Logical Link Control header."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

HEADER_LEN = 3

# Common SAP values.
SAP_SNAP = 0xAA
SAP_SPANNING_TREE = 0x42
SAP_NETBIOS = 0xF0


@dataclass
class LLCHeader:
    """An 802.2 LLC header (DSAP, SSAP, control).

    LLC frames appear on the wire when devices emit 802.3 frames (e.g.
    spanning-tree BPDUs from hub-style devices); the paper's feature set has
    a dedicated LLC indicator at the link layer.
    """

    dsap: int
    ssap: int
    control: int = 0x03

    def to_bytes(self) -> bytes:
        """Serialise the 3-byte LLC header."""
        return bytes([self.dsap & 0xFF, self.ssap & 0xFF, self.control & 0xFF])

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["LLCHeader", bytes]:
        """Parse an LLC header, returning the header and remaining payload."""
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"LLC header too short: {len(raw)} bytes")
        return cls(dsap=raw[0], ssap=raw[1], control=raw[2]), raw[HEADER_LEN:]
