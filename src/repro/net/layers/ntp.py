"""NTP (SNTP) message, RFC 5905 client mode."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

HEADER_LEN = 48
PORT_NTP = 123

MODE_CLIENT = 3
MODE_SERVER = 4


@dataclass
class NTPMessage:
    """An NTP packet.

    Many IoT devices synchronise their clock as one of the first actions
    after obtaining an address (certificates and TLS need a sane clock),
    which makes the NTP feature a strong mid-sequence signal in Table I.
    """

    mode: int = MODE_CLIENT
    version: int = 4
    stratum: int = 0
    transmit_timestamp: int = 0

    @property
    def is_client_request(self) -> bool:
        return self.mode == MODE_CLIENT

    def to_bytes(self) -> bytes:
        first = (0 << 6) | (self.version << 3) | self.mode
        header = struct.pack("!BBBb", first, self.stratum, 0, -20)
        body = b"\x00" * 36 + struct.pack("!Q", self.transmit_timestamp)
        return header + body

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["NTPMessage", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"NTP message too short: {len(raw)} bytes")
        first = raw[0]
        version = (first >> 3) & 0x07
        mode = first & 0x07
        stratum = raw[1]
        (transmit_timestamp,) = struct.unpack("!Q", raw[40:48])
        return (
            cls(mode=mode, version=version, stratum=stratum, transmit_timestamp=transmit_timestamp),
            raw[HEADER_LEN:],
        )
