"""SSDP (Simple Service Discovery Protocol) messages, used by UPnP devices."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PacketDecodeError
from repro.net.layers.http import HTTPMessage

PORT_SSDP = 1900
MULTICAST_GROUP_V4 = "239.255.255.250"
MULTICAST_GROUP_V6 = "ff02::c"


@dataclass
class SSDPMessage:
    """An SSDP M-SEARCH, NOTIFY or response message.

    SSDP is HTTP-formatted text over UDP port 1900.  Smart plugs, cameras
    and media devices advertise themselves with NOTIFY bursts immediately
    after joining a network, a pattern the SSDP feature of Table I captures.
    """

    method: str
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def is_msearch(self) -> bool:
        return self.method.upper() == "M-SEARCH"

    @property
    def is_notify(self) -> bool:
        return self.method.upper() == "NOTIFY"

    @property
    def search_target(self) -> str | None:
        return self.headers.get("ST") or self.headers.get("NT")

    def to_bytes(self) -> bytes:
        start_line = "HTTP/1.1 200 OK" if self.method.upper() == "RESPONSE" else f"{self.method} * HTTP/1.1"
        return HTTPMessage(start_line=start_line, headers=dict(self.headers)).to_bytes()

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["SSDPMessage", bytes]:
        message, rest = HTTPMessage.from_bytes(raw)
        if message.is_response:
            method = "RESPONSE"
        else:
            method = message.method or ""
            if method not in ("M-SEARCH", "NOTIFY", "SUBSCRIBE"):
                raise PacketDecodeError(f"not an SSDP method: {method!r}")
        return cls(method=method, headers=message.headers), rest


def msearch(search_target: str = "ssdp:all", mx: int = 3) -> SSDPMessage:
    """Build an SSDP M-SEARCH discovery request."""
    return SSDPMessage(
        method="M-SEARCH",
        headers={
            "HOST": f"{MULTICAST_GROUP_V4}:{PORT_SSDP}",
            "MAN": '"ssdp:discover"',
            "MX": str(mx),
            "ST": search_target,
        },
    )


def notify(notification_type: str, usn: str, location: str) -> SSDPMessage:
    """Build an SSDP NOTIFY (ssdp:alive) announcement."""
    return SSDPMessage(
        method="NOTIFY",
        headers={
            "HOST": f"{MULTICAST_GROUP_V4}:{PORT_SSDP}",
            "NT": notification_type,
            "NTS": "ssdp:alive",
            "USN": usn,
            "LOCATION": location,
            "CACHE-CONTROL": "max-age=1800",
        },
    )
