"""TCP segment header (RFC 793)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

MIN_HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10


@dataclass
class TCPSegment:
    """A TCP segment (header fields + payload).

    Source/destination ports feed the port-class features; the payload
    presence feeds the raw-data feature and lets the dissector sniff
    HTTP requests and TLS ClientHello records for the application-layer
    features.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = FLAG_SYN
    window: int = 65535
    payload: bytes = b""

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & FLAG_SYN) and not self.flags & FLAG_ACK

    @property
    def is_syn_ack(self) -> bool:
        return bool(self.flags & FLAG_SYN) and bool(self.flags & FLAG_ACK)

    @property
    def has_payload(self) -> bool:
        return len(self.payload) > 0

    def to_bytes(self) -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            (MIN_HEADER_LEN // 4) << 4,
            self.flags,
            self.window,
            0,  # checksum requires pseudo-header; not validated by the dissector
            0,
        )
        return header + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["TCPSegment", bytes]:
        if len(raw) < MIN_HEADER_LEN:
            raise PacketDecodeError(f"TCP segment too short: {len(raw)} bytes")
        (src_port, dst_port, seq, ack, offset_reserved, flags, window, _csum, _urg) = struct.unpack(
            "!HHIIBBHHH", raw[:MIN_HEADER_LEN]
        )
        data_offset = (offset_reserved >> 4) * 4
        if data_offset < MIN_HEADER_LEN or data_offset > len(raw):
            raise PacketDecodeError(f"invalid TCP data offset: {data_offset}")
        segment = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            payload=raw[data_offset:],
        )
        return segment, segment.payload
