"""TLS record layer, sufficient to recognise and build ClientHello records."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

PORT_HTTPS = 443
PORT_HTTPS_ALT = 8443

CONTENT_TYPE_HANDSHAKE = 22
CONTENT_TYPE_APPLICATION_DATA = 23

HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

RECORD_HEADER_LEN = 5


@dataclass
class TLSRecord:
    """A single TLS record.

    The HTTPS feature of Table I is triggered by traffic on port 443; this
    record type additionally lets the simulator emit realistic ClientHello
    payload sizes and the dissector recognise handshakes when parsing real
    captures.
    """

    content_type: int
    version: int = 0x0303
    payload: bytes = b""

    @property
    def is_handshake(self) -> bool:
        return self.content_type == CONTENT_TYPE_HANDSHAKE

    @property
    def is_client_hello(self) -> bool:
        return self.is_handshake and len(self.payload) > 0 and self.payload[0] == HANDSHAKE_CLIENT_HELLO

    def to_bytes(self) -> bytes:
        return struct.pack("!BHH", self.content_type, self.version, len(self.payload)) + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["TLSRecord", bytes]:
        if len(raw) < RECORD_HEADER_LEN:
            raise PacketDecodeError(f"TLS record too short: {len(raw)} bytes")
        content_type, version, length = struct.unpack("!BHH", raw[:RECORD_HEADER_LEN])
        if content_type not in (20, 21, 22, 23):
            raise PacketDecodeError(f"unknown TLS content type: {content_type}")
        payload = raw[RECORD_HEADER_LEN : RECORD_HEADER_LEN + length]
        return cls(content_type=content_type, version=version, payload=payload), raw[RECORD_HEADER_LEN + length :]


def client_hello(server_name: str, payload_size: int = 180) -> TLSRecord:
    """Build a synthetic ClientHello record advertising ``server_name`` (SNI).

    The handshake body is not a byte-exact RFC 8446 ClientHello; it carries
    the handshake type, a length field and the SNI host name, which is all
    the feature extractor and tests ever look at.
    """
    name = server_name.encode("ascii")
    body = bytes([HANDSHAKE_CLIENT_HELLO]) + struct.pack("!I", payload_size)[1:] + name
    if len(body) < payload_size:
        body += b"\x00" * (payload_size - len(body))
    return TLSRecord(content_type=CONTENT_TYPE_HANDSHAKE, payload=body)
