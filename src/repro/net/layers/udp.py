"""UDP datagram header (RFC 768)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketDecodeError

HEADER_LEN = 8


@dataclass
class UDPDatagram:
    """A UDP datagram (header fields + payload).

    DHCP, DNS, mDNS, SSDP and NTP -- five of the eight application-layer
    protocol features of Table I -- all ride on UDP, so this is the most
    frequently traversed transport layer in setup-phase traffic.
    """

    src_port: int
    dst_port: int
    payload: bytes = b""

    @property
    def has_payload(self) -> bool:
        return len(self.payload) > 0

    def to_bytes(self) -> bytes:
        return (
            struct.pack("!HHHH", self.src_port, self.dst_port, HEADER_LEN + len(self.payload), 0)
            + self.payload
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["UDPDatagram", bytes]:
        if len(raw) < HEADER_LEN:
            raise PacketDecodeError(f"UDP datagram too short: {len(raw)} bytes")
        src_port, dst_port, length, _csum = struct.unpack("!HHHH", raw[:HEADER_LEN])
        if length < HEADER_LEN:
            raise PacketDecodeError(f"invalid UDP length: {length}")
        payload = raw[HEADER_LEN : max(HEADER_LEN, min(len(raw), length))]
        datagram = cls(src_port=src_port, dst_port=dst_port, payload=payload)
        return datagram, payload
