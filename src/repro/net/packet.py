"""The layered packet model and the top-level dissector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress
from repro.net.layers import arp as arp_mod
from repro.net.layers import dhcp as dhcp_mod
from repro.net.layers import dns as dns_mod
from repro.net.layers import eapol as eapol_mod
from repro.net.layers import ethernet as eth_mod
from repro.net.layers import http as http_mod
from repro.net.layers import icmp as icmp_mod
from repro.net.layers import icmpv6 as icmpv6_mod
from repro.net.layers import ipv4 as ipv4_mod
from repro.net.layers import ipv6 as ipv6_mod
from repro.net.layers import llc as llc_mod
from repro.net.layers import ntp as ntp_mod
from repro.net.layers import ssdp as ssdp_mod
from repro.net.layers import tcp as tcp_mod
from repro.net.layers import tls as tls_mod
from repro.net.layers import udp as udp_mod
from repro.net.layers.arp import ARPPacket
from repro.net.layers.dhcp import DHCPMessage
from repro.net.layers.dns import DNSMessage
from repro.net.layers.eapol import EAPOLFrame
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.http import HTTPMessage
from repro.net.layers.icmp import ICMPMessage
from repro.net.layers.icmpv6 import ICMPv6Message
from repro.net.layers.ipv4 import IPv4Header
from repro.net.layers.ipv6 import IPv6Header
from repro.net.layers.llc import LLCHeader
from repro.net.layers.ntp import NTPMessage
from repro.net.layers.ssdp import SSDPMessage
from repro.net.layers.tcp import TCPSegment
from repro.net.layers.tls import TLSRecord
from repro.net.layers.udp import UDPDatagram

ApplicationLayer = Union[DHCPMessage, DNSMessage, HTTPMessage, SSDPMessage, NTPMessage, TLSRecord]


@dataclass
class Packet:
    """A dissected (or constructed) network packet.

    A packet always has an Ethernet layer; the remaining layers are present
    when applicable.  ``payload`` holds any application data that was not
    parsed into a dedicated application-layer object (it drives the
    "raw data" feature of Table I together with the parsed application
    payloads).
    """

    ethernet: EthernetFrame
    llc: Optional[LLCHeader] = None
    arp: Optional[ARPPacket] = None
    ipv4: Optional[IPv4Header] = None
    ipv6: Optional[IPv6Header] = None
    icmp: Optional[ICMPMessage] = None
    icmpv6: Optional[ICMPv6Message] = None
    eapol: Optional[EAPOLFrame] = None
    tcp: Optional[TCPSegment] = None
    udp: Optional[UDPDatagram] = None
    application: Optional[ApplicationLayer] = None
    payload: bytes = b""
    timestamp: float = 0.0
    wire_length: int = 0
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the feature extractor and gateway.
    # ------------------------------------------------------------------ #
    @property
    def src_mac(self) -> MACAddress:
        return self.ethernet.src

    @property
    def dst_mac(self) -> MACAddress:
        return self.ethernet.dst

    @property
    def src_ip(self) -> Optional[str]:
        if self.ipv4 is not None:
            return self.ipv4.src
        if self.ipv6 is not None:
            return self.ipv6.src
        return None

    @property
    def dst_ip(self) -> Optional[str]:
        if self.ipv4 is not None:
            return self.ipv4.dst
        if self.ipv6 is not None:
            return self.ipv6.dst
        return None

    @property
    def src_port(self) -> Optional[int]:
        if self.tcp is not None:
            return self.tcp.src_port
        if self.udp is not None:
            return self.udp.src_port
        return None

    @property
    def dst_port(self) -> Optional[int]:
        if self.tcp is not None:
            return self.tcp.dst_port
        if self.udp is not None:
            return self.udp.dst_port
        return None

    @property
    def has_ip(self) -> bool:
        return self.ipv4 is not None or self.ipv6 is not None

    @property
    def transport_payload(self) -> bytes:
        """The raw layer-4 payload (before application-layer parsing)."""
        if self.tcp is not None:
            return self.tcp.payload
        if self.udp is not None:
            return self.udp.payload
        return b""

    @property
    def has_raw_data(self) -> bool:
        """True when the packet carries data above the transport header."""
        if self.application is not None:
            return True
        if self.transport_payload:
            return True
        return bool(self.payload) and self.arp is None

    @property
    def size(self) -> int:
        """The on-the-wire packet size in bytes."""
        return self.wire_length if self.wire_length else len(self.to_bytes())

    @property
    def summary(self) -> str:
        """A short human-readable one-line description (for logs/examples)."""
        parts = [f"{self.src_mac} -> {self.dst_mac}"]
        if self.arp is not None:
            parts.append("ARP")
        if self.eapol is not None:
            parts.append("EAPoL")
        if self.has_ip:
            parts.append(f"{self.src_ip} -> {self.dst_ip}")
        if self.tcp is not None:
            parts.append(f"TCP {self.tcp.src_port}->{self.tcp.dst_port}")
        if self.udp is not None:
            parts.append(f"UDP {self.udp.src_port}->{self.udp.dst_port}")
        if self.application is not None:
            parts.append(type(self.application).__name__)
        parts.append(f"{self.size}B")
        return " | ".join(parts)

    # ------------------------------------------------------------------ #
    # Serialisation.
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise the packet down to an Ethernet frame byte string."""
        app_raw = self.application.to_bytes() if self.application is not None else b""
        inner = app_raw or self.transport_payload or b""

        if self.tcp is not None:
            transport = TCPSegment(
                src_port=self.tcp.src_port,
                dst_port=self.tcp.dst_port,
                seq=self.tcp.seq,
                ack=self.tcp.ack,
                flags=self.tcp.flags,
                window=self.tcp.window,
                payload=inner,
            ).to_bytes()
        elif self.udp is not None:
            transport = UDPDatagram(
                src_port=self.udp.src_port, dst_port=self.udp.dst_port, payload=inner
            ).to_bytes()
        elif self.icmp is not None:
            transport = self.icmp.to_bytes()
        elif self.icmpv6 is not None:
            transport = self.icmpv6.to_bytes()
        else:
            # No transport layer: the IP payload is either a parsed
            # application object or the raw bytes kept in ``payload``
            # (e.g. an IGMP membership report).
            transport = app_raw or self.payload

        if self.ipv4 is not None:
            network = self.ipv4.to_bytes(transport)
        elif self.ipv6 is not None:
            network = self.ipv6.to_bytes(transport)
        elif self.arp is not None:
            network = self.arp.to_bytes()
        elif self.eapol is not None:
            network = self.eapol.to_bytes()
        elif self.llc is not None:
            network = self.llc.to_bytes() + self.payload
        else:
            network = self.payload

        raw = self.ethernet.to_bytes() + network
        # Ethernet frames are padded to the 60-byte minimum (without FCS).
        if len(raw) < 60:
            raw += b"\x00" * (60 - len(raw))
        return raw

    @classmethod
    def dissect(cls, raw: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse a raw Ethernet frame into a :class:`Packet`.

        Unknown or malformed upper layers never raise: the undissected bytes
        are kept in ``payload`` so that capture processing is robust against
        exotic traffic, mirroring how the original system only needs
        header-level information.
        """
        ethernet, rest = EthernetFrame.from_bytes(raw)
        packet = cls(ethernet=ethernet, timestamp=timestamp, wire_length=len(raw))
        try:
            cls._dissect_network(packet, rest)
        except PacketDecodeError:
            packet.payload = rest
        return packet

    @classmethod
    def _dissect_network(cls, packet: Packet, rest: bytes) -> None:
        ethertype = packet.ethernet.ethertype
        if packet.ethernet.is_llc:
            packet.llc, packet.payload = LLCHeader.from_bytes(rest)
            return
        if ethertype == ETHERTYPE.ARP:
            packet.arp, _ = ARPPacket.from_bytes(rest)
            return
        if ethertype == ETHERTYPE.EAPOL:
            packet.eapol, packet.payload = EAPOLFrame.from_bytes(rest)
            return
        if ethertype == ETHERTYPE.IPV4:
            packet.ipv4, transport = IPv4Header.from_bytes(rest)
            cls._dissect_transport_v4(packet, transport)
            return
        if ethertype == ETHERTYPE.IPV6:
            packet.ipv6, transport = IPv6Header.from_bytes(rest)
            cls._dissect_transport_v6(packet, transport)
            return
        packet.payload = rest

    @classmethod
    def _dissect_transport_v4(cls, packet: Packet, transport: bytes) -> None:
        protocol = packet.ipv4.protocol if packet.ipv4 is not None else -1
        if protocol == ipv4_mod.PROTO_ICMP:
            packet.icmp, _ = ICMPMessage.from_bytes(transport)
        elif protocol == ipv4_mod.PROTO_TCP:
            packet.tcp, payload = TCPSegment.from_bytes(transport)
            cls._dissect_application(packet, payload)
        elif protocol == ipv4_mod.PROTO_UDP:
            packet.udp, payload = UDPDatagram.from_bytes(transport)
            cls._dissect_application(packet, payload)
        else:
            packet.payload = transport

    @classmethod
    def _dissect_transport_v6(cls, packet: Packet, transport: bytes) -> None:
        next_header = packet.ipv6.next_header if packet.ipv6 is not None else -1
        if next_header == ipv6_mod.NEXT_HEADER_ICMPV6:
            packet.icmpv6, _ = ICMPv6Message.from_bytes(transport)
        elif next_header == ipv6_mod.NEXT_HEADER_TCP:
            packet.tcp, payload = TCPSegment.from_bytes(transport)
            cls._dissect_application(packet, payload)
        elif next_header == ipv6_mod.NEXT_HEADER_UDP:
            packet.udp, payload = UDPDatagram.from_bytes(transport)
            cls._dissect_application(packet, payload)
        else:
            packet.payload = transport

    @classmethod
    def _dissect_application(cls, packet: Packet, payload: bytes) -> None:
        if not payload:
            return
        ports = {packet.src_port, packet.dst_port}
        parsers = []
        if ports & {dhcp_mod.SERVER_PORT, dhcp_mod.CLIENT_PORT}:
            parsers.append(DHCPMessage.from_bytes)
        if ports & {dns_mod.PORT_DNS, dns_mod.PORT_MDNS}:
            parsers.append(DNSMessage.from_bytes)
        if ssdp_mod.PORT_SSDP in ports:
            parsers.append(SSDPMessage.from_bytes)
        if ntp_mod.PORT_NTP in ports:
            parsers.append(NTPMessage.from_bytes)
        if ports & {tls_mod.PORT_HTTPS, tls_mod.PORT_HTTPS_ALT}:
            parsers.append(TLSRecord.from_bytes)
        if ports & {http_mod.PORT_HTTP, http_mod.PORT_HTTP_ALT}:
            parsers.append(HTTPMessage.from_bytes)
        for parser in parsers:
            try:
                packet.application, _ = parser(payload)
                return
            except PacketDecodeError:
                continue
        # Fall back to protocol sniffing independent of port numbers.
        for parser in (HTTPMessage.from_bytes, TLSRecord.from_bytes):
            try:
                packet.application, _ = parser(payload)
                return
            except PacketDecodeError:
                continue


__all__ = [
    "Packet",
    "ApplicationLayer",
    "arp_mod",
    "dhcp_mod",
    "dns_mod",
    "eapol_mod",
    "eth_mod",
    "http_mod",
    "icmp_mod",
    "icmpv6_mod",
    "ipv4_mod",
    "ipv6_mod",
    "llc_mod",
    "ntp_mod",
    "ssdp_mod",
    "tcp_mod",
    "tls_mod",
    "udp_mod",
]
