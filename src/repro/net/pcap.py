"""Reading and writing classic libpcap capture files.

The public IoT SENTINEL dataset is distributed as pcap files captured with
tcpdump; this module implements the classic pcap container format (magic
``0xa1b2c3d4``, little or big endian, micro- or nanosecond timestamps) so
that real captures can be ingested by the fingerprinting pipeline and so
that the traffic simulator can emit captures that external tools can open.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.exceptions import PcapFormatError
from repro.net.packet import Packet

GLOBAL_HEADER_LEN = 24
RECORD_HEADER_LEN = 16

MAGIC_MICROSECONDS = 0xA1B2C3D4
MAGIC_NANOSECONDS = 0xA1B23C4D

LINKTYPE_ETHERNET = 1


@dataclass
class CapturedPacket:
    """A raw captured frame together with its capture timestamp."""

    timestamp: float
    data: bytes
    original_length: int = 0

    def dissect(self) -> Packet:
        """Dissect the raw frame into a :class:`~repro.net.packet.Packet`."""
        packet = Packet.dissect(self.data, timestamp=self.timestamp)
        if self.original_length:
            packet.wire_length = self.original_length
        return packet


class PcapReader:
    """Iterates over the packets of a classic pcap file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._endianness = "<"
        self._nanoseconds = False
        self.link_type = LINKTYPE_ETHERNET
        self.snaplen = 65535

    def __iter__(self) -> Iterator[CapturedPacket]:
        with open(self.path, "rb") as handle:
            header = handle.read(GLOBAL_HEADER_LEN)
            self._parse_global_header(header)
            while True:
                record_header = handle.read(RECORD_HEADER_LEN)
                if not record_header:
                    break
                if len(record_header) < RECORD_HEADER_LEN:
                    raise PcapFormatError("truncated pcap record header")
                seconds, subseconds, captured_len, original_len = struct.unpack(
                    self._endianness + "IIII", record_header
                )
                data = handle.read(captured_len)
                if len(data) < captured_len:
                    raise PcapFormatError("truncated pcap record body")
                divisor = 1e9 if self._nanoseconds else 1e6
                yield CapturedPacket(
                    timestamp=seconds + subseconds / divisor,
                    data=data,
                    original_length=original_len,
                )

    def _parse_global_header(self, header: bytes) -> None:
        if len(header) < GLOBAL_HEADER_LEN:
            raise PcapFormatError("pcap file too short for global header")
        (magic,) = struct.unpack("<I", header[:4])
        if magic in (MAGIC_MICROSECONDS, MAGIC_NANOSECONDS):
            self._endianness = "<"
        else:
            (magic,) = struct.unpack(">I", header[:4])
            if magic not in (MAGIC_MICROSECONDS, MAGIC_NANOSECONDS):
                raise PcapFormatError("not a classic pcap file (bad magic number)")
            self._endianness = ">"
        self._nanoseconds = magic == MAGIC_NANOSECONDS
        _major, _minor, _tz, _sigfigs, snaplen, link_type = struct.unpack(
            self._endianness + "HHiIII", header[4:GLOBAL_HEADER_LEN]
        )
        self.snaplen = snaplen
        self.link_type = link_type
        if link_type != LINKTYPE_ETHERNET:
            raise PcapFormatError(f"unsupported link type: {link_type} (only Ethernet is supported)")

    def packets(self) -> Iterator[Packet]:
        """Iterate over dissected packets."""
        for captured in self:
            yield captured.dissect()


class PcapWriter:
    """Writes packets to a classic pcap file (microsecond timestamps)."""

    def __init__(self, path: Union[str, Path], snaplen: int = 65535):
        self.path = Path(path)
        self.snaplen = snaplen
        self._handle = None

    def __enter__(self) -> "PcapWriter":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        self._handle = open(self.path, "wb")
        header = struct.pack(
            "<IHHiIII",
            MAGIC_MICROSECONDS,
            2,
            4,
            0,
            0,
            self.snaplen,
            LINKTYPE_ETHERNET,
        )
        self._handle.write(header)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def write(self, packet: Union[Packet, CapturedPacket, bytes], timestamp: float = 0.0) -> None:
        """Append one packet to the capture file."""
        if self._handle is None:
            raise PcapFormatError("PcapWriter is not open")
        if isinstance(packet, Packet):
            data = packet.to_bytes()
            timestamp = packet.timestamp or timestamp
        elif isinstance(packet, CapturedPacket):
            data = packet.data
            timestamp = packet.timestamp
        else:
            data = packet
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1e6))
        captured = data[: self.snaplen]
        record = struct.pack("<IIII", seconds, microseconds, len(captured), len(data))
        self._handle.write(record + captured)


def read_pcap(path: Union[str, Path]) -> list[Packet]:
    """Read and dissect every packet in a pcap file."""
    return list(PcapReader(path).packets())


def write_pcap(path: Union[str, Path], packets: Iterable[Packet]) -> int:
    """Write packets to a pcap file, returning the number of packets written."""
    count = 0
    with PcapWriter(path) as writer:
        for packet in packets:
            writer.write(packet)
            count += 1
    return count
