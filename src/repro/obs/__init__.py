"""Observability: evidence ledger + unified metrics surface.

See :mod:`repro.obs.evidence` (schema), :mod:`repro.obs.ledger`
(append-only NDJSON sink + validating replay), :mod:`repro.obs.metrics`
(counters / gauges / histograms behind one ``snapshot()``) and
:mod:`repro.obs.hub` (the :class:`Observability` object the serving
path is wired through).
"""

from repro.obs.evidence import (
    EVIDENCE_KINDS,
    EVIDENCE_SCHEMA_VERSION,
    KIND_APPLY,
    KIND_ENFORCEMENT,
    KIND_LEARN,
    KIND_PROMOTION,
    KIND_PUSH,
    KIND_QUARANTINE,
    KIND_VERDICT,
    QUARANTINE_DISCARDED,
    QUARANTINE_RECORDED,
    QUARANTINE_RELEASED,
    UNASSIGNED_SEQUENCE,
    EvidenceRecord,
    decode_line,
    encode_line,
)
from repro.obs.hub import Observability
from repro.obs.ledger import LedgerReplay, VerdictLedger, ledger_files, replay_ledger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "EVIDENCE_KINDS",
    "EVIDENCE_SCHEMA_VERSION",
    "KIND_APPLY",
    "KIND_ENFORCEMENT",
    "KIND_LEARN",
    "KIND_PROMOTION",
    "KIND_PUSH",
    "KIND_QUARANTINE",
    "KIND_VERDICT",
    "UNASSIGNED_SEQUENCE",
    "EvidenceRecord",
    "decode_line",
    "encode_line",
    "QUARANTINE_DISCARDED",
    "QUARANTINE_RECORDED",
    "QUARANTINE_RELEASED",
    "Observability",
    "LedgerReplay",
    "VerdictLedger",
    "ledger_files",
    "replay_ledger",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
