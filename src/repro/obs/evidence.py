"""Evidence-record schema (v1) of the verdict/lifecycle ledger.

An operator asking *"why was this device restricted, under which model
epoch, and what did the fleet look like at the time?"* needs the answer to
survive the call that produced it.  PR 5 attached provenance (reference
indices + draw seed) to every verdict, but the evidence evaporated the
moment ``identify()`` returned.  An :class:`EvidenceRecord` is that
evidence made durable: one flat, JSON-serialisable fact about the serving
path, stamped with everything needed to reconstruct the decision later --
the fingerprint content key, the verdict and its provenance, the
identifier revision (the discrimination draw salt), the cache epoch
current at the time, and the enforcement action taken.

Records are schema-versioned (:data:`EVIDENCE_SCHEMA_VERSION`): decoding
rejects unknown versions and unknown keys instead of misreading bytes, so
a future layout change must bump the version rather than silently change
meaning.  The wire form is canonical JSON -- sorted keys, no whitespace --
so identical facts serialise to identical bytes (the determinism suite
relies on this).

Seven record kinds cover the serving path and the fleet control plane:

* ``"verdict"`` -- one identification leaving the pipeline;
* ``"enforcement"`` -- a gateway rule installed or replaced;
* ``"quarantine"`` -- an unknown device parked, released or discarded;
* ``"learn"`` -- a runtime type registration (fleet re-identification);
* ``"promotion"`` -- a provisional label cleared by operator review;
* ``"push"`` -- a model bundle published to the fleet distribution
  channel, watermarked with the epoch it carries;
* ``"apply"`` -- one gateway installing (or idempotently skipping) a
  pushed bundle via hot swap.

Adding the push/apply kinds was an additive vocabulary change: the key
layout is untouched, so the schema version stays 1 (a v1 reader that
predates the fleet layer rejects the new kinds loudly rather than
misreading them).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.exceptions import LedgerError

#: Bump on any incompatible change to the record layout.
EVIDENCE_SCHEMA_VERSION = 1

#: Record kinds -- see the module docstring.
KIND_VERDICT = "verdict"
KIND_ENFORCEMENT = "enforcement"
KIND_QUARANTINE = "quarantine"
KIND_LEARN = "learn"
KIND_PROMOTION = "promotion"
KIND_PUSH = "push"
KIND_APPLY = "apply"

EVIDENCE_KINDS = (
    KIND_VERDICT,
    KIND_ENFORCEMENT,
    KIND_QUARANTINE,
    KIND_LEARN,
    KIND_PROMOTION,
    KIND_PUSH,
    KIND_APPLY,
)

#: ``detail["transition"]`` values of quarantine records.
QUARANTINE_RECORDED = "recorded"
QUARANTINE_RELEASED = "released"
QUARANTINE_DISCARDED = "discarded"

#: Sentinel sequence of a record that has not been appended to a ledger
#: yet; :meth:`~repro.obs.ledger.VerdictLedger.append` assigns the real
#: monotonic sequence number.
UNASSIGNED_SEQUENCE = -1

#: Every key a serialised v1 record may carry (sorted).  Decoding rejects
#: documents with unknown keys: additive layout changes bump the schema.
_RECORD_KEYS = frozenset(
    {
        "schema",
        "sequence",
        "kind",
        "stream_time",
        "mac",
        "fingerprint_key",
        "verdict",
        "matched_types",
        "provenance",
        "identifier_revision",
        "cache_epoch",
        "enforcement_action",
        "from_cache",
        "completion_reason",
        "detail",
    }
)


@dataclass(frozen=True)
class EvidenceRecord:
    """One durable fact about the serving path (schema v1).

    Attributes:
        kind: one of :data:`EVIDENCE_KINDS`.
        sequence: monotonic position in the ledger; assigned by
            :meth:`~repro.obs.ledger.VerdictLedger.append`
            (:data:`UNASSIGNED_SEQUENCE` before that).
        stream_time: stream-clock time of the event (packet timestamps,
            not wall clock -- identical drives produce identical values).
        mac: the device the record is about, ``aa:bb:..`` notation.
        fingerprint_key: hex digest of the fingerprint content hash (the
            dispatcher-cache / cluster / reference-draw key), when a
            fingerprint was in play.
        verdict: the identified device-type (verdict/enforcement records).
        matched_types: every classifier that accepted the fingerprint.
        provenance: per-candidate audit trail of the edit-distance stage:
            ``{device_type: {"reference_indices": [...],
            "selection_seed": int | None}}``.
        identifier_revision: the identifier revision current at the event
            (the discrimination draw salt -- replaying the fingerprint
            against the same revision reproduces the verdict bit for bit).
        cache_epoch: the cache generation current at the event.
        enforcement_action: the isolation level installed (enforcement
            records).
        from_cache: True when the verdict was served from the LRU cache.
        completion_reason: why the fingerprint completed
            (``budget``/``idle``/``flush``/``relearn``/``reprofile``).
        detail: kind-specific payload (e.g. a learn record's upgraded /
            still-unknown fleet partition).

    Example:
        >>> record = EvidenceRecord(kind="verdict", mac="02:00:00:00:00:01",
        ...                         verdict="HueBridge")
        >>> decode_line(encode_line(record)) == record
        True
    """

    kind: str
    sequence: int = UNASSIGNED_SEQUENCE
    stream_time: float = 0.0
    mac: Optional[str] = None
    fingerprint_key: Optional[str] = None
    verdict: Optional[str] = None
    matched_types: tuple[str, ...] = ()
    provenance: Mapping[str, Any] = field(default_factory=dict)
    identifier_revision: Optional[int] = None
    cache_epoch: Optional[int] = None
    enforcement_action: Optional[str] = None
    from_cache: bool = False
    completion_reason: str = ""
    detail: Mapping[str, Any] = field(default_factory=dict)
    schema: int = EVIDENCE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in EVIDENCE_KINDS:
            raise LedgerError(
                f"unknown evidence kind {self.kind!r}; expected one of {EVIDENCE_KINDS}"
            )
        if self.schema != EVIDENCE_SCHEMA_VERSION:
            raise LedgerError(
                f"unsupported evidence schema {self.schema!r} "
                f"(this build writes/reads v{EVIDENCE_SCHEMA_VERSION})"
            )
        if self.sequence < UNASSIGNED_SEQUENCE:
            raise LedgerError(f"invalid sequence number {self.sequence!r}")

    def with_sequence(self, sequence: int) -> "EvidenceRecord":
        """A copy of the record carrying its assigned ledger position."""
        return replace(self, sequence=sequence)

    def to_dict(self) -> dict[str, Any]:
        """The record as a plain JSON-serialisable dict (tuples -> lists)."""
        return {
            "schema": self.schema,
            "sequence": self.sequence,
            "kind": self.kind,
            "stream_time": self.stream_time,
            "mac": self.mac,
            "fingerprint_key": self.fingerprint_key,
            "verdict": self.verdict,
            "matched_types": list(self.matched_types),
            "provenance": dict(self.provenance),
            "identifier_revision": self.identifier_revision,
            "cache_epoch": self.cache_epoch,
            "enforcement_action": self.enforcement_action,
            "from_cache": self.from_cache,
            "completion_reason": self.completion_reason,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvidenceRecord":
        """Validate and rebuild a record from its serialised form."""
        if not isinstance(payload, Mapping):
            raise LedgerError(f"evidence record must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - _RECORD_KEYS
        if unknown:
            raise LedgerError(f"evidence record carries unknown keys {sorted(unknown)}")
        schema = payload.get("schema")
        if schema != EVIDENCE_SCHEMA_VERSION:
            raise LedgerError(
                f"unsupported evidence schema {schema!r} "
                f"(this build reads v{EVIDENCE_SCHEMA_VERSION})"
            )
        missing = {"kind", "sequence"} - set(payload)
        if missing:
            raise LedgerError(f"evidence record missing required keys {sorted(missing)}")
        if not isinstance(payload["sequence"], int) or isinstance(payload["sequence"], bool):
            raise LedgerError(f"sequence must be an integer, got {payload['sequence']!r}")
        matched = payload.get("matched_types", [])
        if not isinstance(matched, (list, tuple)):
            raise LedgerError(f"matched_types must be a list, got {matched!r}")
        for key in ("identifier_revision", "cache_epoch"):
            value = payload.get(key)
            if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
                raise LedgerError(f"{key} must be an integer or null, got {value!r}")
        return cls(
            kind=payload["kind"],
            sequence=payload["sequence"],
            stream_time=float(payload.get("stream_time", 0.0)),
            mac=payload.get("mac"),
            fingerprint_key=payload.get("fingerprint_key"),
            verdict=payload.get("verdict"),
            matched_types=tuple(matched),
            provenance=dict(payload.get("provenance", {})),
            identifier_revision=payload.get("identifier_revision"),
            cache_epoch=payload.get("cache_epoch"),
            enforcement_action=payload.get("enforcement_action"),
            from_cache=bool(payload.get("from_cache", False)),
            completion_reason=str(payload.get("completion_reason", "")),
            detail=dict(payload.get("detail", {})),
            schema=schema,
        )


def encode_line(record: EvidenceRecord) -> str:
    """One canonical NDJSON line (sorted keys, compact, ``\\n``-terminated).

    Canonical form means identical records serialise to identical bytes,
    so two identically-driven gateways produce byte-identical ledgers.
    """
    return json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> EvidenceRecord:
    """Parse and validate one ledger line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise LedgerError(f"malformed ledger line: {error}") from error
    return EvidenceRecord.from_dict(payload)
