"""The observability hub: one object the serving path reports through.

:class:`Observability` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
with an optional :class:`~repro.obs.ledger.VerdictLedger` and knows how to
wire itself into every verdict-producing subsystem.  Components accept the
hub as an optional constructor argument and (a) register their existing
counters as pull-model metric *sources* and (b) report durable facts --
verdicts, enforcement changes, quarantine transitions, learns, promotions
-- as ledger records.  With no hub attached, nothing changes: every call
site guards on ``observability is not None`` and the hot path pays one
``is None`` test.

The hub is deliberately the *only* module that knows both worlds: the
evidence schema never imports serving-path types, and the serving path
never builds evidence records by hand.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.features.fingerprint import fingerprint_key
from repro.identification.model_store import legacy_fallback_counts
from repro.obs.evidence import (
    EVIDENCE_KINDS,
    KIND_APPLY,
    KIND_ENFORCEMENT,
    KIND_LEARN,
    KIND_PROMOTION,
    KIND_PUSH,
    KIND_QUARANTINE,
    KIND_VERDICT,
    EvidenceRecord,
)
from repro.obs.evidence import (
    QUARANTINE_DISCARDED as QUARANTINE_DISCARDED,
)
from repro.obs.evidence import (
    QUARANTINE_RECORDED as QUARANTINE_RECORDED,
)
from repro.obs.evidence import (
    QUARANTINE_RELEASED as QUARANTINE_RELEASED,
)
from repro.obs.ledger import VerdictLedger
from repro.obs.metrics import MetricsRegistry, Scalar

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.identification.autopilot import LifecycleAutopilot
    from repro.identification.lifecycle import LifecycleCoordinator, RelearnReport
    from repro.streaming.dispatcher import BatchDispatcher, IdentifiedDevice
    from repro.streaming.pipeline import GatewayEnforcementSink, StreamingPipeline


class Observability:
    """Metrics registry + evidence ledger behind one object.

    Attributes:
        metrics: the registry every wired subsystem reports through.
        ledger: optional durable evidence sink; ``None`` keeps metrics
            only (no disk I/O anywhere on the serving path).

    Example:
        >>> hub = Observability()
        >>> sorted(k for k in hub.snapshot() if k.startswith("ledger."))[:2]
        ['ledger.apply_records', 'ledger.enforcement_records']
    """

    def __init__(
        self,
        ledger: Optional[VerdictLedger] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ledger = ledger
        # Pre-created so the snapshot's key set is stable from record
        # zero (the determinism suite compares snapshots byte for byte).
        self._kind_counters = {
            kind: self.metrics.counter(f"ledger.{kind}_records") for kind in EVIDENCE_KINDS
        }
        self._identify_batch_seconds = self.metrics.histogram(
            "dispatcher.identify_batch_seconds"
        )
        self._assembler_flush_seconds = self.metrics.histogram(
            "pipeline.assembler_flush_seconds"
        )
        # Per-stage latency of the columnar datapath (one observe per
        # PacketBatch) so the *next* bottleneck is visible in snapshot().
        self._parse_batch_seconds = self.metrics.histogram("pipeline.parse_batch_seconds")
        self._assemble_batch_seconds = self.metrics.histogram(
            "pipeline.assemble_batch_seconds"
        )
        self._score_batch_seconds = self.metrics.histogram("pipeline.score_batch_seconds")
        # Legacy-bundle fallbacks are process-global (see model_store);
        # surfaced here so a reproducibility audit reads one snapshot.
        self.metrics.register_source("model_store", legacy_fallback_counts)

    # ------------------------------------------------------------------ #
    # The one read API.
    # ------------------------------------------------------------------ #
    def snapshot(self, include_timings: bool = True) -> dict:
        """Every wired metric, flat, sorted, JSON-serialisable."""
        return self.metrics.snapshot(include_timings=include_timings)

    def snapshot_json(self, include_timings: bool = True) -> str:
        """The snapshot as canonical JSON (sorted keys, stable bytes)."""
        return json.dumps(
            self.snapshot(include_timings=include_timings), sort_keys=True, indent=2
        )

    # ------------------------------------------------------------------ #
    # Timing instruments (hot path: one histogram observe, no alloc).
    # ------------------------------------------------------------------ #
    def observe_identify_batch(self, seconds: float, batch_size: int) -> None:
        """One dispatcher identify call: per-batch latency."""
        del batch_size  # the denominator lives in dispatcher.batches
        self._identify_batch_seconds.observe(seconds)

    def observe_assembler_flush(self, seconds: float) -> None:
        """One end-of-stream assembler flush."""
        self._assembler_flush_seconds.observe(seconds)

    def observe_parse_batch(self, seconds: float) -> None:
        """One PacketBatch built from raw frames or packet objects."""
        self._parse_batch_seconds.observe(seconds)

    def observe_assemble_batch(self, seconds: float) -> None:
        """One batched assembler pass (feature matrix + per-device fold)."""
        self._assemble_batch_seconds.observe(seconds)

    def observe_score_batch(self, seconds: float) -> None:
        """One batched dispatch round (submit + poll) of a PacketBatch."""
        self._score_batch_seconds.observe(seconds)

    # ------------------------------------------------------------------ #
    # Source wiring (pull model; registration is idempotent per prefix).
    # ------------------------------------------------------------------ #
    def register_dispatcher(self, dispatcher: "BatchDispatcher") -> None:
        """Absorb the dispatcher's counters, its queue's and its cache's."""
        stats = dispatcher.stats
        queue_stats = dispatcher.queue.stats

        def dispatcher_source() -> dict[str, Scalar]:
            return {
                "submitted": stats.submitted,
                "dropped": stats.dropped,
                "batches": stats.batches,
                "batched": stats.batched,
                "identified": stats.identified,
                "identify_seconds": stats.identify_seconds,
                "last_batch_seconds": stats.last_batch_seconds,
                "largest_batch": stats.largest_batch,
                "linger_flushes": stats.linger_flushes,
                "swaps": stats.swaps,
            }

        def queue_source() -> dict[str, Scalar]:
            return {
                "offered": queue_stats.offered,
                "accepted": queue_stats.accepted,
                "dropped": queue_stats.dropped,
                "blocked": queue_stats.blocked,
                "high_watermark": queue_stats.high_watermark,
                "depth": len(dispatcher.queue),
                "capacity": dispatcher.queue.capacity,
            }

        self.metrics.register_source("dispatcher", dispatcher_source)
        self.metrics.register_source("dispatcher.queue", queue_source)
        cache = dispatcher.cache
        if cache is not None:

            def cache_source() -> dict[str, Scalar]:
                return {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "stale_rejections": cache.stale_rejections,
                    "size": len(cache),
                    "capacity": cache.capacity,
                    "epoch_generation": cache.epoch.generation,
                }

            self.metrics.register_source("identification_cache", cache_source)

    def register_pipeline(self, pipeline: "StreamingPipeline") -> None:
        """Absorb the assembler's counters and the dispatcher's (chained)."""
        stats = pipeline.assembler.stats

        def assembler_source() -> dict[str, Scalar]:
            return {
                "packets_observed": stats.packets_observed,
                "fingerprints_emitted": stats.fingerprints_emitted,
                "budget_emissions": stats.budget_emissions,
                "idle_emissions": stats.idle_emissions,
                "flush_emissions": stats.flush_emissions,
                "min_signal_drops": stats.min_signal_drops,
            }

        self.metrics.register_source("assembler", assembler_source)
        self.register_dispatcher(pipeline.dispatcher)

    def register_sink(self, sink: "GatewayEnforcementSink") -> None:
        """Absorb the enforcement sink's counters and the rule cache's."""

        def sink_source() -> dict[str, Scalar]:
            return {
                "enforced": sink.enforced,
                "skipped_downgrades": sink.skipped_downgrades,
                "sticky": sink.sticky,
            }

        rule_cache = sink.gateway.rule_cache

        def rule_cache_source() -> dict[str, Scalar]:
            return {
                "lookups": rule_cache.lookups,
                "hits": rule_cache.hits,
                "insertions": rule_cache.insertions,
                "replacements": rule_cache.replacements,
                "evictions": rule_cache.evictions,
                "size": len(rule_cache),
            }

        self.metrics.register_source("enforcement_sink", sink_source)
        self.metrics.register_source("rule_cache", rule_cache_source)

    def register_lifecycle(self, coordinator: "LifecycleCoordinator") -> None:
        """Absorb the quarantine log, epoch and coordinator counters."""

        def lifecycle_source() -> dict[str, Scalar]:
            return {
                "relearns": coordinator.relearns,
                "disconnects": coordinator.disconnects,
                "registered_caches": len(coordinator.registered_caches),
            }

        def quarantine_source() -> dict[str, Scalar]:
            log = coordinator.quarantine  # re-read: learns may replace it
            return {
                "recorded": log.recorded,
                "evicted": log.evicted,
                "released": log.released,
                "size": len(log),
                "capacity": log.capacity,
            }

        def epoch_source() -> dict[str, Scalar]:
            return {
                "generation": coordinator.epoch.generation,
                "invalidations": coordinator.epoch.invalidations,
            }

        self.metrics.register_source("lifecycle", lifecycle_source)
        self.metrics.register_source("quarantine", quarantine_source)
        self.metrics.register_source("cache_epoch", epoch_source)

    def register_autopilot(self, autopilot: "LifecycleAutopilot") -> None:
        """Absorb the autopilot's trigger counters."""

        def autopilot_source() -> dict[str, Scalar]:
            return {
                "triggers_fired": autopilot.triggers_fired,
                "learned": autopilot.learned,
                "rejected": autopilot.rejected,
                "cancelled": autopilot.cancelled,
                "pending": len(autopilot.pending),
            }

        self.metrics.register_source("autopilot", autopilot_source)

    # ------------------------------------------------------------------ #
    # Evidence records (the durable half).
    # ------------------------------------------------------------------ #
    def _emit(self, record: EvidenceRecord) -> Optional[EvidenceRecord]:
        self._kind_counters[record.kind].inc()
        if self.ledger is not None:
            return self.ledger.append(record)
        return None

    def record_verdict(
        self,
        identified: "IdentifiedDevice",
        revision: int,
        epoch: Optional[int],
        stream_time: float,
    ) -> None:
        """One identification leaving the pipeline, provenance included."""
        result = identified.result
        provenance = {
            device_type: {
                "reference_indices": list(indices),
                "selection_seed": seed,
            }
            for device_type, (indices, seed) in result.provenance.items()
        }
        self._emit(
            EvidenceRecord(
                kind=KIND_VERDICT,
                stream_time=stream_time,
                mac=str(identified.mac),
                fingerprint_key=fingerprint_key(identified.fingerprint).hex(),
                verdict=result.device_type,
                matched_types=tuple(result.matched_types),
                provenance=provenance,
                identifier_revision=revision,
                cache_epoch=epoch,
                from_cache=identified.from_cache,
                completion_reason=identified.completion_reason,
            )
        )

    def record_enforcement(
        self,
        mac: str,
        device_type: str,
        action: str,
        revision: Optional[int],
        epoch: Optional[int],
        stream_time: float,
        fingerprint_key_hex: Optional[str] = None,
    ) -> None:
        """A gateway rule installed or replaced for one device."""
        self._emit(
            EvidenceRecord(
                kind=KIND_ENFORCEMENT,
                stream_time=stream_time,
                mac=mac,
                fingerprint_key=fingerprint_key_hex,
                verdict=device_type,
                enforcement_action=action,
                identifier_revision=revision,
                cache_epoch=epoch,
            )
        )

    def record_quarantine(
        self,
        mac: str,
        transition: str,
        revision: Optional[int],
        epoch: Optional[int],
        stream_time: float,
        fingerprint_key_hex: Optional[str] = None,
        completion_reason: str = "",
    ) -> None:
        """An unknown device parked (``recorded``), ``released`` by a
        successful identification, or ``discarded`` on departure."""
        self._emit(
            EvidenceRecord(
                kind=KIND_QUARANTINE,
                stream_time=stream_time,
                mac=mac,
                fingerprint_key=fingerprint_key_hex,
                identifier_revision=revision,
                cache_epoch=epoch,
                completion_reason=completion_reason,
                detail={"transition": transition},
            )
        )

    def record_learn(
        self,
        report: "RelearnReport",
        revision: int,
        stream_time: float = 0.0,
    ) -> None:
        """A runtime type registration and its fleet re-identification."""
        self._emit(
            EvidenceRecord(
                kind=KIND_LEARN,
                stream_time=stream_time,
                verdict=report.device_type,
                identifier_revision=revision,
                cache_epoch=report.generation,
                detail={
                    "quarantined": report.quarantined,
                    "upgraded": [str(mac) for mac in report.upgraded],
                    "still_unknown": [str(mac) for mac in report.still_unknown],
                    "snapshot_path": str(report.snapshot_path)
                    if report.snapshot_path is not None
                    else None,
                },
            )
        )

    def record_push(
        self,
        push_id: int,
        bundle_path: str,
        epoch: int,
        revision: int,
        duplicate: bool = False,
        note: str = "",
        stream_time: float = 0.0,
    ) -> None:
        """A model bundle published to the fleet distribution channel."""
        self._emit(
            EvidenceRecord(
                kind=KIND_PUSH,
                stream_time=stream_time,
                identifier_revision=revision,
                cache_epoch=epoch,
                detail={
                    "push_id": push_id,
                    "bundle_path": bundle_path,
                    "duplicate": duplicate,
                    "note": note,
                },
            )
        )

    def record_apply(
        self,
        gateway: str,
        epoch: int,
        revision: int,
        applied: bool,
        push_id: Optional[int] = None,
        reason: str = "",
        stream_time: float = 0.0,
    ) -> None:
        """One gateway installing (or idempotently skipping) a pushed bundle.

        ``applied=False`` marks the counted no-op of a replayed/duplicate
        push -- the record is still emitted so the ledger shows the
        gateway *saw* the push, which is what a convergence audit needs.
        """
        self._emit(
            EvidenceRecord(
                kind=KIND_APPLY,
                stream_time=stream_time,
                identifier_revision=revision,
                cache_epoch=epoch,
                detail={
                    "gateway": gateway,
                    "push_id": push_id,
                    "applied": applied,
                    "reason": reason,
                },
            )
        )

    def record_promotion(
        self,
        label: str,
        upgraded: int,
        revision: Optional[int],
        epoch: Optional[int],
        stream_time: float = 0.0,
    ) -> None:
        """A provisional label cleared (and its fleet re-assessed)."""
        self._emit(
            EvidenceRecord(
                kind=KIND_PROMOTION,
                stream_time=stream_time,
                verdict=label,
                identifier_revision=revision,
                cache_epoch=epoch,
                detail={"upgraded": upgraded},
            )
        )
