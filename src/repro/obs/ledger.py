"""Append-only NDJSON ledger of evidence records, with rotation and replay.

The write side (:class:`VerdictLedger`) is built for a serving gateway:

* **append-only, line-atomic** -- each record is one canonical JSON line
  written with a single ``os.write`` on an ``O_APPEND`` descriptor, so a
  crash can truncate at most the final line and concurrent readers never
  observe a torn record;
* **monotonic sequence numbers** -- assigned at append time, recovered
  from the files on re-open, so a restarted gateway continues the
  sequence instead of restarting it (replay order is provable);
* **size-based rotation** -- when the active file would exceed
  ``max_bytes`` it is rotated to ``<name>.1`` (older generations shift
  up) and at most ``max_files`` rotated generations are kept, bounding
  disk use like the paper bounds the rule cache.

The read side (:func:`replay_ledger`) validates what it replays: every
line must decode as a schema-v1 :class:`~repro.obs.evidence.EvidenceRecord`
and sequences must be strictly increasing across the whole file chain.
The single tolerated defect is a truncated final line of the most recent
file -- exactly the state a mid-append crash leaves behind -- which is
counted, not silently swallowed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.exceptions import LedgerError
from repro.obs.evidence import EvidenceRecord, decode_line, encode_line


def ledger_files(path: Union[str, Path]) -> list[Path]:
    """Every existing file of a ledger chain, oldest first.

    Rotated generations ``<name>.N .. <name>.1`` precede the active file,
    so concatenating their lines yields the full record stream in append
    order.
    """
    active = Path(path)
    rotated: list[tuple[int, Path]] = []
    for candidate in sorted(active.parent.glob(active.name + ".*")):
        suffix = candidate.name[len(active.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), candidate))
    files = [file for _, file in sorted(rotated, reverse=True)]
    if active.exists():
        files.append(active)
    return files


class VerdictLedger:
    """Append-only, rotating NDJSON sink for evidence records.

    Attributes:
        path: the active ledger file; rotated generations live beside it
            as ``<name>.1`` (most recent) .. ``<name>.<max_files>``.
        max_bytes: rotation threshold; an append that would push the
            active file past it rotates first.  A single record larger
            than ``max_bytes`` still lands (alone) in a fresh file --
            records are never split or dropped.
        max_files: rotated generations kept; older ones are deleted.

    Example:
        >>> import tempfile, os
        >>> from repro.obs.evidence import EvidenceRecord
        >>> path = os.path.join(tempfile.mkdtemp(), "ledger.ndjson")
        >>> with VerdictLedger(path) as ledger:
        ...     ledger.append(EvidenceRecord(kind="verdict")).sequence
        0
        >>> replay_ledger(path).records[0].kind
        'verdict'
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = 4 * 1024 * 1024,
        max_files: int = 4,
    ):
        if max_bytes <= 0:
            raise LedgerError(f"max_bytes must be positive, got {max_bytes}")
        if max_files <= 0:
            raise LedgerError(f"max_files must be positive, got {max_files}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.records_written = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._next_sequence = self._recover_next_sequence()
        self._repair_torn_tail()
        self._fd: Optional[int] = None
        self._size = 0
        self._open_active()

    # ------------------------------------------------------------------ #
    # Write path.
    # ------------------------------------------------------------------ #
    def append(self, record: EvidenceRecord) -> EvidenceRecord:
        """Assign the next sequence number and durably append the record.

        Returns the record as written (sequence assigned).  The line is
        written with one ``os.write`` call -- a crash mid-append can
        truncate the final line but never interleave or tear earlier
        ones; :func:`replay_ledger` recovers by dropping that tail.
        """
        if self._fd is None:
            raise LedgerError(f"ledger {self.path} is closed")
        stamped = record.with_sequence(self._next_sequence)
        data = encode_line(stamped).encode("utf-8")
        if self._size > 0 and self._size + len(data) > self.max_bytes:
            self._rotate()
        os.write(self._fd, data)
        self._size += len(data)
        self._next_sequence += 1
        self.records_written += 1
        return stamped

    @property
    def next_sequence(self) -> int:
        """The sequence number the next append will be stamped with."""
        return self._next_sequence

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "VerdictLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Rotation and recovery.
    # ------------------------------------------------------------------ #
    def _open_active(self) -> None:
        self._fd = os.open(
            self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        self._size = os.fstat(self._fd).st_size

    def _rotate(self) -> None:
        """Shift generations up, retire the oldest, start a fresh file."""
        os.close(self._fd)
        self._fd = None
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                source.rename(self.path.with_name(f"{self.path.name}.{index + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self.rotations += 1
        self._open_active()

    def _repair_torn_tail(self) -> None:
        """Drop an unterminated final line left by a mid-append crash.

        The descriptor is ``O_APPEND``: without this repair, a reopened
        ledger would write its next record onto the *same line* as the
        torn tail, turning a recoverable crash artefact into a corrupt
        (complete) line that fails replay.  The torn record was never
        acknowledged, so dropping it loses nothing.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def _recover_next_sequence(self) -> int:
        """Continue the sequence of an existing ledger chain after re-open.

        Scans the chain newest-first and returns one past the last valid
        record's sequence (0 for a fresh ledger).  A truncated final line
        -- the one defect a crash can leave -- is skipped, matching the
        reader's recovery rule.
        """
        for file in reversed(ledger_files(self.path)):
            last: Optional[int] = None
            for record, truncated in _iter_file(file, tolerate_tail=True):
                if not truncated:
                    last = record.sequence
            if last is not None:
                return last + 1
        return 0


# --------------------------------------------------------------------- #
# Read / replay side.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LedgerReplay:
    """The validated contents of one ledger chain."""

    records: tuple[EvidenceRecord, ...]
    files: tuple[Path, ...]
    truncated_lines: int = 0

    def for_mac(self, mac: str) -> tuple[EvidenceRecord, ...]:
        """Every record about one device, in append order."""
        return tuple(record for record in self.records if record.mac == mac)


def _iter_file(
    file: Path, tolerate_tail: bool
) -> Iterator[tuple[Optional[EvidenceRecord], bool]]:
    """Yield ``(record, truncated)`` pairs for one ledger file.

    A decode failure on a complete (newline-terminated) line always
    raises -- rotated files are written whole lines at a time, so a bad
    line there is corruption, not a crash artefact.  With
    ``tolerate_tail``, a final line that is missing its newline *and*
    fails to decode yields the single marker ``(None, True)`` instead:
    exactly the state a mid-append crash leaves behind.
    """
    text = file.read_text(encoding="utf-8")
    if not text:
        return
    terminated = text.endswith("\n")
    lines = text.splitlines()
    for index, line in enumerate(lines):
        is_unterminated_tail = index == len(lines) - 1 and not terminated
        try:
            yield decode_line(line), False
        except LedgerError:
            if tolerate_tail and is_unterminated_tail:
                yield None, True
                return
            raise LedgerError(
                f"{file.name}:{index + 1}: invalid ledger record: {line[:120]!r}"
            ) from None


def replay_ledger(path: Union[str, Path]) -> LedgerReplay:
    """Validate and replay a whole ledger chain (rotated files included).

    Guarantees on return: every record decoded as schema v1, and sequence
    numbers strictly increase across the chain.  The only tolerated
    defect is a truncated final line of the most recent file (a crash
    mid-append); it is dropped and counted in ``truncated_lines``.
    """
    files = ledger_files(path)
    if not files:
        raise LedgerError(f"no ledger found at {path}")
    records: list[EvidenceRecord] = []
    truncated = 0
    previous: Optional[int] = None
    for file_index, file in enumerate(files):
        is_last_file = file_index == len(files) - 1
        for record, was_truncated in _iter_file(file, tolerate_tail=is_last_file):
            if was_truncated:
                truncated += 1
                break
            if previous is not None and record.sequence <= previous:
                raise LedgerError(
                    f"{file.name}: sequence {record.sequence} does not increase "
                    f"monotonically (previous record was {previous})"
                )
            previous = record.sequence
            records.append(record)
    return LedgerReplay(
        records=tuple(records), files=tuple(files), truncated_lines=truncated
    )
