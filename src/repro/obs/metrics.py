"""A lightweight metrics surface: counters, gauges, bounded histograms.

The serving path already counts everything that matters -- cache hits,
stale rejections, queue watermarks, quarantine churn -- but as ad-hoc
attributes scattered across half a dozen subsystems, each with its own
spelling and no single place to read them.  This module is the one
surface: a :class:`MetricsRegistry` that owns *instruments* (counters,
gauges and bounded latency histograms updated on the hot path with zero
per-observation allocation) and *sources* (pull-model callables that
expose the counters subsystems already keep, at snapshot time, with zero
hot-path cost at all).

Design rules, all in service of the determinism suite:

* ``snapshot()`` returns one flat, sorted, JSON-serialisable dict --
  stable key order, so two identically-driven gateways produce
  byte-identical snapshot JSON;
* ratios (hit rates) are **derived in** ``snapshot()`` from the raw
  counters, never stored -- a stored ratio goes stale and double-rounds;
* every wall-clock-derived metric carries ``seconds`` in its name;
  ``snapshot(include_timings=False)`` drops them, leaving exactly the
  deterministic counters (what the byte-identical comparison runs over).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Mapping, Optional, Sequence, TypeVar, Union

from repro.exceptions import ObservabilityError

Scalar = Union[int, float, str, bool]

#: Default histogram bucket upper bounds (seconds): 100 us .. 2.5 s, the
#: range the dispatcher's identify path and the assembler flush live in.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def export_into(self, flat: dict[str, Scalar]) -> None:
        flat[self.name] = self.value


class Gauge:
    """A point-in-time value instrument (can go up and down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def export_into(self, flat: dict[str, Scalar]) -> None:
        flat[self.name] = self.value


class Histogram:
    """A bounded histogram with zero per-observation allocation.

    Bucket upper bounds are fixed at construction; :meth:`observe` is a
    binary search over a tuple plus three scalar updates -- no dict,
    list or object allocation on the hot path.  Values above the largest
    bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not buckets:
            raise ObservabilityError(f"histogram {name} needs at least one bucket bound")
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.max:
            self.max = value

    def export_into(self, flat: dict[str, Scalar]) -> None:
        flat[f"{self.name}.count"] = self.count
        flat[f"{self.name}.sum"] = self.total
        flat[f"{self.name}.max"] = self.max
        for bound, count in zip(self.bounds, self.counts):
            flat[f"{self.name}.le_{bound:g}"] = count
        flat[f"{self.name}.le_inf"] = self.counts[-1]


#: The three instrument kinds, for the registry's get-or-create helper.
_InstrumentT = TypeVar("_InstrumentT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Instruments plus pull-model sources behind one ``snapshot()``.

    Example:
        >>> registry = MetricsRegistry()
        >>> registry.counter("demo.hits").inc(3)
        >>> registry.counter("demo.misses").inc(1)
        >>> snapshot = registry.snapshot()
        >>> snapshot["demo.hits"], snapshot["demo.hit_rate"]
        (3, 0.75)
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._sources: dict[str, Callable[[], Mapping[str, Scalar]]] = {}

    # ------------------------------------------------------------------ #
    # Instruments (push model, hot-path safe).
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if name in self._instruments:
            return self._instrument(name, Histogram)
        instrument = Histogram(name, buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        self._instruments[name] = instrument
        return instrument

    def _instrument(self, name: str, kind: "type[_InstrumentT]") -> "_InstrumentT":
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ObservabilityError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = kind(name)
        self._instruments[name] = instrument
        return instrument

    # ------------------------------------------------------------------ #
    # Sources (pull model: subsystems keep their own counters).
    # ------------------------------------------------------------------ #
    def register_source(
        self, prefix: str, collect: Callable[[], Mapping[str, Scalar]]
    ) -> None:
        """Register a callable polled at snapshot time.

        ``collect()`` must return a flat mapping of scalar values; each
        key lands in the snapshot as ``<prefix>.<key>``.  Re-registering
        a prefix replaces the source (a rebuilt pipeline supersedes the
        old one's view).
        """
        if not callable(collect):
            raise ObservabilityError(f"source {prefix!r} must be callable")
        self._sources[prefix] = collect

    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(sorted(self._sources))

    # ------------------------------------------------------------------ #
    # The one read API.
    # ------------------------------------------------------------------ #
    def snapshot(self, include_timings: bool = True) -> dict[str, Scalar]:
        """Every metric, flat, sorted, JSON-serialisable.

        Ratios are derived here from the raw counters: any ``<base>.hits``
        with a sibling ``<base>.lookups`` (or ``<base>.misses``) yields a
        ``<base>.hit_rate``.  With ``include_timings=False`` every key
        containing ``seconds`` is dropped -- what remains is fully
        deterministic for identically-driven pipelines (asserted by the
        determinism suite).
        """
        flat: dict[str, Scalar] = {}
        for prefix in sorted(self._sources):
            for key, value in self._sources[prefix]().items():
                if value is not None and not isinstance(value, (int, float, str, bool)):
                    raise ObservabilityError(
                        f"source {prefix!r} produced non-scalar {key}={value!r}"
                    )
                flat[f"{prefix}.{key}"] = value
        for name in sorted(self._instruments):
            self._instruments[name].export_into(flat)
        for key in [k for k in flat if k.endswith(".hits")]:
            base = key[: -len(".hits")]
            denominator = flat.get(f"{base}.lookups")
            if denominator is None:
                misses = flat.get(f"{base}.misses")
                if misses is None:
                    continue
                denominator = flat[key] + misses
            flat[f"{base}.hit_rate"] = flat[key] / denominator if denominator else 0.0
        if not include_timings:
            flat = {k: v for k, v in flat.items() if "seconds" not in k}
        return dict(sorted(flat.items()))
