"""Adversarial & churn campaign harness (hostile-scenario subsystem).

Named, seeded, declarative hostile campaigns over the full gateway
stack, emitting deterministic per-scenario JSON/CSV evidence artifacts.
See :mod:`repro.scenarios.base` for the artifact contract and
``tools/check_scenarios.py`` for the stdlib-only CI gate.
"""

from .base import (
    DEFAULT_TRAINED_TYPES,
    PROVISIONAL_PREFIX,
    SCENARIO_SCHEMA_VERSION,
    Campaign,
    CampaignOutcome,
    ScenarioReport,
    TruthRecord,
    artifact_digests,
    derive_seed,
    scenario_run_name,
    train_identifier,
)
from .campaigns import (
    CAMPAIGNS,
    BurstOverload,
    DhcpChurnCampaign,
    FirmwareDriftCampaign,
    MacRandomizationStorm,
    MimicryCampaign,
)
from .suite import ScenarioSuite, default_suite

__all__ = [
    "BurstOverload",
    "CAMPAIGNS",
    "Campaign",
    "CampaignOutcome",
    "DEFAULT_TRAINED_TYPES",
    "DhcpChurnCampaign",
    "FirmwareDriftCampaign",
    "MacRandomizationStorm",
    "MimicryCampaign",
    "PROVISIONAL_PREFIX",
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioReport",
    "ScenarioSuite",
    "TruthRecord",
    "artifact_digests",
    "default_suite",
    "derive_seed",
    "scenario_run_name",
    "train_identifier",
]
