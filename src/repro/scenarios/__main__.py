"""Run hostile campaigns from the command line.

Examples::

    python -m repro.scenarios --out runs/                 # full suite
    python -m repro.scenarios --scenario mimicry --out runs/ --seed 7
    python -m repro.scenarios --list
"""

from __future__ import annotations

import argparse
import sys

from .campaigns import CAMPAIGNS
from .suite import ScenarioSuite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run seeded hostile campaigns and emit evidence artifacts.",
    )
    parser.add_argument("--out", help="output directory for run artifacts")
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(CAMPAIGNS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, campaign_cls in sorted(CAMPAIGNS.items()):
            doc = (campaign_cls.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0
    if not args.out:
        parser.error("--out is required unless --list is given")

    names = args.scenario or sorted(CAMPAIGNS)
    suite = ScenarioSuite([CAMPAIGNS[name]() for name in names])
    reports = suite.run(args.seed, args.out)
    for report in reports:
        metrics = report.metrics
        print(
            f"{report.run_name}: devices={metrics['devices']} "
            f"misidentified={metrics['misidentified']} "
            f"quarantine={metrics['quarantine']['size']} "
            f"false_triggers={metrics['autopilot']['false_triggers']} "
            f"dropped={metrics['backpressure']['dropped']} "
            f"-> {report.report_path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
