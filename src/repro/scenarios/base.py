"""The campaign harness: seeded hostile scenarios with evidence-backed artifacts.

The paper's evaluation assumes honest devices performing clean setup
phases.  This package runs the opposite regime -- mimicry, MAC
randomization storms, firmware drift, DHCP churn, burst overload -- as
named, seeded, *declarative* campaigns over the existing simulator and a
full :func:`repro.api.build_gateway` stack, and scores what the gateway
did about it.

Design rules (the eval-workflow idiom the artifacts follow):

* **Deterministic run names.**  A campaign run is addressed as
  ``<scenario>__seed-<seed>``; no wall-clock label ever enters a name,
  so two runs of the same seed land in the same place and diff cleanly.
* **Byte-identical artifacts.**  ``report.json`` (canonical sorted-key
  JSON) and ``devices.csv`` (rows sorted by MAC) contain only
  stream-time-derived values -- the metrics snapshot is taken with
  ``include_timings=False`` and every float is rounded -- so the same
  seed reproduces the same bytes.
* **Evidence-backed claims.**  Every misidentification the report
  claims is cross-checked against the gateway's own evidence ledger
  (an :class:`~repro.obs.evidence.EvidenceRecord` verdict trail must
  exist for the MAC and verdict); the stdlib-only
  ``tools/check_scenarios.py`` gate re-verifies the same reconciliation
  in CI without importing :mod:`repro`.

A campaign subclass implements :meth:`Campaign._execute` -- build the
stack, render hostile traffic, drive it -- and returns a
:class:`CampaignOutcome` pairing the gateway handle with per-device
ground truth; scoring, ledger reconciliation and artifact writing are
shared here.
"""

from __future__ import annotations

import csv
import hashlib
import json
import shutil
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import ClassVar, Optional, Sequence, Union

from repro.api import GatewayConfig, GatewayHandle, build_gateway
from repro.datasets.builder import generate_fingerprint_dataset
from repro.identification.autopilot import AutopilotDecision
from repro.identification.identifier import UNKNOWN_DEVICE_TYPE, DeviceTypeIdentifier
from repro.net.addresses import MACAddress
from repro.obs.ledger import replay_ledger
from repro.simulation.clock import SimulatedClock

#: Artifact schema carried by every ``report.json`` (and the suite manifest).
SCENARIO_SCHEMA_VERSION = 1

#: Labels minted by the autopilot for auto-learned clusters.  A verdict
#: carrying this prefix is a *provisional* type, not a misidentification:
#: the gateway knowingly grouped an unseen model, it did not confuse the
#: device with a catalog type.
PROVISIONAL_PREFIX = "unknown-model-"

#: Default training catalog shared by the stock campaigns: small enough to
#: train in seconds, large enough for confusable neighbours to exist.
DEFAULT_TRAINED_TYPES = ("Aria", "D-LinkCam", "EdnetCam", "HueBridge", "WeMoSwitch")

#: Columns of ``devices.csv``, in order (the flat diffable view of
#: ``report.json``'s ``devices`` list).
DEVICE_CSV_COLUMNS = (
    "mac",
    "role",
    "true_type",
    "expected",
    "verdict",
    "isolation",
    "quarantined",
    "misidentified",
    "ledger_backed",
)


def derive_seed(seed: int, label: str) -> int:
    """A deterministic sub-seed for one labelled role of a campaign.

    Sub-seeds are content-derived (SHA-256 of ``"<seed>:<label>"``), so
    adding a new consumer never perturbs the streams of existing ones --
    the property that keeps artifact bytes stable across harness growth.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def scenario_run_name(name: str, seed: int) -> str:
    """The deterministic address of one campaign run (no wall-clock label)."""
    return f"{name}__seed-{seed}"


def train_identifier(
    types: Sequence[str], runs_per_type: int, seed: int
) -> DeviceTypeIdentifier:
    """Train a two-stage identifier on a synthetic catalog subset."""
    dataset = generate_fingerprint_dataset(
        runs_per_type=runs_per_type,
        device_names=list(types),
        seed=seed % (2**32),
    )
    return DeviceTypeIdentifier.train(
        dataset.to_registry(), random_state=seed % (2**31 - 1)
    )


def local_admin_mac(rng) -> MACAddress:
    """A locally-administered (randomized) MAC, as privacy-mode devices use."""
    suffix = ":".join(f"{int(rng.integers(0, 256)):02x}" for _ in range(5))
    return MACAddress.from_string(f"06:{suffix}")


@dataclass(frozen=True)
class TruthRecord:
    """Ground truth for one device the campaign put on the wire.

    Attributes:
        mac: the MAC the device presented (string form).
        role: the campaign-assigned part ("honest", "impostor", "storm", ...).
        true_type: the device's actual catalog model.
        expected: what an honest gateway should conclude -- the trained
            type name, or ``"unknown"`` when the model is not in the bank.
    """

    mac: str
    role: str
    true_type: str
    expected: str


@dataclass
class CampaignOutcome:
    """What :meth:`Campaign._execute` hands back for scoring.

    Attributes:
        handle: the scored (primary) gateway; its ledger backs the report.
        truth: per-device ground truth, keyed by MAC string.
        extra_metrics: campaign-specific deterministic metrics, merged
            into the report under their own keys.
        handles: every handle to close (fleet campaigns); defaults to
            just ``handle``.
        autopilot_decisions: decisions returned by autopilot polls the
            campaign ran, used for false-trigger accounting.
        phantom_macs: MACs that are *not* distinct physical devices
            (spoofed / rotated identities); an autopilot trigger whose
            cluster lies entirely inside this set is a false trigger.
    """

    handle: GatewayHandle
    truth: dict[str, TruthRecord]
    extra_metrics: dict = field(default_factory=dict)
    handles: list[GatewayHandle] = field(default_factory=list)
    autopilot_decisions: list[AutopilotDecision] = field(default_factory=list)
    phantom_macs: set[str] = field(default_factory=set)

    def all_handles(self) -> list[GatewayHandle]:
        return self.handles if self.handles else [self.handle]


@dataclass
class ScenarioReport:
    """One scored campaign run and the artifact files it wrote."""

    scenario: str
    seed: int
    run_name: str
    run_dir: Path
    metrics: dict
    devices: list[dict]
    ledger_name: str = "gateway-ledger.ndjson"

    @property
    def report_path(self) -> Path:
        return self.run_dir / "report.json"

    @property
    def csv_path(self) -> Path:
        return self.run_dir / "devices.csv"


@dataclass
class Campaign:
    """Base class of all hostile campaigns: knobs in, scored artifact out.

    Subclasses set :attr:`name`, add their scenario knobs as dataclass
    fields and implement :meth:`_execute`.  :meth:`run` owns the shared
    contract: a wiped deterministic run directory, scoring against
    ground truth, ledger reconciliation, and canonical JSON/CSV artifact
    bytes.
    """

    trained_types: Sequence[str] = DEFAULT_TRAINED_TYPES
    runs_per_type: int = 6

    name: ClassVar[str] = "campaign"

    # ------------------------------------------------------------------ #
    # The subclass surface.
    # ------------------------------------------------------------------ #
    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses.
    # ------------------------------------------------------------------ #
    def _train(self, seed: int) -> DeviceTypeIdentifier:
        return train_identifier(
            self.trained_types, self.runs_per_type, derive_seed(seed, f"{self.name}:train")
        )

    def _build_gateway(
        self, identifier: DeviceTypeIdentifier, run_dir: Path, **overrides
    ) -> GatewayHandle:
        """A full gateway stack writing its evidence ledger into the run dir."""
        name = overrides.pop("name", "gateway")
        config = GatewayConfig(
            identifier=identifier,
            name=name,
            ledger_path=run_dir / f"{name}-ledger.ndjson",
            clock=SimulatedClock(),
            **overrides,
        )
        return build_gateway(config)

    def knobs(self) -> dict:
        """The campaign's declarative configuration (recorded in the report)."""
        payload = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[config_field.name] = value
        return payload

    # ------------------------------------------------------------------ #
    # The run contract.
    # ------------------------------------------------------------------ #
    def run(self, seed: int, out_dir: Union[str, Path]) -> ScenarioReport:
        """Execute, score and persist one seeded run of this campaign.

        The run directory ``<out_dir>/<name>__seed-<seed>`` is wiped
        first so re-runs start from identical state (stale ledgers would
        otherwise be appended to and break byte-stability).
        """
        run_dir = Path(out_dir) / scenario_run_name(self.name, seed)
        if run_dir.exists():
            shutil.rmtree(run_dir)
        run_dir.mkdir(parents=True)
        outcome = self._execute(seed, run_dir)
        # Close before scoring: scoring replays the evidence ledger from
        # disk, so every buffered record must be durable first.
        for handle in outcome.all_handles():
            handle.close()
        report = self._score(seed, run_dir, outcome)
        _write_artifacts(self, report)
        return report

    # ------------------------------------------------------------------ #
    # Scoring.
    # ------------------------------------------------------------------ #
    def _score(self, seed: int, run_dir: Path, outcome: CampaignOutcome) -> ScenarioReport:
        handle = outcome.handle
        gateway = handle.gateway
        now = handle.clock.now()
        records_by_mac = {str(mac): record for mac, record in gateway.devices.items()}
        quarantined_macs = (
            {str(mac) for mac in handle.lifecycle.quarantine.macs()}
            if handle.lifecycle is not None
            else set()
        )
        replay = replay_ledger(handle.config.ledger_path)
        verdict_trail: dict[str, set[str]] = {}
        ledger_kinds: dict[str, int] = {}
        for record in replay.records:
            ledger_kinds[record.kind] = ledger_kinds.get(record.kind, 0) + 1
            # The evidence trail of a verdict: its dispatcher-path verdict
            # record, or the enforcement record of a sink-applied verdict
            # (the reprofile scheduler bypasses the dispatcher entirely).
            if record.kind in ("verdict", "enforcement") and record.mac is not None:
                if record.verdict is not None:
                    verdict_trail.setdefault(record.mac, set()).add(record.verdict)

        rows: list[dict] = []
        misidentified = identified = unassessed = 0
        backed = 0
        for mac in sorted(outcome.truth):
            truth = outcome.truth[mac]
            record = records_by_mac.get(mac)
            verdict = record.device_type if record is not None else None
            isolation = (
                record.isolation_level.name.lower()
                if record is not None and record.isolation_level is not None
                else ""
            )
            wrong = _is_misidentified(truth.expected, verdict)
            ledger_backed: Optional[bool] = None
            if wrong:
                misidentified += 1
                ledger_backed = verdict in verdict_trail.get(mac, set())
                if ledger_backed:
                    backed += 1
            if verdict is None:
                unassessed += 1
            elif verdict != UNKNOWN_DEVICE_TYPE:
                identified += 1
            rows.append(
                {
                    "mac": mac,
                    "role": truth.role,
                    "true_type": truth.true_type,
                    "expected": truth.expected,
                    "verdict": verdict,
                    "isolation": isolation,
                    "quarantined": mac in quarantined_macs,
                    "misidentified": wrong,
                    "ledger_backed": ledger_backed,
                }
            )

        snapshot = handle.snapshot(include_timings=False)
        metrics = {
            "devices": len(outcome.truth),
            "identified": identified,
            "unassessed": unassessed,
            "misidentified": misidentified,
            "misidentification_rate": _rate(misidentified, len(outcome.truth)),
            "quarantine": _quarantine_metrics(handle, now),
            "autopilot": _autopilot_metrics(handle, outcome),
            "enforcement": _enforcement_metrics(handle, rows),
            "backpressure": {
                "offered": snapshot.get("dispatcher.queue.offered", 0),
                "accepted": snapshot.get("dispatcher.queue.accepted", 0),
                "dropped": snapshot.get("dispatcher.queue.dropped", 0),
                "blocked": snapshot.get("dispatcher.queue.blocked", 0),
                "high_watermark": snapshot.get("dispatcher.queue.high_watermark", 0),
            },
            "ledger": {
                "verdict_records": ledger_kinds.get("verdict", 0),
                "enforcement_records": ledger_kinds.get("enforcement", 0),
                "quarantine_records": ledger_kinds.get("quarantine", 0),
                "learn_records": ledger_kinds.get("learn", 0),
                "misidentified_backed": backed,
            },
            "reconciliation": {
                "verdicts_match_identified": ledger_kinds.get("verdict", 0)
                == snapshot.get("dispatcher.identified", 0),
                "submitted_accounted": snapshot.get("dispatcher.submitted", 0)
                == snapshot.get("dispatcher.identified", 0)
                + snapshot.get("dispatcher.dropped", 0),
                "misidentified_all_backed": backed == misidentified,
            },
            "snapshot": snapshot,
        }
        metrics.update(outcome.extra_metrics)
        return ScenarioReport(
            scenario=self.name,
            seed=seed,
            run_name=scenario_run_name(self.name, seed),
            run_dir=run_dir,
            metrics=metrics,
            devices=rows,
            ledger_name=Path(handle.config.ledger_path).name,
        )


def _is_misidentified(expected: str, verdict: Optional[str]) -> bool:
    """A misidentification is a confident *wrong catalog* verdict.

    Never-assessed devices (dropped under backpressure) and honest
    "unknown" outcomes are misses, not misidentifications; provisional
    autopilot labels are deliberate groupings of unseen models.
    """
    if verdict in (None, UNKNOWN_DEVICE_TYPE):
        return False
    if verdict.startswith(PROVISIONAL_PREFIX):
        return False
    return verdict != expected


def _rate(numerator: int, denominator: int) -> float:
    return round(numerator / denominator, 6) if denominator else 0.0


def _quarantine_metrics(handle: GatewayHandle, now: float) -> dict:
    if handle.lifecycle is None:
        return {"size": 0, "recorded": 0, "evicted": 0, "released": 0, "max_age": 0.0, "mean_age": 0.0}
    log = handle.lifecycle.quarantine
    ages = [now - entry.quarantined_at for entry in log.devices()]
    return {
        "size": len(log),
        "recorded": log.recorded,
        "evicted": log.evicted,
        "released": log.released,
        "max_age": round(max(ages), 6) if ages else 0.0,
        "mean_age": round(sum(ages) / len(ages), 6) if ages else 0.0,
    }


def _autopilot_metrics(handle: GatewayHandle, outcome: CampaignOutcome) -> dict:
    autopilot = handle.autopilot
    if autopilot is None:
        return {
            "triggers_fired": 0,
            "false_triggers": 0,
            "false_trigger_rate": 0.0,
            "learned": 0,
            "pending": 0,
        }
    false_triggers = 0
    for decision in outcome.autopilot_decisions:
        if decision.action not in ("learned", "pending"):
            continue
        macs = {str(mac) for mac in decision.proposal.macs}
        if macs and macs <= outcome.phantom_macs:
            false_triggers += 1
    return {
        "triggers_fired": autopilot.triggers_fired,
        "false_triggers": false_triggers,
        "false_trigger_rate": _rate(false_triggers, autopilot.triggers_fired),
        "learned": autopilot.learned,
        "pending": len(autopilot.pending),
    }


def _enforcement_metrics(handle: GatewayHandle, rows: list[dict]) -> dict:
    levels: dict[str, int] = {}
    for row in rows:
        if row["isolation"]:
            levels[row["isolation"]] = levels.get(row["isolation"], 0) + 1
    return {
        "enforced": handle.sink.enforced,
        "skipped_downgrades": handle.sink.skipped_downgrades,
        "levels": dict(sorted(levels.items())),
    }


# ---------------------------------------------------------------------- #
# Artifact writing (canonical bytes).
# ---------------------------------------------------------------------- #
def canonical_json(payload: dict) -> str:
    """The one JSON encoding every scenario artifact uses (stable bytes)."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _write_artifacts(campaign: Campaign, report: ScenarioReport) -> None:
    payload = {
        "schema": SCENARIO_SCHEMA_VERSION,
        "scenario": report.scenario,
        "seed": report.seed,
        "run_name": report.run_name,
        "campaign": campaign.knobs(),
        "metrics": report.metrics,
        "devices": report.devices,
        "artifacts": {
            "devices_csv": "devices.csv",
            "ledger": report.ledger_name,
        },
    }
    report.report_path.write_text(canonical_json(payload), encoding="utf-8")
    with report.csv_path.open("w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream, lineterminator="\n")
        writer.writerow(DEVICE_CSV_COLUMNS)
        for row in report.devices:
            writer.writerow(["" if row[column] is None else row[column] for column in DEVICE_CSV_COLUMNS])


def artifact_digests(run_dir: Path) -> dict[str, str]:
    """SHA-256 of every contract artifact in a run directory.

    The contract set is ``report.json``, ``devices.csv`` and the ledger
    chain; scratch material (e.g. model bundles, whose zip container
    embeds timestamps) is excluded by construction.
    """
    digests: dict[str, str] = {}
    for path in sorted(run_dir.iterdir()):
        if not path.is_file():
            continue
        if path.name in ("report.json", "devices.csv") or "ledger.ndjson" in path.name:
            digests[path.name] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digests
