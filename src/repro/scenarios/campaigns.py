"""The five stock hostile campaigns.

Each campaign is a declarative dataclass: its fields are the scenario
knobs (recorded verbatim in the artifact under ``campaign``), its
:meth:`~repro.scenarios.base.Campaign._execute` renders the hostile
traffic with the simulator primitives (:func:`replay_trace` for
mimicry/rotation, :meth:`note_address_claim` for lease churn) and drives
a full :func:`~repro.api.build_gateway` stack -- or a 3-member fleet --
so every layer shipped since PR 1 sits in the blast radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api import GatewayConfig, GatewayHandle
from repro.devices.catalog import profile_of
from repro.devices.simulator import SetupTrafficSimulator, SetupTrace
from repro.fleet.channel import FleetCoordinator
from repro.identification.autopilot import ReprofileScheduler, TriggerPolicy
from repro.identification.identifier import UNKNOWN_DEVICE_TYPE
from repro.identification.lifecycle import QuarantineLog
from repro.identification.model_store import save_identifier
from repro.net.addresses import MACAddress
from repro.simulation.clock import SimulatedClock
from repro.streaming.assembler import ShardedFingerprintAssembler
from repro.streaming.sources import IterableSource, interleave_traces, replay_trace

from .base import (
    Campaign,
    CampaignOutcome,
    TruthRecord,
    derive_seed,
    local_admin_mac,
)

UNKNOWN = UNKNOWN_DEVICE_TYPE


def _source(traces: Sequence[SetupTrace]) -> IterableSource:
    return IterableSource(list(interleave_traces(traces)))


@dataclass
class MimicryCampaign(Campaign):
    """An off-catalog device replays a trained type's setup traffic.

    Honest devices join one per trained type; then ``impostors`` copies
    of ``impostor_type`` hardware put the *victim's* recorded setup trace
    on the wire under their own MACs (``replay_trace`` preserves
    fingerprint content exactly).  An honest ``impostor_type`` unit joins
    last as the control: it should be quarantined as unknown, while every
    impostor that earns the victim's verdict -- and the victim's
    isolation level -- is a scored, ledger-backed misidentification.
    """

    victim_type: str = "HueBridge"
    impostor_type: str = "SmarterCoffee"
    impostors: int = 3
    name = "mimicry"

    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        identifier = self._train(seed)
        simulator = SetupTrafficSimulator(seed=derive_seed(seed, f"{self.name}:traffic"))
        truth: dict[str, TruthRecord] = {}
        traces: list[SetupTrace] = []
        victim_trace = None
        for index, device_type in enumerate(self.trained_types):
            trace = simulator.simulate(profile_of(device_type), start_time=index * 5.0)
            traces.append(trace)
            truth[str(trace.device_mac)] = TruthRecord(
                str(trace.device_mac), "honest", device_type, device_type
            )
            if device_type == self.victim_type:
                victim_trace = trace
        if victim_trace is None:
            raise ValueError(f"victim_type {self.victim_type!r} not in trained_types")

        impostor_profile = profile_of(self.impostor_type)
        for index in range(self.impostors):
            mac = simulator.random_device_mac(impostor_profile)
            traces.append(replay_trace(victim_trace, mac, 40.0 + index * 10.0))
            truth[str(mac)] = TruthRecord(str(mac), "impostor", self.impostor_type, UNKNOWN)

        control = simulator.simulate(profile_of(self.impostor_type), start_time=90.0)
        traces.append(control)
        truth[str(control.device_mac)] = TruthRecord(
            str(control.device_mac), "honest-unknown", self.impostor_type, UNKNOWN
        )

        handle = self._build_gateway(identifier, run_dir)
        handle.run_until_idle(_source(traces))

        mimicked = sum(
            1
            for mac, record in handle.gateway.devices.items()
            if truth.get(str(mac), None) is not None
            and truth[str(mac)].role == "impostor"
            and record.device_type == self.victim_type
        )
        extra = {
            "mimicry": {
                "victim_type": self.victim_type,
                "impostor_type": self.impostor_type,
                "impostors": self.impostors,
                "succeeded": mimicked,
                "success_rate": round(mimicked / self.impostors, 6) if self.impostors else 0.0,
            }
        }
        return CampaignOutcome(handle=handle, truth=truth, extra_metrics=extra)


@dataclass
class MacRandomizationStorm(Campaign):
    """One physical device re-joins repeatedly under rotating random MACs.

    Every join replays the same setup procedure under a fresh
    locally-administered MAC, so the gateway sees ``joins`` phantom
    devices with *identical* fingerprints: the quarantine log fills past
    its capacity (eviction pressure) and the autopilot sees a perfect
    unseen-model cluster -- which it auto-learns.  Since every cluster
    member is the same physical device, that trigger is scored as a
    false trigger.
    """

    storm_type: str = "iKettle2"
    joins: int = 8
    rejoin_gap: float = 30.0
    quarantine_capacity: int = 6
    min_cluster_size: int = 3
    name = "mac-randomization-storm"

    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        identifier = self._train(seed)
        simulator = SetupTrafficSimulator(seed=derive_seed(seed, f"{self.name}:traffic"))
        truth: dict[str, TruthRecord] = {}
        traces: list[SetupTrace] = []
        for index, device_type in enumerate(self.trained_types):
            trace = simulator.simulate(profile_of(device_type), start_time=index * 3.0)
            traces.append(trace)
            truth[str(trace.device_mac)] = TruthRecord(
                str(trace.device_mac), "honest", device_type, device_type
            )

        base = simulator.simulate(profile_of(self.storm_type))
        mac_rng = np.random.default_rng(derive_seed(seed, f"{self.name}:macs"))
        phantom_macs: set[str] = set()
        for join in range(self.joins):
            mac = local_admin_mac(mac_rng)
            traces.append(replay_trace(base, mac, 30.0 + join * self.rejoin_gap))
            phantom_macs.add(str(mac))
            truth[str(mac)] = TruthRecord(str(mac), "storm", self.storm_type, UNKNOWN)

        handle = self._build_gateway(
            identifier,
            run_dir,
            autopilot=True,
            trigger_policy=TriggerPolicy(min_cluster_size=self.min_cluster_size),
        )
        # The bounded log is the scenario's subject: shrink it below the
        # join count so rotation pressure forces evictions.  The
        # coordinator re-reads its ``quarantine`` attribute, so swapping
        # the log pre-traffic is safe.
        handle.lifecycle.quarantine = QuarantineLog(capacity=self.quarantine_capacity)
        handle.run_until_idle(_source(traces))
        decisions = handle.autopilot.poll(handle.clock.now())

        log = handle.lifecycle.quarantine
        extra = {
            "storm": {
                "joins": self.joins,
                "phantom_macs": sorted(phantom_macs),
                "quarantine_capacity": self.quarantine_capacity,
                "evictions": log.evicted,
                "phantom_labels": sorted(
                    decision.proposal.label
                    for decision in decisions
                    if decision.action == "learned"
                ),
            }
        }
        return CampaignOutcome(
            handle=handle,
            truth=truth,
            extra_metrics=extra,
            autopilot_decisions=decisions,
            phantom_macs=phantom_macs,
        )


@dataclass
class FirmwareDriftCampaign(Campaign):
    """Mid-campaign fingerprint drift across an epoch-coordinated fleet.

    A 3-member fleet is spawned from one pushed bundle and profiles the
    same device population.  Then two devices change their setup
    behaviour in place -- ``drift_device`` starts talking like an
    *untrained* model (true drift: known -> unknown, quarantined) and
    ``retype_device`` like another *trained* one (retype: rule replaced)
    -- and every member runs a :class:`ReprofileScheduler` pass over
    freshly assembled steady-state fingerprints.  The fleet must agree.
    """

    fleet_size: int = 3
    drift_device: str = "EdnetCam"
    drift_behavior: str = "Lightify"
    retype_device: str = "WeMoSwitch"
    retype_behavior: str = "Aria"
    name = "firmware-drift"

    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        identifier = self._train(seed)
        scratch = run_dir / "scratch"
        scratch.mkdir()
        bundle = save_identifier(scratch / "bundle.npz", identifier, epoch=1)

        fleet = FleetCoordinator(name=f"{self.name}-fleet")
        fleet.push(bundle, note="campaign baseline")
        members: list[GatewayHandle] = []
        for index in range(self.fleet_size):
            template = GatewayConfig(
                bundle_path=bundle,
                name="template",
                ledger_path=run_dir / f"gw-{index}-ledger.ndjson",
                clock=SimulatedClock(),
            )
            members.append(fleet.spawn_gateway(f"gw-{index}", template))

        simulator = SetupTrafficSimulator(seed=derive_seed(seed, f"{self.name}:traffic"))
        truth: dict[str, TruthRecord] = {}
        traces: list[SetupTrace] = []
        macs: dict[str, MACAddress] = {}
        for index, device_type in enumerate(self.trained_types):
            trace = simulator.simulate(profile_of(device_type), start_time=index * 5.0)
            traces.append(trace)
            macs[device_type] = trace.device_mac
            expected = device_type
            if device_type == self.drift_device:
                expected = UNKNOWN  # post-drift it behaves like an untrained model
            elif device_type == self.retype_device:
                expected = self.retype_behavior
            truth[str(trace.device_mac)] = TruthRecord(
                str(trace.device_mac), "fleet-device", device_type, expected
            )
        for member in members:
            member.run_until_idle(_source(traces))

        # Phase 2: the same MACs, new setup behaviour, assembled offline
        # into the steady-state fingerprints the scheduler re-identifies.
        behavior = {
            self.drift_device: self.drift_behavior,
            self.retype_device: self.retype_behavior,
        }
        fresh: dict[MACAddress, object] = {}
        assembler = ShardedFingerprintAssembler(shards=4)
        for device_type in self.trained_types:
            profile = profile_of(behavior.get(device_type, device_type))
            trace = simulator.simulate(profile, device_mac=macs[device_type], start_time=200.0)
            for packet in trace.packets:
                ready = assembler.observe(packet)
                if ready is not None:
                    fresh[ready.mac] = ready.fingerprint
        for ready in assembler.flush():
            fresh[ready.mac] = ready.fingerprint
        pairs = sorted(fresh.items(), key=lambda item: str(item[0]))

        reports = {}
        for member in members:
            scheduler = ReprofileScheduler(member.lifecycle, interval=1.0, batch_budget=64)
            report = scheduler.run(pairs, now=member.clock.now())
            reports[member.name] = {
                "examined": report.examined,
                "unchanged": sorted(str(mac) for mac in report.unchanged),
                "drifted": sorted(str(mac) for mac in report.drifted),
                "retyped": sorted(str(mac) for mac in report.retyped),
                "still_unknown": sorted(str(mac) for mac in report.still_unknown),
                "deferred": report.deferred,
            }
        agreement = len({
            (tuple(view["drifted"]), tuple(view["retyped"]))
            for view in reports.values()
        }) == 1
        extra = {"reprofile": reports, "fleet_agreement": agreement}
        return CampaignOutcome(
            handle=members[0], truth=truth, extra_metrics=extra, handles=members
        )


@dataclass
class DhcpChurnCampaign(Campaign):
    """Lease reassignment races between identification and enforcement.

    After a normal identification run (including an unknown device that
    re-joins under a rotated MAC, twice -- the quarantine dedup case), a
    scripted DHCP storm drives :meth:`SecurityGateway.note_address_claim`
    and :meth:`disconnect_device` through the hostile interleavings:
    a rotated identity claims its predecessor's lease *before* the
    predecessor is disconnected, and a re-addressed device's old lease is
    taken over by a neighbour.  The scored invariant is map coherence --
    no stale or dangling ``ip_to_mac`` entries, no double-counted
    quarantine identity.
    """

    unknown_type: str = "SmarterCoffee"
    rejoin_replays: int = 2
    name = "dhcp-churn"

    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        identifier = self._train(seed)
        simulator = SetupTrafficSimulator(seed=derive_seed(seed, f"{self.name}:traffic"))
        truth: dict[str, TruthRecord] = {}
        traces: list[SetupTrace] = []
        for index, device_type in enumerate(self.trained_types):
            trace = simulator.simulate(profile_of(device_type), start_time=index * 4.0)
            traces.append(trace)
            truth[str(trace.device_mac)] = TruthRecord(
                str(trace.device_mac), "honest", device_type, device_type
            )

        unknown_trace = simulator.simulate(profile_of(self.unknown_type), start_time=30.0)
        traces.append(unknown_trace)
        old_mac = unknown_trace.device_mac
        truth[str(old_mac)] = TruthRecord(str(old_mac), "rotating", self.unknown_type, UNKNOWN)
        rotated = local_admin_mac(np.random.default_rng(derive_seed(seed, f"{self.name}:rotated")))
        # The rotated identity re-runs setup more than once: the log must
        # refresh its single entry, not grow one per sighting.
        for replay in range(self.rejoin_replays):
            traces.append(replay_trace(unknown_trace, rotated, 60.0 + replay * 30.0))
        truth[str(rotated)] = TruthRecord(str(rotated), "rotating", self.unknown_type, UNKNOWN)

        handle = self._build_gateway(identifier, run_dir)
        handle.run_until_idle(_source(traces))

        gateway = handle.gateway
        claims = 0
        for trace in traces[: len(self.trained_types)]:
            gateway.note_address_claim(trace.device_mac, trace.device_ip, 150.0)
            claims += 1
        gateway.note_address_claim(rotated, unknown_trace.device_ip, 155.0)
        claims += 1
        # The race: the old identity leaves *after* its lease moved on.
        # Its record still holds the lease's IP, so an unguarded
        # disconnect would evict the rotated identity's fresh mapping.
        gateway.disconnect_device(old_mac)
        device_a, device_b = traces[0], traces[1]
        new_ip = "192.168.99.250"
        gateway.note_address_claim(device_a.device_mac, new_ip, 160.0)
        gateway.note_address_claim(device_b.device_mac, device_a.device_ip, 165.0)
        claims += 2

        stale = sum(
            1
            for mac, record in gateway.devices.items()
            if record.ip_address and gateway.ip_to_mac.get(record.ip_address) != mac
        )
        dangling = sum(1 for mac in gateway.ip_to_mac.values() if mac not in gateway.devices)
        log = handle.lifecycle.quarantine
        extra = {
            "dhcp": {
                "claims": claims,
                "disconnects": 1,
                "rotated_mac": str(rotated),
                "stale_ip_mappings": stale,
                "dangling_ip_entries": dangling,
                "rotated_lease_holder": str(gateway.ip_to_mac.get(unknown_trace.device_ip, "")),
                "quarantine_entries": len(log),
                "quarantine_recorded": log.recorded,
                "quarantine_released": log.released,
            }
        }
        return CampaignOutcome(
            handle=handle, truth=truth, extra_metrics=extra, phantom_macs={str(rotated)}
        )


@dataclass
class BurstOverload(Campaign):
    """Simultaneous joins far above the drop-policy backpressure budget.

    Every device starts its setup at t=0 with the dispatch queue sized
    *below* one batch, so auto-drain can never race ahead of the offer
    stream and the drop policy must shed load.  The scored contract is
    exact accounting: every assembled fingerprint is either an
    identified verdict with a ledger record or a counted drop -- nothing
    disappears silently.
    """

    devices: int = 24
    unknown_type: str = "SmarterCoffee"
    max_batch: int = 8
    queue_capacity: int = 4
    backpressure: str = "drop"
    name = "burst-overload"

    def _execute(self, seed: int, run_dir: Path) -> CampaignOutcome:
        identifier = self._train(seed)
        simulator = SetupTrafficSimulator(seed=derive_seed(seed, f"{self.name}:traffic"))
        population = list(self.trained_types) + [self.unknown_type]
        truth: dict[str, TruthRecord] = {}
        traces: list[SetupTrace] = []
        for index in range(self.devices):
            device_type = population[index % len(population)]
            trace = simulator.simulate(profile_of(device_type), start_time=0.0)
            traces.append(trace)
            expected = device_type if device_type in self.trained_types else UNKNOWN
            truth[str(trace.device_mac)] = TruthRecord(
                str(trace.device_mac), "burst", device_type, expected
            )

        handle = self._build_gateway(
            identifier,
            run_dir,
            backpressure=self.backpressure,
            max_batch=self.max_batch,
            queue_capacity=self.queue_capacity,
        )
        handle.run_until_idle(_source(traces))

        snapshot = handle.snapshot(include_timings=False)
        offered = snapshot.get("dispatcher.queue.offered", 0)
        accepted = snapshot.get("dispatcher.queue.accepted", 0)
        dropped = snapshot.get("dispatcher.queue.dropped", 0)
        blocked = snapshot.get("dispatcher.queue.blocked", 0)
        identified = snapshot.get("dispatcher.identified", 0)
        submitted = snapshot.get("dispatcher.submitted", 0)
        emitted = snapshot.get("assembler.fingerprints_emitted", 0)
        extra = {
            "burst": {
                "fingerprints_emitted": emitted,
                "submitted": submitted,
                "offered": offered,
                "accepted": accepted,
                "dropped": dropped,
                "blocked": blocked,
                "identified": identified,
                # No silently lost verdicts, either policy: every
                # fingerprint was submitted; each blocked offer is a
                # counted retry (MUST_DRAIN -> drain -> re-offer), so
                # offers decompose exactly into submissions + retries and
                # into accepts + drops + pushbacks; every accept became an
                # identified verdict.
                "exact_accounting": (
                    emitted == submitted
                    and offered == submitted + blocked
                    and offered == accepted + dropped + blocked
                    and accepted == identified
                ),
            }
        }
        return CampaignOutcome(handle=handle, truth=truth, extra_metrics=extra)


#: Registry of the stock campaigns, keyed by scenario name.
CAMPAIGNS = {
    campaign.name: campaign
    for campaign in (
        MimicryCampaign,
        MacRandomizationStorm,
        FirmwareDriftCampaign,
        DhcpChurnCampaign,
        BurstOverload,
    )
}
