"""The suite runner: every campaign, one seed, one diffable manifest."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from .base import (
    SCENARIO_SCHEMA_VERSION,
    Campaign,
    ScenarioReport,
    artifact_digests,
    canonical_json,
)
from .campaigns import CAMPAIGNS


def default_suite() -> list[Campaign]:
    """One instance of each stock campaign, registry order."""
    return [campaign_cls() for campaign_cls in CAMPAIGNS.values()]


class ScenarioSuite:
    """Runs a set of campaigns under one seed and writes a manifest.

    The manifest (``suite__seed-<seed>.json``) carries the SHA-256 of
    every contract artifact each run produced, so "two runs of the same
    seed are byte-identical" is checkable from the manifest alone -- the
    property ``tools/check_scenarios.py --compare`` enforces in CI.
    """

    def __init__(self, campaigns: Optional[Sequence[Campaign]] = None):
        self.campaigns = list(campaigns) if campaigns is not None else default_suite()

    def run(self, seed: int, out_dir: Union[str, Path]) -> list[ScenarioReport]:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        reports = [campaign.run(seed, out_dir) for campaign in self.campaigns]
        manifest = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "seed": seed,
            "scenarios": [
                {
                    "scenario": report.scenario,
                    "run_name": report.run_name,
                    "digests": artifact_digests(report.run_dir),
                    "headline": {
                        "devices": report.metrics["devices"],
                        "misidentified": report.metrics["misidentified"],
                        "misidentification_rate": report.metrics["misidentification_rate"],
                        "quarantine_size": report.metrics["quarantine"]["size"],
                        "autopilot_false_triggers": report.metrics["autopilot"]["false_triggers"],
                        "enforced": report.metrics["enforcement"]["enforced"],
                        "dropped": report.metrics["backpressure"]["dropped"],
                    },
                }
                for report in reports
            ],
        }
        manifest_path = out_dir / f"suite__seed-{seed}.json"
        manifest_path.write_text(canonical_json(manifest), encoding="utf-8")
        return reports
