"""Software-defined networking substrate (Open vSwitch + Floodlight stand-in).

The paper's Security Gateway is built from Open vSwitch managed by a custom
module running in the Floodlight SDN controller.  This subpackage models
the pieces of that stack the enforcement mechanism exercises: an
OpenFlow-style match/action rule language, a software switch with a
priority-ordered flow table and packet-in handling, and a controller that
hosts pluggable modules receiving packet-in events.
"""

from repro.sdn.openflow import FlowAction, FlowMatch, FlowRule
from repro.sdn.switch import ForwardingDecision, OpenVSwitch, SwitchPort
from repro.sdn.controller import ControllerModule, SdnController

__all__ = [
    "FlowAction",
    "FlowMatch",
    "FlowRule",
    "OpenVSwitch",
    "SwitchPort",
    "ForwardingDecision",
    "SdnController",
    "ControllerModule",
]
