"""A minimal SDN controller hosting pluggable modules (Floodlight stand-in).

The paper implements its monitoring/fingerprinting/enforcement logic as a
custom module of the Floodlight controller.  This controller model provides
the same structure: modules register for packet-in events, may install flow
rules on the switches the controller manages, and are invoked in
registration order until one of them returns a forwarding decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.exceptions import SdnError
from repro.net.packet import Packet
from repro.sdn.openflow import FlowAction, FlowRule
from repro.sdn.switch import OpenVSwitch


class ControllerModule(Protocol):
    """The interface controller modules implement."""

    name: str

    def on_packet_in(self, packet: Packet, switch: OpenVSwitch) -> Optional[FlowAction]:
        """Handle a packet the switch could not match; may return a decision."""


@dataclass
class SdnController:
    """The SDN controller: owns switches and dispatches packet-in events."""

    name: str = "floodlight"
    switches: dict[str, OpenVSwitch] = field(default_factory=dict)
    modules: list[ControllerModule] = field(default_factory=list)
    packet_in_count: int = 0

    # ------------------------------------------------------------------ #
    # Topology management.
    # ------------------------------------------------------------------ #
    def attach_switch(self, switch: OpenVSwitch) -> None:
        """Register a switch and wire its packet-in handler to this controller."""
        if switch.name in self.switches:
            raise SdnError(f"a switch named {switch.name!r} is already attached")
        self.switches[switch.name] = switch
        switch.packet_in_handler = self._handle_packet_in

    def detach_switch(self, name: str) -> None:
        switch = self.switches.pop(name, None)
        if switch is not None:
            switch.packet_in_handler = None

    def switch(self, name: str) -> OpenVSwitch:
        if name not in self.switches:
            raise SdnError(f"no switch named {name!r} is attached")
        return self.switches[name]

    # ------------------------------------------------------------------ #
    # Module management.
    # ------------------------------------------------------------------ #
    def register_module(self, module: ControllerModule) -> None:
        """Register a module; modules are consulted in registration order."""
        if any(existing.name == module.name for existing in self.modules):
            raise SdnError(f"a module named {module.name!r} is already registered")
        self.modules.append(module)

    def unregister_module(self, name: str) -> None:
        self.modules = [module for module in self.modules if module.name != name]

    # ------------------------------------------------------------------ #
    # Flow programming helpers used by modules.
    # ------------------------------------------------------------------ #
    def install_rule(self, switch_name: str, rule: FlowRule) -> None:
        self.switch(switch_name).install_rule(rule)

    def remove_rules(self, switch_name: str, cookie: str) -> int:
        return self.switch(switch_name).remove_rules(cookie)

    # ------------------------------------------------------------------ #
    # Packet-in dispatch.
    # ------------------------------------------------------------------ #
    def _handle_packet_in(self, packet: Packet, switch: OpenVSwitch) -> Optional[FlowAction]:
        self.packet_in_count += 1
        for module in self.modules:
            decision = module.on_packet_in(packet, switch)
            if decision is not None:
                return decision
        return None
