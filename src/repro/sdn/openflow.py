"""OpenFlow-style flow matches, actions and rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import SdnError
from repro.net.addresses import MACAddress
from repro.net.flow import FlowKey
from repro.net.packet import Packet


class FlowAction(str, enum.Enum):
    """What to do with traffic matching a rule."""

    FORWARD = "forward"
    DROP = "drop"
    SEND_TO_CONTROLLER = "send_to_controller"


@dataclass(frozen=True)
class FlowMatch:
    """An OpenFlow-like match over packet header fields.

    ``None`` fields are wildcards.  MAC matches let the Security Gateway
    express per-device rules (the paper keys enforcement rules on device
    MAC addresses); IP/port matches express the finer-grained restrictions
    of the *restricted* isolation level.
    """

    src_mac: Optional[MACAddress] = None
    dst_mac: Optional[MACAddress] = None
    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    protocol: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def matches_packet(self, packet: Packet) -> bool:
        """True when the packet satisfies every non-wildcard field."""
        if self.src_mac is not None and packet.src_mac != self.src_mac:
            return False
        if self.dst_mac is not None and packet.dst_mac != self.dst_mac:
            return False
        key = FlowKey.from_packet(packet)
        return self._matches_key_fields(key)

    def matches_flow(self, key: Optional[FlowKey], src_mac: Optional[MACAddress] = None,
                     dst_mac: Optional[MACAddress] = None) -> bool:
        """True when a flow key (plus optional MACs) satisfies the match."""
        if self.src_mac is not None and src_mac != self.src_mac:
            return False
        if self.dst_mac is not None and dst_mac != self.dst_mac:
            return False
        return self._matches_key_fields(key)

    def _matches_key_fields(self, key: Optional[FlowKey]) -> bool:
        needs_ip_fields = any(
            value is not None
            for value in (self.src_ip, self.dst_ip, self.protocol, self.src_port, self.dst_port)
        )
        if key is None:
            return not needs_ip_fields
        if self.src_ip is not None and key.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and key.dst_ip != self.dst_ip:
            return False
        if self.protocol is not None and key.protocol != self.protocol:
            return False
        if self.src_port is not None and key.src_port != self.src_port:
            return False
        if self.dst_port is not None and key.dst_port != self.dst_port:
            return False
        return True

    @property
    def specificity(self) -> int:
        """Number of non-wildcard fields (used for tie-breaking priorities)."""
        return sum(
            value is not None
            for value in (
                self.src_mac,
                self.dst_mac,
                self.src_ip,
                self.dst_ip,
                self.protocol,
                self.src_port,
                self.dst_port,
            )
        )


@dataclass
class FlowRule:
    """A prioritised match/action rule installed in the switch flow table."""

    match: FlowMatch
    action: FlowAction
    priority: int = 0
    cookie: str = ""
    packet_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise SdnError(f"rule priority cannot be negative: {self.priority}")

    def record_hit(self) -> None:
        self.packet_count += 1
