"""A software switch with a priority-ordered flow table (Open vSwitch stand-in)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import SdnError
from repro.net.addresses import MACAddress
from repro.net.packet import Packet
from repro.sdn.openflow import FlowAction, FlowRule


class SwitchPort(str, enum.Enum):
    """The logical ports of the Security Gateway switch (Fig. 1)."""

    WIFI = "wifi"
    ETHERNET = "eth0"
    UPLINK = "uplink"
    LOCAL = "local"


@dataclass(frozen=True)
class ForwardingDecision:
    """The outcome of processing one packet through the switch."""

    action: FlowAction
    rule: Optional[FlowRule]
    sent_to_controller: bool = False

    @property
    def forwarded(self) -> bool:
        return self.action == FlowAction.FORWARD

    @property
    def dropped(self) -> bool:
        return self.action == FlowAction.DROP


@dataclass
class OpenVSwitch:
    """A minimal Open vSwitch model: flow table, packet-in, statistics.

    Packets are matched against the flow table in priority order (ties
    broken by match specificity).  Misses are handed to the controller's
    packet-in handler when one is registered, otherwise the
    ``default_action`` applies.
    """

    name: str = "ovs-br0"
    default_action: FlowAction = FlowAction.FORWARD
    rules: list[FlowRule] = field(default_factory=list)
    packet_in_handler: Optional[Callable[[Packet, "OpenVSwitch"], Optional[FlowAction]]] = None

    packets_processed: int = 0
    packets_dropped: int = 0
    packets_to_controller: int = 0
    port_of_device: dict[MACAddress, SwitchPort] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Flow table management.
    # ------------------------------------------------------------------ #
    def install_rule(self, rule: FlowRule) -> None:
        """Install a rule, keeping the table sorted by descending priority."""
        self.rules.append(rule)
        self.rules.sort(key=lambda entry: (entry.priority, entry.match.specificity), reverse=True)

    def remove_rules(self, cookie: str) -> int:
        """Remove every rule carrying ``cookie``; returns the removal count."""
        if not cookie:
            raise SdnError("a non-empty cookie is required to remove rules")
        before = len(self.rules)
        self.rules = [rule for rule in self.rules if rule.cookie != cookie]
        return before - len(self.rules)

    def flush(self) -> None:
        """Drop the entire flow table."""
        self.rules.clear()

    @property
    def rule_count(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------ #
    # Port learning (which devices sit behind which interface).
    # ------------------------------------------------------------------ #
    def learn_port(self, mac: MACAddress, port: SwitchPort) -> None:
        self.port_of_device[mac] = port

    def port_of(self, mac: MACAddress) -> Optional[SwitchPort]:
        return self.port_of_device.get(mac)

    # ------------------------------------------------------------------ #
    # Datapath.
    # ------------------------------------------------------------------ #
    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        """Find the highest-priority rule matching the packet, if any."""
        for rule in self.rules:
            if rule.match.matches_packet(packet):
                return rule
        return None

    def process(self, packet: Packet, ingress_port: Optional[SwitchPort] = None) -> ForwardingDecision:
        """Process one packet: match, apply the action, update statistics."""
        self.packets_processed += 1
        if ingress_port is not None:
            self.learn_port(packet.src_mac, ingress_port)

        rule = self.lookup(packet)
        if rule is not None:
            rule.record_hit()
            action = rule.action
            sent_to_controller = False
            if action == FlowAction.SEND_TO_CONTROLLER:
                action = self._ask_controller(packet)
                sent_to_controller = True
            if action == FlowAction.DROP:
                self.packets_dropped += 1
            return ForwardingDecision(action=action, rule=rule, sent_to_controller=sent_to_controller)

        if self.packet_in_handler is not None:
            action = self._ask_controller(packet)
            if action == FlowAction.DROP:
                self.packets_dropped += 1
            return ForwardingDecision(action=action, rule=None, sent_to_controller=True)

        if self.default_action == FlowAction.DROP:
            self.packets_dropped += 1
        return ForwardingDecision(action=self.default_action, rule=None)

    def _ask_controller(self, packet: Packet) -> FlowAction:
        self.packets_to_controller += 1
        if self.packet_in_handler is None:
            return self.default_action
        decision = self.packet_in_handler(packet, self)
        return decision if decision is not None else self.default_action
