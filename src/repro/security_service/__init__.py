"""The IoT Security Service (IoTSSP) of the paper's system design.

The service receives device fingerprints from Security Gateways, identifies
the device-type with the two-stage classification pipeline, assesses the
type's vulnerability using a CVE-like repository and returns the isolation
level the gateway must enforce (Sect. III-B).
"""

from repro.security_service.isolation import IsolationLevel, isolation_level_for
from repro.security_service.service import IoTSecurityService, SecurityAssessment
from repro.security_service.vulnerability import (
    VulnerabilityDatabase,
    VulnerabilityRecord,
    build_default_database,
)

__all__ = [
    "IsolationLevel",
    "isolation_level_for",
    "IoTSecurityService",
    "SecurityAssessment",
    "VulnerabilityDatabase",
    "VulnerabilityRecord",
    "build_default_database",
]
