"""Isolation levels and the policy mapping vulnerability findings to them."""

from __future__ import annotations

import enum
from typing import Sequence


class IsolationLevel(str, enum.Enum):
    """The three isolation levels of Fig. 3.

    * ``STRICT``: the device may only talk to other devices inside the
      untrusted network overlay; no Internet access.  Applied to unknown
      device-types.
    * ``RESTRICTED``: untrusted overlay plus a limited set of remote
      destinations (typically the vendor cloud).  Applied to device-types
      with known vulnerabilities.
    * ``TRUSTED``: full access to the trusted overlay and the Internet.
      Applied to device-types without known vulnerabilities.
    """

    STRICT = "strict"
    RESTRICTED = "restricted"
    TRUSTED = "trusted"

    @property
    def allows_internet(self) -> bool:
        return self is not IsolationLevel.STRICT

    @property
    def allows_trusted_overlay(self) -> bool:
        return self is IsolationLevel.TRUSTED


def isolation_level_for(device_type_known: bool, vulnerabilities: Sequence) -> IsolationLevel:
    """The paper's assignment policy (Sect. III-B).

    Unknown device-types get ``STRICT``; known types with at least one
    vulnerability report get ``RESTRICTED``; known clean types get
    ``TRUSTED``.
    """
    if not device_type_known:
        return IsolationLevel.STRICT
    if vulnerabilities:
        return IsolationLevel.RESTRICTED
    return IsolationLevel.TRUSTED
