"""The IoT Security Service: identification + vulnerability assessment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.profiles import StepKind
from repro.devices.simulator import LabEnvironment
from repro.features.fingerprint import Fingerprint
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.security_service.isolation import IsolationLevel, isolation_level_for
from repro.security_service.vulnerability import (
    VulnerabilityDatabase,
    VulnerabilityRecord,
    build_default_database,
)

_CLOUD_STEP_KINDS = (
    StepKind.HTTPS_CONNECT,
    StepKind.HTTP_GET,
    StepKind.HTTP_POST,
    StepKind.TCP_CONNECT,
    StepKind.UDP_SEND,
    StepKind.NTP_SYNC,
)


def vendor_cloud_destinations(
    device_type: str, environment: Optional[LabEnvironment] = None
) -> tuple[str, ...]:
    """The cloud endpoints a device-type legitimately needs to reach.

    For the *restricted* isolation level the IoT Security Service hands the
    Security Gateway the set of permitted remote addresses; this helper
    derives them from the device's behaviour profile (the hosts it contacts
    during setup), resolved through the same deterministic resolver the
    traffic simulator uses.
    """
    if device_type not in DEVICE_CATALOG:
        return ()
    environment = environment or LabEnvironment()
    hosts: list[str] = []
    for step in DEVICE_CATALOG[device_type].steps:
        if step.kind in _CLOUD_STEP_KINDS and step.target:
            if step.target not in hosts:
                hosts.append(step.target)
    return tuple(environment.resolve(host) for host in hosts)


@dataclass(frozen=True)
class SecurityAssessment:
    """The answer the service returns to a Security Gateway for one device."""

    device_type: str
    isolation_level: IsolationLevel
    vulnerabilities: tuple[VulnerabilityRecord, ...] = ()
    allowed_destinations: tuple[str, ...] = ()
    identification: Optional[IdentificationResult] = None

    @property
    def is_unknown_device(self) -> bool:
        return self.isolation_level is IsolationLevel.STRICT and not self.vulnerabilities


@dataclass
class IoTSecurityService:
    """The cloud-side service combining identification and risk assessment.

    The service is stateless with respect to its gateway clients, exactly as
    the paper prescribes for privacy: it receives a fingerprint and returns
    an assessment, storing nothing about who asked.

    Attributes:
        identifier: the trained two-stage device-type identifier.
        vulnerability_db: the CVE-like repository consulted per type.
        environment: resolver used to derive vendor-cloud destinations.
        provisional_types: device-type labels registered at runtime
            without operator review (the lifecycle autopilot's
            auto-learned unknown models).  A provisional type has no
            vulnerability record *because nobody has assessed it yet*,
            so it is capped below trusted isolation until an operator
            promotes the label
            (:meth:`~repro.identification.autopilot.LifecycleAutopilot.promote`).
    """

    identifier: DeviceTypeIdentifier
    vulnerability_db: VulnerabilityDatabase = field(default_factory=build_default_database)
    environment: LabEnvironment = field(default_factory=LabEnvironment)
    provisional_types: set[str] = field(default_factory=set)
    assessments_served: int = 0

    def assess_fingerprint(self, fingerprint: Fingerprint) -> SecurityAssessment:
        """Identify a fingerprint and derive the isolation level to enforce."""
        result = self.identifier.identify(fingerprint)
        return self._assess(result)

    def assess_device_type(self, device_type: str) -> SecurityAssessment:
        """Assessment for an already-known device-type (used for re-checks)."""
        known = device_type in self.identifier.known_device_types
        vulnerabilities = tuple(self.vulnerability_db.query(device_type)) if known else ()
        level = isolation_level_for(known, vulnerabilities)
        return self._build_assessment(device_type if known else "unknown", level, vulnerabilities, None)

    def _assess(self, result: IdentificationResult) -> SecurityAssessment:
        self.assessments_served += 1
        if result.is_new_device_type:
            return self._build_assessment(result.device_type, IsolationLevel.STRICT, (), result)
        vulnerabilities = tuple(self.vulnerability_db.query(result.device_type))
        level = isolation_level_for(True, vulnerabilities)
        return self._build_assessment(result.device_type, level, vulnerabilities, result)

    def _build_assessment(
        self,
        device_type: str,
        level: IsolationLevel,
        vulnerabilities: tuple[VulnerabilityRecord, ...],
        result: Optional[IdentificationResult],
    ) -> SecurityAssessment:
        if level is IsolationLevel.TRUSTED and device_type in self.provisional_types:
            # No vulnerabilities on record means "nobody has looked yet"
            # for an auto-learned type, not "audited clean".
            level = IsolationLevel.RESTRICTED
        allowed: tuple[str, ...] = ()
        if level is IsolationLevel.RESTRICTED:
            allowed = vendor_cloud_destinations(device_type, self.environment)
        return SecurityAssessment(
            device_type=device_type,
            isolation_level=level,
            vulnerabilities=vulnerabilities,
            allowed_destinations=allowed,
            identification=result,
        )
