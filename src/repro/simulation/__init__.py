"""Simulation substrate for the enforcement evaluation.

The paper measures its enforcement mechanism on a Raspberry Pi 2 gateway
(latency between device pairs, CPU utilisation, memory consumption, as a
function of concurrent flows and enforcement-rule count).  That hardware is
not available here, so this subpackage provides calibrated models: a
simulated clock, a latency model for the network paths of Fig. 4, and a
CPU/memory resource model of the gateway process.  The models are
parameterised by the same quantities the real system depends on (number of
concurrent flows, rule-cache size, whether filtering is enabled), so the
*relative* overheads the paper reports are reproduced by construction of
the mechanism, not hard-coded per experiment.
"""

from repro.simulation.clock import SimulatedClock
from repro.simulation.latency import LatencyModel, PathType
from repro.simulation.resources import GatewayResourceModel, ResourceSample
from repro.simulation.workload import ConcurrentFlowWorkload, FlowSpec

__all__ = [
    "SimulatedClock",
    "LatencyModel",
    "PathType",
    "GatewayResourceModel",
    "ResourceSample",
    "ConcurrentFlowWorkload",
    "FlowSpec",
]
