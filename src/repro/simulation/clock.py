"""A simple simulated clock shared by the enforcement components."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError


@dataclass
class SimulatedClock:
    """A monotonically advancing simulated clock (seconds).

    The Security Gateway, switch and workload generator all read the same
    clock instance so that packet timestamps, rule installation times and
    measurement windows are mutually consistent without relying on wall
    time (which would make tests flaky).
    """

    current_time: float = 0.0

    def now(self) -> float:
        """The current simulated time in seconds."""
        return self.current_time

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance the clock by a negative amount: {seconds}")
        self.current_time += seconds
        return self.current_time

    def advance_ms(self, milliseconds: float) -> float:
        """Move the clock forward by ``milliseconds`` and return the new time."""
        return self.advance(milliseconds / 1000.0)
