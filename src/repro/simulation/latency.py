"""Latency model of the lab network paths (Fig. 4 / Table V of the paper).

The model decomposes the end-to-end latency of a probe into:

* the per-hop propagation/queueing base latency of the path (wireless hops
  dominate; reaching a remote server adds WAN latency),
* a load-dependent component growing mildly with the number of concurrent
  flows traversing the gateway, and
* the gateway processing cost, which the Security Gateway adds per packet
  (larger when filtering is enabled because every packet incurs an
  enforcement-rule lookup).

Base values are calibrated against Table V so that absolute numbers land in
the same range; the *relative* filtering overhead, which is the paper's
claim, emerges from the rule-lookup cost measured on the actual rule cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError


class PathType(str, enum.Enum):
    """The network paths measured in Table V."""

    WIRELESS_TO_WIRELESS = "wireless_to_wireless"
    WIRELESS_TO_LOCAL_SERVER = "wireless_to_local_server"
    WIRELESS_TO_REMOTE_SERVER = "wireless_to_remote_server"
    WIRED_TO_WIRED = "wired_to_wired"


#: Mean one-way base latencies (milliseconds) per path, calibrated to Table V.
_BASE_LATENCY_MS: dict[PathType, tuple[float, float]] = {
    # (mean, standard deviation)
    PathType.WIRELESS_TO_WIRELESS: (25.5, 1.5),
    PathType.WIRELESS_TO_LOCAL_SERVER: (16.8, 1.2),
    PathType.WIRELESS_TO_REMOTE_SERVER: (20.0, 3.0),
    PathType.WIRED_TO_WIRED: (1.2, 0.2),
}


@dataclass
class LatencyModel:
    """Samples end-to-end latencies for probes through the Security Gateway.

    Attributes:
        per_flow_load_ms: additional delay per concurrent flow already being
            forwarded by the gateway (queueing at the AP / CPU contention).
        seed: RNG seed for reproducible measurement campaigns.
        device_offsets_ms: per-device radio-quality offsets; Table V shows
            D1/D2/D3 experience slightly different baseline latencies.
    """

    per_flow_load_ms: float = 0.012
    seed: Optional[int] = None
    device_offsets_ms: dict[str, float] = field(default_factory=dict)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def sample(
        self,
        path: PathType,
        gateway_processing_ms: float = 0.0,
        concurrent_flows: int = 0,
        source_device: Optional[str] = None,
    ) -> float:
        """Sample one probe latency (milliseconds).

        ``gateway_processing_ms`` is the measured per-packet processing time
        of the Security Gateway (rule lookup + forwarding decision); the
        probe traverses the gateway twice (request and reply), so it is
        charged twice.
        """
        if concurrent_flows < 0:
            raise SimulationError("concurrent_flows cannot be negative")
        mean, stdev = _BASE_LATENCY_MS[path]
        base = float(self._rng.normal(mean, stdev))
        base += self.device_offsets_ms.get(source_device or "", 0.0)
        load = self.per_flow_load_ms * concurrent_flows * float(self._rng.uniform(0.6, 1.4))
        total = base + load + 2.0 * gateway_processing_ms
        return max(0.1, total)

    def sample_many(
        self,
        path: PathType,
        iterations: int,
        gateway_processing_ms: float = 0.0,
        concurrent_flows: int = 0,
        source_device: Optional[str] = None,
    ) -> np.ndarray:
        """Sample ``iterations`` probe latencies (Table V uses 15 per pair)."""
        if iterations <= 0:
            raise SimulationError("iterations must be positive")
        return np.array(
            [
                self.sample(
                    path,
                    gateway_processing_ms=gateway_processing_ms,
                    concurrent_flows=concurrent_flows,
                    source_device=source_device,
                )
                for _ in range(iterations)
            ]
        )
