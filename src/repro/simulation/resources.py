"""CPU and memory model of the Raspberry Pi based Security Gateway (Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class ResourceSample:
    """One sampled observation of gateway resource usage."""

    cpu_percent: float
    memory_mb: float
    concurrent_flows: int
    enforcement_rules: int
    filtering_enabled: bool


@dataclass
class GatewayResourceModel:
    """Models CPU utilisation and memory consumption of the gateway process.

    CPU: the OS, hostapd and Open vSwitch keep the Raspberry Pi at a base
    utilisation (Fig. 6b shows ~37-40 % at idle); each concurrent flow adds
    a small amount of softirq/forwarding work, and filtering adds the
    per-packet rule lookups on top (a fraction of a percent, Table VI).

    Memory: the gateway's resident set is dominated by OVS and the
    controller (Fig. 6c starts around 50 MB); each cached enforcement rule
    adds a constant number of bytes, so memory grows linearly with the rule
    cache, only when filtering is enabled.

    Attributes:
        base_cpu_percent / cpu_per_flow_percent: idle CPU and per-flow cost.
        filtering_cpu_per_flow_percent: extra per-flow CPU when filtering.
        base_memory_mb: resident set with an empty rule cache.
        memory_per_rule_bytes: per-rule memory cost of the cache entries.
        measurement_noise: relative Gaussian noise applied to samples.
    """

    base_cpu_percent: float = 37.5
    cpu_per_flow_percent: float = 0.055
    filtering_cpu_per_flow_percent: float = 0.004
    filtering_base_cpu_percent: float = 0.25
    base_memory_mb: float = 52.0
    memory_per_rule_bytes: float = 2300.0
    filtering_base_memory_mb: float = 3.5
    measurement_noise: float = 0.02
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _noisy(self, value: float) -> float:
        return float(value * self._rng.normal(1.0, self.measurement_noise))

    def cpu_utilization(self, concurrent_flows: int, filtering_enabled: bool) -> float:
        """CPU utilisation (%) for a given number of concurrent flows."""
        if concurrent_flows < 0:
            raise SimulationError("concurrent_flows cannot be negative")
        cpu = self.base_cpu_percent + self.cpu_per_flow_percent * concurrent_flows
        if filtering_enabled:
            cpu += (
                self.filtering_base_cpu_percent
                + self.filtering_cpu_per_flow_percent * concurrent_flows
            )
        return min(100.0, self._noisy(cpu))

    def memory_usage_mb(self, enforcement_rules: int, filtering_enabled: bool) -> float:
        """Resident memory (MB) for a given enforcement-rule cache size."""
        if enforcement_rules < 0:
            raise SimulationError("enforcement_rules cannot be negative")
        memory = self.base_memory_mb
        if filtering_enabled:
            memory += self.filtering_base_memory_mb
            memory += enforcement_rules * self.memory_per_rule_bytes / (1024.0 * 1024.0)
        return self._noisy(memory)

    def sample(
        self,
        concurrent_flows: int,
        enforcement_rules: int,
        filtering_enabled: bool,
    ) -> ResourceSample:
        """Sample CPU and memory together."""
        return ResourceSample(
            cpu_percent=self.cpu_utilization(concurrent_flows, filtering_enabled),
            memory_mb=self.memory_usage_mb(enforcement_rules, filtering_enabled),
            concurrent_flows=concurrent_flows,
            enforcement_rules=enforcement_rules,
            filtering_enabled=filtering_enabled,
        )
