"""Concurrent-flow workloads used by the enforcement evaluation (Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.net.addresses import MACAddress
from repro.net.flow import FlowKey


@dataclass(frozen=True)
class FlowSpec:
    """One active flow between a source device and a destination endpoint."""

    source_mac: MACAddress
    key: FlowKey

    @property
    def destination_ip(self) -> str:
        return self.key.dst_ip


@dataclass
class ConcurrentFlowWorkload:
    """Generates sets of concurrent flows crossing the Security Gateway.

    The Fig. 6 experiments vary the number of concurrent flows between
    devices in the network (and remote endpoints) and observe latency and
    CPU utilisation.  This generator creates ``n`` distinct flows spread
    over a pool of simulated devices, alternating between local
    (device-to-device) and Internet-bound destinations.

    Attributes:
        device_count: number of devices in the simulated network.
        local_ratio: fraction of flows that stay inside the local network.
        subnet_prefix: IPv4 prefix of the local network.
        seed: RNG seed.
    """

    device_count: int = 20
    local_ratio: float = 0.5
    subnet_prefix: str = "192.168.0"
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.device_count < 2:
            raise SimulationError("the workload needs at least two devices")
        if not 0.0 <= self.local_ratio <= 1.0:
            raise SimulationError("local_ratio must lie in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def device_mac(self, index: int) -> MACAddress:
        """The MAC address of simulated device ``index``."""
        return MACAddress.from_string(f"02:16:3e:{(index >> 16) & 0xFF:02x}:{(index >> 8) & 0xFF:02x}:{index & 0xFF:02x}")

    def device_ip(self, index: int) -> str:
        """The IPv4 address of simulated device ``index``."""
        return f"{self.subnet_prefix}.{10 + index}"

    def generate(self, flow_count: int) -> list[FlowSpec]:
        """Generate ``flow_count`` distinct concurrent flows."""
        if flow_count < 0:
            raise SimulationError("flow_count cannot be negative")
        flows: list[FlowSpec] = []
        for flow_index in range(flow_count):
            source = int(self._rng.integers(0, self.device_count))
            if self._rng.random() < self.local_ratio:
                destination = int(self._rng.integers(0, self.device_count))
                if destination == source:
                    destination = (destination + 1) % self.device_count
                dst_ip = self.device_ip(destination)
            else:
                dst_ip = (
                    f"{52 + int(self._rng.integers(0, 100))}."
                    f"{int(self._rng.integers(1, 255))}."
                    f"{int(self._rng.integers(1, 255))}."
                    f"{int(self._rng.integers(1, 255))}"
                )
            key = FlowKey(
                src_ip=self.device_ip(source),
                dst_ip=dst_ip,
                protocol="tcp" if self._rng.random() < 0.7 else "udp",
                src_port=int(self._rng.integers(49152, 65536)),
                dst_port=int(self._rng.choice([80, 443, 53, 123, 8883, 1883])),
            )
            flows.append(FlowSpec(source_mac=self.device_mac(source), key=key))
        return flows
