"""Online device identification: packets in, enforcement decisions out.

The offline pipeline (``repro.eval``) pre-builds complete fingerprints and
identifies them in bulk.  This subpackage runs the same two-stage
identification *as traffic arrives*, the way the paper's Security Gateway
operates:

* :mod:`repro.streaming.sources` -- the :class:`PacketSource` protocol with
  pcap-replay and simulator adapters;
* :mod:`repro.streaming.assembler` -- per-device incremental fingerprint
  assembly, sharded by ``hash(mac) % shards``, with idle eviction;
* :mod:`repro.streaming.dispatcher` -- batched classifier-bank invocation
  with an LRU cache of identification results;
* :mod:`repro.streaming.backpressure` -- bounded queues with drop/block
  overload policies;
* :mod:`repro.streaming.pipeline` -- the orchestrator and the
  :class:`GatewayEnforcementSink` bridging verdicts into enforcement.
"""

from repro.streaming.assembler import (
    AssemblerStats,
    ReadyFingerprint,
    ShardedFingerprintAssembler,
)
from repro.streaming.backpressure import (
    BackpressurePolicy,
    BoundedQueue,
    Offer,
    QueueStats,
)
from repro.streaming.dispatcher import (
    BatchDispatcher,
    DispatcherStats,
    IdentificationCache,
    IdentifiedDevice,
    fingerprint_cache_key,
)
from repro.streaming.pipeline import (
    GatewayEnforcementSink,
    PipelineStats,
    StreamingPipeline,
)
from repro.streaming.sources import (
    IterableSource,
    PacketSource,
    PcapReplaySource,
    SimulatedSource,
    interleave_traces,
    iter_packet_batches,
    replay_trace,
)
from repro.streaming.workers import ParallelShardAssembler

__all__ = [
    "AssemblerStats",
    "ReadyFingerprint",
    "ShardedFingerprintAssembler",
    "BackpressurePolicy",
    "BoundedQueue",
    "Offer",
    "QueueStats",
    "BatchDispatcher",
    "DispatcherStats",
    "IdentificationCache",
    "IdentifiedDevice",
    "fingerprint_cache_key",
    "GatewayEnforcementSink",
    "PipelineStats",
    "StreamingPipeline",
    "IterableSource",
    "PacketSource",
    "PcapReplaySource",
    "SimulatedSource",
    "interleave_traces",
    "iter_packet_batches",
    "replay_trace",
    "ParallelShardAssembler",
]
