"""Sharded, incremental assembly of device fingerprints from a packet stream.

The offline pipeline buffers a device's whole setup capture and only then
extracts features (:class:`~repro.gateway.monitoring.DeviceMonitor`).  The
streaming assembler instead folds each packet into the device's fingerprint
matrix the moment it arrives: one stateful
:class:`~repro.features.packet_features.PacketFeatureExtractor` per device,
consecutive-duplicate suppression done on the fly, and an emission decision
per packet.  Devices are partitioned into ``hash(mac) % shards`` buckets so
that idle-eviction sweeps touch one bucket at a time and the assembler can
later be split across workers without re-keying.

A fingerprint is emitted when

* the paper's setup packet budget is reached (``reason="budget"``),
* the device's packet rate drops (``reason="idle"``) -- the paper's
  end-of-setup criterion, detected online with the same adaptive rule
  :class:`~repro.features.session.SetupPhaseDetector` applies offline: a
  gap exceeding ``max(min_idle_seconds, idle_factor * median gap)`` cuts
  the capture when the device's own next packet reveals it, and an
  explicit :meth:`ShardedFingerprintAssembler.evict_idle` sweep driven by
  the pipeline clock catches devices that never speak again, or
* the stream ends and :meth:`ShardedFingerprintAssembler.flush` drains the
  partial captures (``reason="flush"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import (
    FEATURE_COUNT,
    FEATURE_INDEX,
    PacketFeatureExtractor,
    batch_feature_matrix,
)
from repro.features.session import SetupPhaseDetector, gap_exceeds_setup_threshold
from repro.net.addresses import MACAddress
from repro.net.batch import PacketBatch
from repro.net.packet import Packet

_DST_IP_COUNTER = FEATURE_INDEX["dst_ip_counter"]

EMIT_BUDGET = "budget"
EMIT_IDLE = "idle"
EMIT_FLUSH = "flush"


@dataclass(frozen=True)
class ReadyFingerprint:
    """A completed fingerprint leaving the assembly stage."""

    mac: MACAddress
    fingerprint: Fingerprint
    reason: str
    completed_at: float = 0.0

    @property
    def packet_count(self) -> int:
        return self.fingerprint.packet_count


@dataclass
class AssemblerStats:
    """Counters of the assembly stage."""

    packets_observed: int = 0
    fingerprints_emitted: int = 0
    budget_emissions: int = 0
    idle_emissions: int = 0
    flush_emissions: int = 0
    min_signal_drops: int = 0


@dataclass
class _PreparedBatch:
    """Per-batch vectorised state shared by consecutive observation windows.

    Built once by :meth:`ShardedFingerprintAssembler.prepare_batch`; the
    ``cursors`` list records, per device group, how far observation has
    advanced, so eviction sweeps can interleave between windows without
    any per-window recomputation.  ``devices`` carries each group's
    capture across the pause: when it survived the sweep, the next window
    resumes the precomputed consecutive-duplicate comparison instead of
    re-comparing against the capture's last kept row.
    """

    timestamps: list
    dst_ips: list
    matrix: np.ndarray
    groups: list
    duplicate_by_group: list
    gap_big_by_group: list
    cursors: list
    devices: list
    first_group: int = 0


@dataclass
class _DeviceAssembler:
    """Incremental fingerprint state of one device.

    ``rows`` holds kept feature data in arrival order as a mix of single
    ``(23,)`` rows (per-packet path) and ``(k, 23)`` chunks (batched path
    absorbs one chunk per batch); ``row_count`` tracks the total row count
    and ``last_row`` the last *kept* row, which is all the
    consecutive-duplicate rule of Eq. (1) ever compares against.
    """

    mac: MACAddress
    extractor: PacketFeatureExtractor = field(default_factory=PacketFeatureExtractor)
    rows: list[np.ndarray] = field(default_factory=list)
    gaps: list[float] = field(default_factory=list)
    raw_packets: int = 0
    last_seen: float = 0.0
    row_count: int = 0
    last_row: Optional[np.ndarray] = None

    def observe(self, packet: Packet) -> None:
        row = self.extractor.extract(packet)
        # Consecutive-duplicate suppression of Eq. (1), done incrementally.
        if self.last_row is None or not np.array_equal(row, self.last_row):
            self.rows.append(row)
            self.row_count += 1
            self.last_row = row
        if self.raw_packets:
            self.gaps.append(max(0.0, packet.timestamp - self.last_seen))
        self.raw_packets += 1
        self.last_seen = packet.timestamp

    def absorb_chunk(self, chunk: np.ndarray) -> None:
        """Append a ``(k, 23)`` block of already-deduplicated kept rows."""
        self.rows.append(chunk)
        self.row_count += len(chunk)
        self.last_row = chunk[-1]

    def gap_ends_setup(
        self, gap: float, min_idle_seconds: float, idle_factor: float, min_packets: int
    ) -> bool:
        """The paper's end-of-setup rule: the packet rate dropped.

        Mirrors :class:`~repro.features.session.SetupPhaseDetector`,
        including its guards: the capture is never cut before
        ``min_packets`` packets (an early-setup pause, e.g. a DHCP retry,
        must not truncate the fingerprint), and the threshold itself is the
        shared :func:`~repro.features.session.gap_exceeds_setup_threshold`.
        """
        if self.raw_packets < min_packets:
            return False
        if not self.gaps:
            # Mirrors the offline detector's `and gaps` guard: a single
            # packet gives no rate estimate to compare the silence against.
            return False
        return gap_exceeds_setup_threshold(gap, self.gaps, min_idle_seconds, idle_factor)

    def to_fingerprint(self) -> Fingerprint:
        # Rows are already consecutive-deduplicated on the fly.  vstack
        # accepts the row/chunk mix and reproduces exactly the matrix the
        # row-list construction built, byte for byte.
        if not self.rows:
            matrix = np.zeros((0, FEATURE_COUNT), dtype=np.int64)
        else:
            matrix = np.vstack(self.rows)
        return Fingerprint(vectors=matrix, device_mac=str(self.mac))


class ShardedFingerprintAssembler:
    """Per-device incremental fingerprint assembly over N shards.

    Attributes:
        shards: number of hash buckets devices are partitioned into.
        packet_budget: raw packets per device after which the fingerprint
            is emitted (250 in the reproduction's device monitor).
        min_packets: the cut guard of the end-of-setup rule -- a capture is
            never cut before this many raw packets, exactly as in the
            offline detector.
        min_rows: captures whose deduplicated fingerprint matrix has fewer
            rows than this are discarded instead of emitted.  The default
            of 1 matches the offline device monitor (every non-empty
            capture is assessed, low-signal ones simply come back
            "unknown"/strict); raise it to shed e.g. beacon-only devices
            that collapse to a single repeated row, at the cost of those
            devices never receiving a verdict.
        idle_timeout: silence, in stream-time seconds, after which an
            :meth:`evict_idle` sweep considers a device's capture complete
            (the device may never speak again, so this needs no median).
        min_idle_seconds / idle_factor: the adaptive end-of-setup rule
            applied when a device's own next packet reveals a gap --
            identical semantics to the offline
            :class:`~repro.features.session.SetupPhaseDetector`, whose
            defaults (and ``min_packets``) are inherited when not given,
            so online fingerprints match what the classifiers were
            trained on even if the detector is retuned.
    """

    def __init__(
        self,
        shards: int = 8,
        packet_budget: int = 250,
        min_packets: Optional[int] = None,
        min_rows: int = 1,
        idle_timeout: float = 15.0,
        min_idle_seconds: Optional[float] = None,
        idle_factor: Optional[float] = None,
    ):
        if shards <= 0:
            raise SimulationError(f"shard count must be positive, got {shards}")
        if packet_budget <= 0:
            raise SimulationError(f"packet budget must be positive, got {packet_budget}")
        self.shards = shards
        self.packet_budget = packet_budget
        self.min_packets = (
            SetupPhaseDetector.min_packets if min_packets is None else min_packets
        )
        self.min_rows = min_rows
        self.idle_timeout = idle_timeout
        self.min_idle_seconds = (
            SetupPhaseDetector.min_idle_seconds if min_idle_seconds is None else min_idle_seconds
        )
        self.idle_factor = SetupPhaseDetector.idle_factor if idle_factor is None else idle_factor
        self.stats = AssemblerStats()
        self._buckets: list[dict[MACAddress, _DeviceAssembler]] = [{} for _ in range(shards)]

    # ------------------------------------------------------------------ #
    # Routing.
    # ------------------------------------------------------------------ #
    def shard_of(self, mac: MACAddress) -> int:
        """The bucket index a device is routed to (stable across calls)."""
        return hash(mac) % self.shards

    def _bucket(self, mac: MACAddress) -> dict[MACAddress, _DeviceAssembler]:
        return self._buckets[self.shard_of(mac)]

    @property
    def active_devices(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    def shard_sizes(self) -> list[int]:
        """Devices currently assembling, per shard (for load inspection)."""
        return [len(bucket) for bucket in self._buckets]

    def is_assembling(self, mac: MACAddress) -> bool:
        return mac in self._bucket(mac)

    # ------------------------------------------------------------------ #
    # Stream input.
    # ------------------------------------------------------------------ #
    def observe(self, packet: Packet) -> Optional[ReadyFingerprint]:
        """Fold one packet in; returns a fingerprint if one completed.

        A packet arriving after the device's packet rate dropped (the
        adaptive end-of-setup rule) first completes the previous capture,
        then starts a fresh one -- the same device re-running its setup
        (factory reset, reconnect) therefore produces a new fingerprint
        instead of polluting the old matrix.
        """
        self.stats.packets_observed += 1
        mac = packet.src_mac
        bucket = self._bucket(mac)
        device = bucket.get(mac)

        completed: Optional[ReadyFingerprint] = None
        if device is not None and device.gap_ends_setup(
            packet.timestamp - device.last_seen,
            self.min_idle_seconds,
            self.idle_factor,
            self.min_packets,
        ):
            completed = self._finalize(device, EMIT_IDLE, packet.timestamp)
            device = None
        if device is None:
            device = _DeviceAssembler(mac=mac, last_seen=packet.timestamp)
            bucket[mac] = device

        device.observe(packet)
        if device.raw_packets >= self.packet_budget:
            budget_ready = self._finalize(device, EMIT_BUDGET, packet.timestamp)
            # An idle completion and a budget completion cannot coincide.
            # `completed` requires a persisting previous capture, which only
            # exists when packet_budget >= 2; `budget_ready` on the same
            # packet then requires raw_packets >= 2, impossible for the
            # fresh capture this packet just started.
            return completed or budget_ready
        return completed

    def observe_batch(self, batch: PacketBatch) -> list[ReadyFingerprint]:
        """Fold a whole :class:`~repro.net.batch.PacketBatch` in.

        Emission-equivalent to calling :meth:`observe` per packet:
        completed fingerprints come back ordered by the packet that
        triggered them, with bitwise-identical matrices (the differential
        suite asserts both).  Idle *eviction* remains the caller's job --
        the pipeline splits batches at eviction boundaries so sweeps fire
        between the same two packets as on the per-packet path.
        """
        return [ready for _, ready in self.observe_batch_indexed(batch)]

    def observe_batch_indexed(
        self, batch: PacketBatch
    ) -> list[tuple[int, ReadyFingerprint]]:
        """:meth:`observe_batch`, tagging each emission with the in-batch
        index of its trigger packet (what shard workers merge on)."""
        if len(batch) == 0:
            return []
        prepared = self.prepare_batch(batch)
        return self.observe_prepared(prepared, len(batch))

    def prepare_batch(self, batch: PacketBatch) -> "_PreparedBatch":
        """Run the vectorised per-batch work once, ahead of observation.

        A caller interleaving observation with eviction sweeps (the
        pipeline splits batches at eviction boundaries) prepares the batch
        once and then feeds consecutive windows to
        :meth:`observe_prepared` -- the feature matrix, the device
        grouping and the duplicate-detection vectors are not recomputed
        per window.
        """
        # The whole batch's Table-I columns in one vectorised pass; only
        # the stateful dst-ip counter column is filled per device during
        # observation.
        matrix = batch_feature_matrix(batch)
        groups = batch.device_runs()
        all_timestamps = batch.timestamps
        dst_ips = batch.dst_ips
        min_idle = self.min_idle_seconds
        duplicate_by_group = []
        gap_big_by_group = []
        prepared_groups = []
        for mac_value, indices in groups:
            rows = matrix[indices]
            count = len(indices)
            # Consecutive-packet static equality, vectorised per device:
            # the counter column is still zero everywhere, so this compares
            # the 22 stateless features; the destination-token comparison
            # below supplies the counter column's verdict (equal counters
            # iff equal tokens under one extractor).
            equal_prev = np.empty(count, dtype=bool)
            equal_prev[0] = False
            if count > 1:
                np.all(rows[1:] == rows[:-1], axis=1, out=equal_prev[1:])
            # Plain Python lists for the walk: indexing numpy scalars out
            # of an int64 array costs more than the whole per-packet body.
            indices_list = indices.tolist()
            tokens = [dst_ips[j] for j in indices_list]
            duplicate = equal_prev.tolist()
            for position, equal in enumerate(duplicate):
                if equal and tokens[position] != tokens[position - 1]:
                    duplicate[position] = False
            # Positions whose inter-packet gap can possibly trip the idle
            # rule.  Position 0's predecessor (if any) lies in an earlier
            # batch, so the walk always runs the full check there.
            gap_big = np.empty(count, dtype=bool)
            gap_big[0] = True
            if count > 1:
                group_times = all_timestamps[indices]
                np.greater(np.diff(group_times), min_idle, out=gap_big[1:])
            gap_big_by_group.append(gap_big.tolist())
            duplicate_by_group.append(duplicate)
            prepared_groups.append((MACAddress(mac_value), indices, indices_list))
        # Python floats, not np.float64 scalars: list indexing is faster in
        # the per-device walk and the gap/completed_at values come out
        # type-identical to the per-packet path.
        return _PreparedBatch(
            timestamps=all_timestamps.tolist(),
            dst_ips=dst_ips,
            matrix=matrix,
            groups=prepared_groups,
            duplicate_by_group=duplicate_by_group,
            gap_big_by_group=gap_big_by_group,
            cursors=[0] * len(groups),
            devices=[None] * len(groups),
        )

    def observe_prepared(
        self, prepared: "_PreparedBatch", stop: int
    ) -> list[tuple[int, ReadyFingerprint]]:
        """Fold every not-yet-observed packet before index ``stop`` in.

        Windows are consumed consecutively (each group keeps a cursor), so
        calling with increasing ``stop`` values walks the batch exactly
        once.  The first packet a window contributes to a capture is
        compared against the capture's last kept row directly -- the same
        rule the per-packet path applies -- so pausing for an eviction
        sweep between windows cannot change any dedup decision.
        """
        matrix = prepared.matrix
        timestamps = prepared.timestamps
        dst_ips = prepared.dst_ips
        min_packets = self.min_packets
        min_idle = self.min_idle_seconds
        idle_factor = self.idle_factor
        budget = self.packet_budget
        emissions: list[tuple[int, ReadyFingerprint]] = []
        groups = prepared.groups
        group = prepared.first_group
        while group < len(groups):
            mac, indices, indices_list = groups[group]
            cursor = prepared.cursors[group]
            if cursor >= len(indices_list):
                # Exhausted; a contiguous exhausted prefix is skipped for
                # good by advancing ``first_group``.
                if group == prepared.first_group:
                    prepared.first_group += 1
                group += 1
                continue
            if indices_list[cursor] >= stop:
                if cursor == 0:
                    # Groups are ordered by first packet index, so every
                    # later group also starts at or after ``stop``.
                    break
                group += 1
                continue
            end = int(indices.searchsorted(stop, side="left"))
            prepared.cursors[group] = end
            self.stats.packets_observed += end - cursor
            bucket = self._bucket(mac)
            duplicate_flags = prepared.duplicate_by_group[group]
            gap_big = prepared.gap_big_by_group[group]
            pending: list[int] = []
            if cursor and prepared.devices[group] is not None and (
                bucket.get(mac) is prepared.devices[group]
            ):
                # The capture survived the eviction sweep between windows:
                # resume the consecutive-duplicate comparison exactly where
                # the previous window paused it.
                device = prepared.devices[group]
                fresh_capture = False
            else:
                device = bucket.get(mac)
                fresh_capture = True  # no usable in-batch predecessor
            for position in range(cursor, end):
                j = indices_list[position]
                timestamp = timestamps[j]
                if device is not None and (fresh_capture or gap_big[position]):
                    # ``gap_big`` prunes the idle check: whenever the walk
                    # has observed this group's previous packet into the
                    # same capture, ``device.last_seen`` equals that
                    # packet's timestamp, so the precomputed inter-packet
                    # gap decides ``gap > min_idle`` exactly.
                    gap = timestamp - device.last_seen
                    if (
                        gap > min_idle
                        and device.raw_packets >= min_packets
                        and device.gaps
                        and gap_exceeds_setup_threshold(
                            gap, device.gaps, min_idle, idle_factor
                        )
                    ):
                        if pending:
                            device.absorb_chunk(matrix[pending])
                            pending = []
                        ready = self._finalize(device, EMIT_IDLE, timestamp)
                        if ready is not None:
                            emissions.append((j, ready))
                        device = None
                if device is None:
                    device = _DeviceAssembler(mac=mac, last_seen=timestamp)
                    bucket[mac] = device
                    fresh_capture = True
                if fresh_capture:
                    # First packet of this capture inside the batch: the
                    # duplicate rule compares against the last kept row of
                    # the capture's pre-batch tail (if any).
                    token = dst_ips[j]
                    if token is not None:
                        matrix[j, _DST_IP_COUNTER] = device.extractor.counter_for(token)
                    duplicate = device.last_row is not None and np.array_equal(
                        matrix[j], device.last_row
                    )
                    fresh_capture = False
                elif duplicate_flags[position]:
                    # A duplicate's matrix row is never read and its token
                    # equals the previous packet's, so the counter dict is
                    # already settled -- skip both.
                    duplicate = True
                else:
                    duplicate = False
                    token = dst_ips[j]
                    if token is not None:
                        matrix[j, _DST_IP_COUNTER] = device.extractor.counter_for(token)
                if not duplicate:
                    pending.append(j)
                if device.raw_packets:
                    device.gaps.append(max(0.0, timestamp - device.last_seen))
                device.raw_packets += 1
                device.last_seen = timestamp
                if device.raw_packets >= budget:
                    if pending:
                        device.absorb_chunk(matrix[pending])
                        pending = []
                    ready = self._finalize(device, EMIT_BUDGET, timestamp)
                    if ready is not None:
                        emissions.append((j, ready))
                    device = None
            if device is not None and pending:
                device.absorb_chunk(matrix[pending])
            prepared.devices[group] = device
            group += 1
        emissions.sort(key=lambda pair: pair[0])
        return emissions

    # ------------------------------------------------------------------ #
    # Eviction and flushing.
    # ------------------------------------------------------------------ #
    def evict_idle(self, now: float, shard: Optional[int] = None) -> list[ReadyFingerprint]:
        """Complete every capture that has been quiet for ``idle_timeout``.

        With ``shard`` given only that bucket is swept, letting a caller
        amortise eviction cost round-robin across shards.
        """
        buckets = self._buckets if shard is None else [self._buckets[shard % self.shards]]
        ready: list[ReadyFingerprint] = []
        for bucket in buckets:
            expired = [
                device
                for device in bucket.values()
                if now - device.last_seen > self.idle_timeout
            ]
            for device in expired:
                emitted = self._finalize(device, EMIT_IDLE, now)
                if emitted is not None:
                    ready.append(emitted)
        return ready

    def flush(self, now: float = 0.0) -> list[ReadyFingerprint]:
        """Emit every in-progress capture (stream ended)."""
        ready: list[ReadyFingerprint] = []
        for bucket in self._buckets:
            for device in list(bucket.values()):
                emitted = self._finalize(device, EMIT_FLUSH, now or device.last_seen)
                if emitted is not None:
                    ready.append(emitted)
        return ready

    def _finalize(
        self, device: _DeviceAssembler, reason: str, completed_at: float
    ) -> Optional[ReadyFingerprint]:
        self._bucket(device.mac).pop(device.mac, None)
        # Signal is measured after consecutive-duplicate suppression: 250
        # identical beacons collapse to one fingerprint row and classify no
        # better than a single packet would, whichever way the capture ended.
        if device.row_count < self.min_rows:
            self.stats.min_signal_drops += 1
            return None
        self.stats.fingerprints_emitted += 1
        if reason == EMIT_BUDGET:
            self.stats.budget_emissions += 1
        elif reason == EMIT_IDLE:
            self.stats.idle_emissions += 1
        else:
            self.stats.flush_emissions += 1
        return ReadyFingerprint(
            mac=device.mac,
            fingerprint=device.to_fingerprint(),
            reason=reason,
            completed_at=completed_at,
        )

    def __iter__(self) -> Iterator[MACAddress]:
        for bucket in self._buckets:
            yield from bucket
