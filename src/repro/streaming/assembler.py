"""Sharded, incremental assembly of device fingerprints from a packet stream.

The offline pipeline buffers a device's whole setup capture and only then
extracts features (:class:`~repro.gateway.monitoring.DeviceMonitor`).  The
streaming assembler instead folds each packet into the device's fingerprint
matrix the moment it arrives: one stateful
:class:`~repro.features.packet_features.PacketFeatureExtractor` per device,
consecutive-duplicate suppression done on the fly, and an emission decision
per packet.  Devices are partitioned into ``hash(mac) % shards`` buckets so
that idle-eviction sweeps touch one bucket at a time and the assembler can
later be split across workers without re-keying.

A fingerprint is emitted when

* the paper's setup packet budget is reached (``reason="budget"``),
* the device's packet rate drops (``reason="idle"``) -- the paper's
  end-of-setup criterion, detected online with the same adaptive rule
  :class:`~repro.features.session.SetupPhaseDetector` applies offline: a
  gap exceeding ``max(min_idle_seconds, idle_factor * median gap)`` cuts
  the capture when the device's own next packet reveals it, and an
  explicit :meth:`ShardedFingerprintAssembler.evict_idle` sweep driven by
  the pipeline clock catches devices that never speak again, or
* the stream ends and :meth:`ShardedFingerprintAssembler.flush` drains the
  partial captures (``reason="flush"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import PacketFeatureExtractor
from repro.features.session import SetupPhaseDetector, gap_exceeds_setup_threshold
from repro.net.addresses import MACAddress
from repro.net.packet import Packet

EMIT_BUDGET = "budget"
EMIT_IDLE = "idle"
EMIT_FLUSH = "flush"


@dataclass(frozen=True)
class ReadyFingerprint:
    """A completed fingerprint leaving the assembly stage."""

    mac: MACAddress
    fingerprint: Fingerprint
    reason: str
    completed_at: float = 0.0

    @property
    def packet_count(self) -> int:
        return self.fingerprint.packet_count


@dataclass
class AssemblerStats:
    """Counters of the assembly stage."""

    packets_observed: int = 0
    fingerprints_emitted: int = 0
    budget_emissions: int = 0
    idle_emissions: int = 0
    flush_emissions: int = 0
    min_signal_drops: int = 0


@dataclass
class _DeviceAssembler:
    """Incremental fingerprint state of one device."""

    mac: MACAddress
    extractor: PacketFeatureExtractor = field(default_factory=PacketFeatureExtractor)
    rows: list[np.ndarray] = field(default_factory=list)
    gaps: list[float] = field(default_factory=list)
    raw_packets: int = 0
    last_seen: float = 0.0

    def observe(self, packet: Packet) -> None:
        row = self.extractor.extract(packet)
        # Consecutive-duplicate suppression of Eq. (1), done incrementally.
        if not self.rows or not np.array_equal(row, self.rows[-1]):
            self.rows.append(row)
        if self.raw_packets:
            self.gaps.append(max(0.0, packet.timestamp - self.last_seen))
        self.raw_packets += 1
        self.last_seen = packet.timestamp

    def gap_ends_setup(
        self, gap: float, min_idle_seconds: float, idle_factor: float, min_packets: int
    ) -> bool:
        """The paper's end-of-setup rule: the packet rate dropped.

        Mirrors :class:`~repro.features.session.SetupPhaseDetector`,
        including its guards: the capture is never cut before
        ``min_packets`` packets (an early-setup pause, e.g. a DHCP retry,
        must not truncate the fingerprint), and the threshold itself is the
        shared :func:`~repro.features.session.gap_exceeds_setup_threshold`.
        """
        if self.raw_packets < min_packets:
            return False
        if not self.gaps:
            # Mirrors the offline detector's `and gaps` guard: a single
            # packet gives no rate estimate to compare the silence against.
            return False
        return gap_exceeds_setup_threshold(gap, self.gaps, min_idle_seconds, idle_factor)

    def to_fingerprint(self) -> Fingerprint:
        # Rows are already consecutive-deduplicated on the fly.
        return Fingerprint.from_feature_rows(
            self.rows, device_mac=str(self.mac), deduplicate=False
        )


class ShardedFingerprintAssembler:
    """Per-device incremental fingerprint assembly over N shards.

    Attributes:
        shards: number of hash buckets devices are partitioned into.
        packet_budget: raw packets per device after which the fingerprint
            is emitted (250 in the reproduction's device monitor).
        min_packets: the cut guard of the end-of-setup rule -- a capture is
            never cut before this many raw packets, exactly as in the
            offline detector.
        min_rows: captures whose deduplicated fingerprint matrix has fewer
            rows than this are discarded instead of emitted.  The default
            of 1 matches the offline device monitor (every non-empty
            capture is assessed, low-signal ones simply come back
            "unknown"/strict); raise it to shed e.g. beacon-only devices
            that collapse to a single repeated row, at the cost of those
            devices never receiving a verdict.
        idle_timeout: silence, in stream-time seconds, after which an
            :meth:`evict_idle` sweep considers a device's capture complete
            (the device may never speak again, so this needs no median).
        min_idle_seconds / idle_factor: the adaptive end-of-setup rule
            applied when a device's own next packet reveals a gap --
            identical semantics to the offline
            :class:`~repro.features.session.SetupPhaseDetector`, whose
            defaults (and ``min_packets``) are inherited when not given,
            so online fingerprints match what the classifiers were
            trained on even if the detector is retuned.
    """

    def __init__(
        self,
        shards: int = 8,
        packet_budget: int = 250,
        min_packets: Optional[int] = None,
        min_rows: int = 1,
        idle_timeout: float = 15.0,
        min_idle_seconds: Optional[float] = None,
        idle_factor: Optional[float] = None,
    ):
        if shards <= 0:
            raise SimulationError(f"shard count must be positive, got {shards}")
        if packet_budget <= 0:
            raise SimulationError(f"packet budget must be positive, got {packet_budget}")
        self.shards = shards
        self.packet_budget = packet_budget
        self.min_packets = (
            SetupPhaseDetector.min_packets if min_packets is None else min_packets
        )
        self.min_rows = min_rows
        self.idle_timeout = idle_timeout
        self.min_idle_seconds = (
            SetupPhaseDetector.min_idle_seconds if min_idle_seconds is None else min_idle_seconds
        )
        self.idle_factor = SetupPhaseDetector.idle_factor if idle_factor is None else idle_factor
        self.stats = AssemblerStats()
        self._buckets: list[dict[MACAddress, _DeviceAssembler]] = [{} for _ in range(shards)]

    # ------------------------------------------------------------------ #
    # Routing.
    # ------------------------------------------------------------------ #
    def shard_of(self, mac: MACAddress) -> int:
        """The bucket index a device is routed to (stable across calls)."""
        return hash(mac) % self.shards

    def _bucket(self, mac: MACAddress) -> dict[MACAddress, _DeviceAssembler]:
        return self._buckets[self.shard_of(mac)]

    @property
    def active_devices(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    def shard_sizes(self) -> list[int]:
        """Devices currently assembling, per shard (for load inspection)."""
        return [len(bucket) for bucket in self._buckets]

    def is_assembling(self, mac: MACAddress) -> bool:
        return mac in self._bucket(mac)

    # ------------------------------------------------------------------ #
    # Stream input.
    # ------------------------------------------------------------------ #
    def observe(self, packet: Packet) -> Optional[ReadyFingerprint]:
        """Fold one packet in; returns a fingerprint if one completed.

        A packet arriving after the device's packet rate dropped (the
        adaptive end-of-setup rule) first completes the previous capture,
        then starts a fresh one -- the same device re-running its setup
        (factory reset, reconnect) therefore produces a new fingerprint
        instead of polluting the old matrix.
        """
        self.stats.packets_observed += 1
        mac = packet.src_mac
        bucket = self._bucket(mac)
        device = bucket.get(mac)

        completed: Optional[ReadyFingerprint] = None
        if device is not None and device.gap_ends_setup(
            packet.timestamp - device.last_seen,
            self.min_idle_seconds,
            self.idle_factor,
            self.min_packets,
        ):
            completed = self._finalize(device, EMIT_IDLE, packet.timestamp)
            device = None
        if device is None:
            device = _DeviceAssembler(mac=mac, last_seen=packet.timestamp)
            bucket[mac] = device

        device.observe(packet)
        if device.raw_packets >= self.packet_budget:
            budget_ready = self._finalize(device, EMIT_BUDGET, packet.timestamp)
            # An idle completion and a budget completion cannot coincide.
            # `completed` requires a persisting previous capture, which only
            # exists when packet_budget >= 2; `budget_ready` on the same
            # packet then requires raw_packets >= 2, impossible for the
            # fresh capture this packet just started.
            return completed or budget_ready
        return completed

    # ------------------------------------------------------------------ #
    # Eviction and flushing.
    # ------------------------------------------------------------------ #
    def evict_idle(self, now: float, shard: Optional[int] = None) -> list[ReadyFingerprint]:
        """Complete every capture that has been quiet for ``idle_timeout``.

        With ``shard`` given only that bucket is swept, letting a caller
        amortise eviction cost round-robin across shards.
        """
        buckets = self._buckets if shard is None else [self._buckets[shard % self.shards]]
        ready: list[ReadyFingerprint] = []
        for bucket in buckets:
            expired = [
                device
                for device in bucket.values()
                if now - device.last_seen > self.idle_timeout
            ]
            for device in expired:
                emitted = self._finalize(device, EMIT_IDLE, now)
                if emitted is not None:
                    ready.append(emitted)
        return ready

    def flush(self, now: float = 0.0) -> list[ReadyFingerprint]:
        """Emit every in-progress capture (stream ended)."""
        ready: list[ReadyFingerprint] = []
        for bucket in self._buckets:
            for device in list(bucket.values()):
                emitted = self._finalize(device, EMIT_FLUSH, now or device.last_seen)
                if emitted is not None:
                    ready.append(emitted)
        return ready

    def _finalize(
        self, device: _DeviceAssembler, reason: str, completed_at: float
    ) -> Optional[ReadyFingerprint]:
        self._bucket(device.mac).pop(device.mac, None)
        # Signal is measured after consecutive-duplicate suppression: 250
        # identical beacons collapse to one fingerprint row and classify no
        # better than a single packet would, whichever way the capture ended.
        if len(device.rows) < self.min_rows:
            self.stats.min_signal_drops += 1
            return None
        self.stats.fingerprints_emitted += 1
        if reason == EMIT_BUDGET:
            self.stats.budget_emissions += 1
        elif reason == EMIT_IDLE:
            self.stats.idle_emissions += 1
        else:
            self.stats.flush_emissions += 1
        return ReadyFingerprint(
            mac=device.mac,
            fingerprint=device.to_fingerprint(),
            reason=reason,
            completed_at=completed_at,
        )

    def __iter__(self) -> Iterator[MACAddress]:
        for bucket in self._buckets:
            yield from bucket
