"""Bounded queueing and overload policies for the streaming pipeline.

When fingerprints complete faster than the classifier bank can identify
them, the dispatcher's queue fills and something has to give.  Two policies
are offered, matching the classic stream-processing trade-off:

* ``DROP`` -- load shedding: the newest item is rejected and counted.
  Appropriate when identification is best-effort (a dropped device is
  simply re-profiled the next time it speaks).
* ``BLOCK`` -- backpressure proper: the producer must drain the queue
  (run a batch) before the item is accepted.  Nothing is lost, at the cost
  of stalling ingestion -- the behaviour a Security Gateway needs, since an
  unidentified device would otherwise stay unconstrained.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Generic, Optional, TypeVar

from repro.exceptions import SimulationError

T = TypeVar("T")


class BackpressurePolicy(Enum):
    """What a full queue does with the next item."""

    DROP = "drop"
    BLOCK = "block"


class Offer(Enum):
    """Outcome of offering one item to a bounded queue."""

    ACCEPTED = "accepted"
    DROPPED = "dropped"
    #: The queue is full under the BLOCK policy: the caller must drain
    #: (consume a batch) and re-offer the item.
    MUST_DRAIN = "must_drain"


@dataclass
class QueueStats:
    """Counters of one bounded queue."""

    offered: int = 0
    accepted: int = 0
    dropped: int = 0
    blocked: int = 0
    high_watermark: int = 0


@dataclass
class BoundedQueue(Generic[T]):
    """A FIFO with a hard capacity and an explicit overload policy."""

    capacity: int = 64
    policy: BackpressurePolicy = BackpressurePolicy.BLOCK
    stats: QueueStats = field(default_factory=QueueStats)
    _items: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError(f"queue capacity must be positive, got {self.capacity}")

    def offer(self, item: T) -> Offer:
        """Try to enqueue ``item`` under the configured policy."""
        self.stats.offered += 1
        if len(self._items) >= self.capacity:
            if self.policy is BackpressurePolicy.DROP:
                self.stats.dropped += 1
                return Offer.DROPPED
            self.stats.blocked += 1
            return Offer.MUST_DRAIN
        self._items.append(item)
        self.stats.accepted += 1
        self.stats.high_watermark = max(self.stats.high_watermark, len(self._items))
        return Offer.ACCEPTED

    def pop_batch(self, limit: Optional[int] = None) -> list[T]:
        """Dequeue up to ``limit`` items (all of them when ``limit`` is None)."""
        count = len(self._items) if limit is None else min(limit, len(self._items))
        return [self._items.popleft() for _ in range(count)]

    def peek(self) -> Optional[T]:
        """The oldest queued item, without removing it."""
        return self._items[0] if self._items else None

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
