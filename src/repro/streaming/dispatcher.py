"""Batch identification dispatch with an LRU result cache.

Completed fingerprints are staged in a :class:`BoundedQueue` and handed to
the identifier ``max_batch`` at a time.  Two distinct effects are at work,
and it is worth being precise about which buys what:

* *Batching* shapes the work and, since the compiled-inference refactor,
  also removes it: identification runs at controlled moments in bulk, and
  :meth:`~repro.identification.identifier.DeviceTypeIdentifier.identify_many`
  scores the whole batch as one ``(batch x device-types)`` matrix through
  the bank's compiled forests (:mod:`repro.ml.compiled`) instead of
  walking Python tree nodes per fingerprint.  ``max_batch`` therefore
  tunes both latency *and* per-fingerprint classification cost, and the
  bounded queue in front of the dispatcher is where overload policy
  (drop/block) and load shedding live.
* The *LRU result cache*, keyed by the fingerprint's content hash, removes
  repeat work outright: a second device of an identical model skips
  classification and discrimination entirely -- the dominant cost of the
  paper's Table IV.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.exceptions import SimulationError
from repro.features.fingerprint import Fingerprint, fingerprint_key
from repro.identification.identifier import DeviceTypeIdentifier, IdentificationResult
from repro.identification.lifecycle import CacheEpoch
from repro.net.addresses import MACAddress
from repro.streaming.assembler import ReadyFingerprint
from repro.streaming.backpressure import BackpressurePolicy, BoundedQueue, Offer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.hub import Observability

#: The result cache's key: a content hash of the fingerprint matrix (MAC
#: and label excluded).  Canonically defined as
#: :func:`repro.features.fingerprint.fingerprint_key` so the autopilot's
#: unknown-model cluster detection, the discrimination stage's
#: deterministic reference draw and this cache all agree on what "the
#: same model performing the same setup" means; re-exported here under
#: its historical streaming-layer name.
#:
#: Because the discrimination stage draws its references from this same
#: content hash, a cached verdict is not merely *plausibly* fresh -- for
#: an unchanged identifier revision it is provably equal to what
#: re-identifying the fingerprint would return (asserted by the
#: streaming test suite).
fingerprint_cache_key = fingerprint_key


class IdentificationCache:
    """A fixed-capacity LRU of fingerprint-hash -> identification result.

    Every entry is stamped with the generation of :attr:`epoch` current at
    insertion; a lookup that finds an entry from an older generation
    evicts it and reports a miss.  By default each cache has a private
    epoch (plain LRU semantics); sharing one
    :class:`~repro.identification.lifecycle.CacheEpoch` across caches lets
    the lifecycle coordinator invalidate all of them with a single bump --
    stale verdicts become unreachable even if an explicit :meth:`clear`
    never reaches this cache.

    Example:
        >>> from repro.identification.identifier import IdentificationResult
        >>> cache = IdentificationCache(capacity=2)
        >>> cache.put(b"key", IdentificationResult(device_type="Aria",
        ...                                        matched_types=("Aria",)))
        >>> cache.get(b"key").device_type
        'Aria'
        >>> cache.epoch.bump()  # a device-type was learned: all stale
        1
        >>> cache.get(b"key") is None
        True
    """

    def __init__(self, capacity: int = 512, epoch: Optional[CacheEpoch] = None):
        if capacity <= 0:
            raise SimulationError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.epoch = epoch if epoch is not None else CacheEpoch()
        self.hits = 0
        self.misses = 0
        self.stale_rejections = 0
        self._entries: OrderedDict[bytes, tuple[int, IdentificationResult]] = OrderedDict()

    def _fresh(self, key: bytes) -> Optional[IdentificationResult]:
        """The entry's result if it is from the current generation, else None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        generation, result = entry
        if generation != self.epoch.generation:
            del self._entries[key]
            self.stale_rejections += 1
            return None
        return result

    def get(self, key: bytes) -> Optional[IdentificationResult]:
        result = self._fresh(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def peek(self, key: bytes) -> Optional[IdentificationResult]:
        """Read an entry without touching the hit/miss counters or LRU order.

        Used by the batch path to pick up results that were cached after a
        fingerprint was already queued as a miss; counting those as hits
        would double-book the lookup the submit path already recorded.
        Stale-generation entries are still evicted and withheld.
        """
        return self._fresh(key)

    def put(self, key: bytes, result: IdentificationResult) -> None:
        self._entries[key] = (self.epoch.generation, result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (call after the identifier learns new types)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class IdentifiedDevice:
    """One device leaving the pipeline: its fingerprint plus the verdict."""

    mac: MACAddress
    fingerprint: Fingerprint
    result: IdentificationResult
    from_cache: bool = False
    completion_reason: str = ""


@dataclass
class DispatcherStats:
    """Counters of the dispatch stage."""

    submitted: int = 0
    dropped: int = 0
    batches: int = 0
    batched: int = 0
    identified: int = 0
    identify_seconds: float = 0.0
    last_batch_seconds: float = 0.0
    largest_batch: int = 0
    linger_flushes: int = 0
    swaps: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.batched / self.batches if self.batches else 0.0


class BatchDispatcher:
    """Groups ready fingerprints and identifies them per batch.

    Attributes:
        identifier: the trained two-stage identifier to run.
        max_batch: fingerprints identified per classifier-bank invocation;
            reaching this count triggers a drain automatically.
        queue: the bounded staging queue (its policy decides drop vs block).
        cache: optional LRU of previous results; ``None`` disables caching.
        max_linger: stream-seconds a queued fingerprint may wait before a
            partial batch is forced by :meth:`poll`.  Without it, a
            sub-``max_batch`` trickle (or a DROP-policy queue smaller than
            ``max_batch``) would starve until end-of-stream drain.
        observability: optional hub; when attached, the dispatcher's
            counters become snapshot sources and every identify batch
            lands in the ``dispatcher.identify_batch_seconds`` histogram.
    """

    def __init__(
        self,
        identifier: DeviceTypeIdentifier,
        max_batch: int = 16,
        queue_capacity: int = 64,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        cache: Optional[IdentificationCache] = None,
        use_discrimination: bool = True,
        max_linger: float = 5.0,
        observability: Optional["Observability"] = None,
    ):
        if max_batch <= 0:
            raise SimulationError(f"max_batch must be positive, got {max_batch}")
        if max_linger < 0:
            raise SimulationError(f"max_linger must be non-negative, got {max_linger}")
        self.identifier = identifier
        self.max_batch = max_batch
        self.queue: BoundedQueue = BoundedQueue(capacity=queue_capacity, policy=policy)
        self.cache = cache
        self.use_discrimination = use_discrimination
        self.max_linger = max_linger
        self.stats = DispatcherStats()
        self.observability = observability
        if observability is not None:
            observability.register_dispatcher(self)

    # ------------------------------------------------------------------ #
    # Input side.
    # ------------------------------------------------------------------ #
    def submit(self, ready: ReadyFingerprint) -> list[IdentifiedDevice]:
        """Stage one fingerprint; returns any identifications this caused.

        A cache hit is answered immediately without touching the queue.  A
        miss is enqueued; when the queue holds a full batch (or must be
        drained to make room under the BLOCK policy) the batch runs and its
        results are returned.
        """
        self.stats.submitted += 1
        key: Optional[bytes] = None
        if self.cache is not None:
            key = fingerprint_cache_key(ready.fingerprint)
            cached = self.cache.get(key)
            if cached is not None:
                identified = IdentifiedDevice(
                    mac=ready.mac,
                    fingerprint=ready.fingerprint,
                    result=cached,
                    from_cache=True,
                    completion_reason=ready.reason,
                )
                self.stats.identified += 1
                return [identified]

        results: list[IdentifiedDevice] = []
        outcome = self.queue.offer((ready, key))
        if outcome is Offer.MUST_DRAIN:
            results.extend(self._run_batch())
            outcome = self.queue.offer((ready, key))
        if outcome is Offer.DROPPED:
            self.stats.dropped += 1
            return results
        if len(self.queue) >= self.max_batch:
            results.extend(self._run_batch())
        return results

    def swap_identifier(self, identifier: DeviceTypeIdentifier) -> DeviceTypeIdentifier:
        """Install a new identifier between batches (hot model swap).

        Fingerprints already staged in the queue are *not* dropped: they
        are identified by the next batch run, which uses the new
        identifier (and therefore stamps its verdicts with the new
        ``revision``).  Verdicts delivered before the swap keep the old
        revision.  Cache invalidation is the caller's responsibility --
        the fleet layer advances the shared
        :class:`~repro.identification.lifecycle.CacheEpoch` to the pushed
        bundle's watermark, which makes every pre-swap cache entry
        unreachable.  Returns the replaced identifier.
        """
        previous = self.identifier
        self.identifier = identifier
        self.stats.swaps += 1
        return previous

    def poll(self, now: float) -> list[IdentifiedDevice]:
        """Flush a partial batch if the oldest fingerprint lingered too long.

        ``now`` is stream time (the pipeline clock).  This is what keeps a
        slow trickle of devices -- or a DROP-policy queue smaller than
        ``max_batch`` -- from waiting for end-of-stream :meth:`drain`.
        """
        oldest = self.queue.peek()
        if oldest is None or now - oldest[0].completed_at < self.max_linger:
            return []
        self.stats.linger_flushes += 1
        return self._run_batch()

    def drain(self) -> list[IdentifiedDevice]:
        """Identify everything still queued (end of stream)."""
        results: list[IdentifiedDevice] = []
        while self.queue:
            results.extend(self._run_batch())
        return results

    # ------------------------------------------------------------------ #
    # Batch execution.
    # ------------------------------------------------------------------ #
    def _run_batch(self) -> list[IdentifiedDevice]:
        batch: list[tuple[ReadyFingerprint, Optional[bytes]]] = self.queue.pop_batch(self.max_batch)
        if not batch:
            return []
        # A result may have been cached after a member was queued as a miss
        # (an earlier batch identified the same model); serve those without
        # re-classifying.
        identified: list[IdentifiedDevice] = []
        pending: list[tuple[ReadyFingerprint, Optional[bytes]]] = []
        for ready, key in batch:
            cached = self.cache.peek(key) if self.cache is not None and key is not None else None
            if cached is not None:
                identified.append(
                    IdentifiedDevice(
                        mac=ready.mac,
                        fingerprint=ready.fingerprint,
                        result=cached,
                        from_cache=True,
                        completion_reason=ready.reason,
                    )
                )
                continue
            pending.append((ready, key))
        self.stats.identified += len(batch)
        if not pending:
            return identified

        # A burst of identical-model devices can land in one batch, where
        # every member misses the cache; classify each distinct fingerprint
        # once and share the result across the batch.
        unique: list[Fingerprint] = []
        slot_by_key: dict[bytes, int] = {}
        slots: list[int] = []
        for ready, key in pending:
            if key is not None and key in slot_by_key:
                slots.append(slot_by_key[key])
                continue
            if key is not None:
                slot_by_key[key] = len(unique)
            slots.append(len(unique))
            unique.append(ready.fingerprint)
        start = time.perf_counter()
        unique_outcomes = self.identifier.identify_many(
            unique, use_discrimination=self.use_discrimination
        )
        elapsed = time.perf_counter() - start
        self.stats.identify_seconds += elapsed
        self.stats.last_batch_seconds = elapsed
        if self.observability is not None:
            self.observability.observe_identify_batch(elapsed, len(pending))
        self.stats.batches += 1
        self.stats.batched += len(pending)
        self.stats.largest_batch = max(self.stats.largest_batch, len(pending))

        outcomes = [unique_outcomes[slot] for slot in slots]
        for (ready, key), result in zip(pending, outcomes):
            # "unknown" verdicts are never cached: the operator may register
            # the missing device-type at any time (add_device_type), and a
            # cached unknown would pin every later device of that model to
            # strict isolation with no way to recover.
            if self.cache is not None and key is not None and not result.is_new_device_type:
                self.cache.put(key, result)
            identified.append(
                IdentifiedDevice(
                    mac=ready.mac,
                    fingerprint=ready.fingerprint,
                    result=result,
                    completion_reason=ready.reason,
                )
            )
        return identified

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache is not None else 0.0
