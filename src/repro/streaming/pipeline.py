"""The streaming identification pipeline: source -> assembler -> dispatcher.

This is the online counterpart of the offline evaluation loop: packets are
consumed one at a time, folded into per-device fingerprints, identified in
batches, and the verdicts are pushed to a callback -- typically a
:class:`GatewayEnforcementSink` that turns each identification into an
enforcement rule on a :class:`~repro.gateway.security_gateway.SecurityGateway`.

Stream time (packet timestamps) drives a shared
:class:`~repro.simulation.clock.SimulatedClock`, which in turn drives the
assembler's idle eviction: every ``eviction_interval`` stream-seconds one
shard is swept round-robin, so eviction cost is amortised instead of
scanning every device on every packet.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.identifier import UNKNOWN_DEVICE_TYPE, DeviceTypeIdentifier
from repro.identification.lifecycle import LifecycleCoordinator
from repro.security_service.service import IoTSecurityService
from repro.simulation.clock import SimulatedClock
from repro.streaming.assembler import (
    AssemblerStats,
    ReadyFingerprint,
    ShardedFingerprintAssembler,
)
from repro.streaming.dispatcher import (
    BatchDispatcher,
    DispatcherStats,
    IdentifiedDevice,
    fingerprint_cache_key,
)
from repro.streaming.sources import PacketSource, iter_packet_batches

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.net.batch import PacketBatch
    from repro.obs.hub import Observability


@dataclass
class PipelineStats:
    """End-of-run summary of one pipeline execution.

    Top-level fields cover this run only, even when the dispatcher and its
    cache are shared across runs (warm start); the embedded ``assembler``
    and ``dispatcher`` stats are those components' lifetime counters.
    """

    packets: int = 0
    fingerprints: int = 0
    identified: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    assemble_seconds: float = 0.0
    identify_seconds: float = 0.0
    dropped: int = 0
    assembler: AssemblerStats = field(default_factory=AssemblerStats)
    dispatcher: DispatcherStats = field(default_factory=DispatcherStats)

    @property
    def packets_per_second(self) -> float:
        return self.packets / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.packets} packets -> {self.fingerprints} fingerprints -> "
            f"{self.identified} identified ({self.cache_hits} from cache) | "
            f"{self.packets_per_second:,.0f} pkt/s, "
            f"assembly {self.assemble_seconds * 1000:.1f} ms, "
            f"identification {self.identify_seconds * 1000:.1f} ms"
        )


class StreamingPipeline:
    """Wires a packet source through assembly and dispatch to a callback.

    Attributes:
        source: where packets come from (pcap replay, simulation, ...).
        assembler: the sharded incremental fingerprint stage.
        dispatcher: the batching/caching identification stage.
        on_identified: invoked once per identified device, in the order
            verdicts become available -- with caching/batching enabled this
            can differ from fingerprint completion order (a cache hit is
            delivered immediately while earlier misses wait for their
            batch).  Exceptions propagate (the pipeline performs
            enforcement, it must not silently lose verdicts).
        clock: shared stream clock; advanced to each packet's timestamp.
        eviction_interval: stream-seconds between idle-eviction sweeps
            (one shard per sweep, round-robin).
        observability: optional hub; when attached (here or on the
            dispatcher), every verdict leaving the pipeline lands in the
            evidence ledger and the assembler/dispatcher counters become
            snapshot sources.
    """

    def __init__(
        self,
        source: PacketSource,
        dispatcher: BatchDispatcher,
        assembler: Optional[ShardedFingerprintAssembler] = None,
        on_identified: Optional[Callable[[IdentifiedDevice], None]] = None,
        clock: Optional[SimulatedClock] = None,
        eviction_interval: float = 1.0,
        observability: Optional["Observability"] = None,
    ):
        self.source = source
        self.assembler = assembler or ShardedFingerprintAssembler()
        self.dispatcher = dispatcher
        self.on_identified = on_identified
        self.clock = clock or SimulatedClock()
        self.eviction_interval = eviction_interval
        self.observability = (
            observability if observability is not None else dispatcher.observability
        )
        if self.observability is not None:
            # A hub handed to the pipeline covers its dispatcher too (and
            # vice versa): the identify-batch histogram must fire whichever
            # constructor the hub was attached through.  Adoption order
            # (pinned by the streaming regression suite): a dispatcher-only
            # hub is adopted by the pipeline, a pipeline-only hub is handed
            # down to the dispatcher, and two *different* hubs are refused
            # outright -- split-brain observability would scatter one
            # gateway's evidence across two ledgers.  The build_gateway()
            # facade sidesteps the question by single-sourcing the hub.
            if dispatcher.observability is None:
                dispatcher.observability = self.observability
            elif dispatcher.observability is not self.observability:
                raise SimulationError(
                    "pipeline and dispatcher were given two different "
                    "observability hubs; wire one hub through both "
                    "(or use repro.api.build_gateway, which single-sources it)"
                )
            self.observability.register_pipeline(self)
        self.stats = PipelineStats()
        self._next_eviction = self.clock.now() + eviction_interval
        self._eviction_shard = 0
        # A dispatcher (and its cache) may be shared across pipeline runs
        # (warm start); snapshot their lifetime counters so this run's
        # top-level stats report only its own work.  The embedded
        # stats.dispatcher / stats.assembler remain the components'
        # lifetime views.
        cache = dispatcher.cache
        self._cache_hits_before = cache.hits if cache is not None else 0
        self._cache_misses_before = cache.misses if cache is not None else 0
        self._identify_seconds_before = dispatcher.stats.identify_seconds
        self._dropped_before = dispatcher.stats.dropped

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #
    def run(self) -> PipelineStats:
        """Consume the whole source and return the run statistics."""
        for _ in self.results():
            pass  # results() already delivered it to the callback
        return self.stats

    def results(self) -> Iterator[IdentifiedDevice]:
        """Drive the stream, yielding identifications as they happen.

        If the consumer stops iterating early, the remaining captures are
        still flushed and their verdicts delivered to ``on_identified``
        when the generator closes -- they just cannot be yielded any more.
        """
        started = time.perf_counter()
        try:
            for packet in self.source.packets():
                yield from self.process_packet(packet)
            for item in self.finish():
                yield item
        finally:
            # No-op after a complete run; on early exit this drains the
            # pipeline so enforcement never silently misses a device.
            self.finish()
            self.stats.wall_seconds = time.perf_counter() - started

    def process_packet(self, packet) -> list[IdentifiedDevice]:
        """Feed a single packet through every stage (single-step API)."""
        self.stats.packets += 1
        if packet.timestamp > self.clock.now():
            self.clock.advance(packet.timestamp - self.clock.now())

        start = time.perf_counter()
        ready = self.assembler.observe(packet)
        completed = [ready] if ready is not None else []
        now = self.clock.now()
        if now >= self._next_eviction:
            completed.extend(self.assembler.evict_idle(now, shard=self._eviction_shard))
            self._eviction_shard = (self._eviction_shard + 1) % self.assembler.shards
            self._next_eviction = now + self.eviction_interval
        self.stats.assemble_seconds += time.perf_counter() - start

        identified: list[IdentifiedDevice] = []
        for item in completed:
            self.stats.fingerprints += 1
            identified.extend(self.dispatcher.submit(item))
        # Lingering partial batches are flushed on the stream clock, so a
        # trickle of devices is identified promptly instead of waiting for
        # a full batch (or end-of-stream drain) that may never come.
        identified.extend(self.dispatcher.poll(now))
        self._deliver(identified)
        return identified

    def run_batched(self, batch_size: int = 256) -> PipelineStats:
        """Consume the whole source through the columnar datapath.

        Verdict-equivalent to :meth:`run` -- each device receives the same
        identification, built from a bitwise-identical fingerprint -- but
        packets move as :class:`~repro.net.batch.PacketBatch` columns, so
        parsing, feature extraction and distance scoring are array
        operations instead of per-packet Python.  Delivery *order* across
        devices can differ from the per-packet path (dispatcher batches
        compose differently when fingerprints complete in bursts).
        """
        started = time.perf_counter()
        batches = iter_packet_batches(self.source, batch_size)
        while True:
            # Time the parse stage around next(): for frame-backed sources
            # this is where the struct-batched field extraction runs.
            parse_start = time.perf_counter()
            try:
                batch = next(batches)
            except StopIteration:
                break
            if self.observability is not None:
                self.observability.observe_parse_batch(time.perf_counter() - parse_start)
            self.process_batch(batch)
        self.finish()
        self.stats.wall_seconds = time.perf_counter() - started
        return self.stats

    def process_batch(self, batch: "PacketBatch") -> list[IdentifiedDevice]:
        """Feed one packet batch through every stage (columnar API).

        Emission parity with :meth:`process_packet` is kept by splitting
        the batch at eviction boundaries: the assembler folds packets in
        bulk up to (and including) the first packet whose timestamp
        crosses ``_next_eviction``, then the idle sweep fires with exactly
        the clock value the per-packet path would have used -- so sweeps
        land between the same two packets on both paths.
        """
        n = len(batch)
        if n == 0:
            return []
        self.stats.packets += n
        timestamps = batch.timestamps
        # An assembler exposing the prepared-batch protocol (the in-process
        # one) runs its vectorised per-batch work once here; otherwise
        # (e.g. the multi-process facade) each window is a sliced batch.
        prepare = getattr(self.assembler, "prepare_batch", None)
        prepared = prepare(batch) if prepare is not None else None
        assemble_start = time.perf_counter()
        completed: list[ReadyFingerprint] = []
        position = 0
        while position < n:
            cut = int(timestamps.searchsorted(self._next_eviction, side="left"))
            stop = min(n, max(cut + 1, position + 1))

            end_time = float(timestamps[stop - 1])
            if end_time > self.clock.now():
                self.clock.advance(end_time - self.clock.now())
            if prepared is not None:
                completed.extend(
                    ready for _, ready in self.assembler.observe_prepared(prepared, stop)
                )
            else:
                completed.extend(self.assembler.observe_batch(batch.slice(position, stop)))
            now = self.clock.now()
            if now >= self._next_eviction:
                completed.extend(self.assembler.evict_idle(now, shard=self._eviction_shard))
                self._eviction_shard = (self._eviction_shard + 1) % self.assembler.shards
                self._next_eviction = now + self.eviction_interval
            position = stop
        assemble_elapsed = time.perf_counter() - assemble_start
        self.stats.assemble_seconds += assemble_elapsed
        if self.observability is not None:
            self.observability.observe_assemble_batch(assemble_elapsed)

        score_start = time.perf_counter()
        identified: list[IdentifiedDevice] = []
        for item in completed:
            self.stats.fingerprints += 1
            identified.extend(self.dispatcher.submit(item))
        identified.extend(self.dispatcher.poll(self.clock.now()))
        if self.observability is not None:
            self.observability.observe_score_batch(time.perf_counter() - score_start)
        self._deliver(identified)
        return identified

    def inject(self, ready: ReadyFingerprint) -> list[IdentifiedDevice]:
        """Feed one pre-assembled fingerprint straight into dispatch.

        Bypasses the assembler (the fingerprint is already complete --
        e.g. handed over by an operator tool or a re-profiling capture)
        but keeps every downstream guarantee: batching, caching, ledger
        records and sink delivery are identical to the packet path.
        """
        self.stats.fingerprints += 1
        identified = self.dispatcher.submit(ready)
        identified.extend(self.dispatcher.poll(self.clock.now()))
        self._deliver(identified)
        return identified

    def swap_identifier(
        self, identifier: DeviceTypeIdentifier, epoch: Optional[int] = None
    ) -> DeviceTypeIdentifier:
        """Hot-swap the serving model between batches (fleet push apply).

        Delegates to :meth:`BatchDispatcher.swap_identifier` -- in-flight
        fingerprints stay queued and are identified by the new model --
        and, when ``epoch`` is given, advances the dispatcher cache's
        generation to the pushed bundle's watermark so every pre-swap
        verdict becomes unreachable (the PR 3 invalidation path).  The
        returned value is the replaced identifier.  Callers with a
        lifecycle coordinator should prefer
        :meth:`repro.api.GatewayHandle.swap_bundle`, which also adopts
        the epoch into the coordinator and records the apply event.
        """
        previous = self.dispatcher.swap_identifier(identifier)
        cache = self.dispatcher.cache
        if epoch is not None and cache is not None:
            cache.epoch.advance_to(epoch)
        return previous

    def finish(self) -> list[IdentifiedDevice]:
        """Flush the assembler and drain the dispatcher (end of stream)."""
        identified: list[IdentifiedDevice] = []
        start = time.perf_counter()
        flushed = self.assembler.flush(self.clock.now())
        if flushed and self.observability is not None:
            self.observability.observe_assembler_flush(time.perf_counter() - start)
        for item in flushed:
            self.stats.fingerprints += 1
            identified.extend(self.dispatcher.submit(item))
        identified.extend(self.dispatcher.drain())
        self._deliver(identified)
        self._collect_stats()
        return identified

    def _deliver(self, identified: list[IdentifiedDevice]) -> None:
        self.stats.identified += len(identified)
        if self.observability is not None:
            cache = self.dispatcher.cache
            epoch = cache.epoch.generation if cache is not None else None
            revision = self.dispatcher.identifier.revision
            now = self.clock.now()
            for item in identified:
                self.observability.record_verdict(
                    item, revision=revision, epoch=epoch, stream_time=now
                )
        if self.on_identified is not None:
            for item in identified:
                self.on_identified(item)

    def _collect_stats(self) -> None:
        self.stats.assembler = self.assembler.stats
        self.stats.dispatcher = self.dispatcher.stats
        self.stats.identify_seconds = (
            self.dispatcher.stats.identify_seconds - self._identify_seconds_before
        )
        self.stats.dropped = self.dispatcher.stats.dropped - self._dropped_before
        cache = self.dispatcher.cache
        if cache is not None:
            self.stats.cache_hits = cache.hits - self._cache_hits_before
            self.stats.cache_misses = cache.misses - self._cache_misses_before


@dataclass
class GatewayEnforcementSink:
    """An ``on_identified`` callback that enforces verdicts on a gateway.

    Each identified device is assessed by the IoT Security Service (the
    identification itself already happened in the dispatcher, so only the
    vulnerability lookup and isolation-level derivation run here) and the
    resulting rule is installed on the Security Gateway.

    A device that keeps talking after setup produces later steady-state
    fingerprints the classifiers were never trained on, which typically
    assess as "unknown".  With ``sticky`` (the default) such an unknown
    verdict never downgrades a device whose record already carries an
    identified type -- only fresh devices and re-identifications to a
    known type change enforcement.  Set ``sticky=False`` to apply every
    verdict verbatim (e.g. when deliberately re-profiling a fleet).

    With a ``lifecycle`` coordinator attached, every verdict the sink
    enforces is also reported to it: unknown devices enter the quarantine
    log (so a later
    :meth:`~repro.identification.lifecycle.LifecycleCoordinator.learn_device_type`
    -- operator-driven or fired by a
    :class:`~repro.identification.autopilot.LifecycleAutopilot` trigger --
    can re-identify them and upgrade their strict rules), successful
    identifications release any quarantine entry for the MAC.  The
    :class:`~repro.identification.autopilot.ReprofileScheduler` flips
    :attr:`sticky` off for the duration of a steady-state pass (it
    toggles the attribute directly so any sink exposing ``sticky``
    works); :meth:`reprofiling` offers the same escape hatch as a
    context manager for manual operator use.
    """

    gateway: SecurityGateway
    security_service: IoTSecurityService
    sticky: bool = True
    lifecycle: Optional[LifecycleCoordinator] = None
    observability: Optional["Observability"] = None
    enforced: int = 0
    skipped_downgrades: int = 0

    def __post_init__(self) -> None:
        if self.observability is not None:
            self.observability.register_sink(self)

    @contextmanager
    def reprofiling(self):
        """Apply every verdict verbatim for the duration of the block.

        The deliberate-re-profiling escape hatch from sticky enforcement:
        inside the block, an "unknown" verdict on an already-identified
        device downgrades it (fingerprint drift is acted on) instead of
        being dropped as steady-state noise.
        """
        was_sticky = self.sticky
        self.sticky = False
        try:
            yield self
        finally:
            self.sticky = was_sticky

    def __call__(self, identified: IdentifiedDevice) -> None:
        if self.sticky and identified.result.is_new_device_type:
            record = self.gateway.devices.get(identified.mac)
            if record is not None and record.device_type not in (None, UNKNOWN_DEVICE_TYPE):
                # Already identified: a steady-state "unknown" is noise,
                # not a fresh device to quarantine.
                self.skipped_downgrades += 1
                return
        assessment = self.security_service.assess_device_type(identified.result.device_type)
        record = self.gateway.apply_assessment(identified.mac, assessment)
        self.enforced += 1
        if self.observability is not None:
            lifecycle = self.lifecycle
            self.observability.record_enforcement(
                mac=str(identified.mac),
                device_type=identified.result.device_type,
                action=record.isolation_level.name,
                revision=lifecycle.identifier.revision if lifecycle is not None else None,
                epoch=lifecycle.epoch.generation if lifecycle is not None else None,
                stream_time=self.gateway.clock.now(),
                fingerprint_key_hex=fingerprint_cache_key(identified.fingerprint).hex(),
            )
        if self.lifecycle is not None:
            self.lifecycle.note_identified(identified, now=self.gateway.clock.now())
