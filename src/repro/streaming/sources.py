"""Packet sources feeding the streaming identification pipeline.

A :class:`PacketSource` is anything that yields dissected packets in
timestamp order.  The adapters in this module put live-replay (pcap files
read through :mod:`repro.net.pcap`) and synthetic workloads (setup traces
rendered by :class:`~repro.devices.simulator.SetupTrafficSimulator`) behind
one interface, so the pipeline, the tests and the benchmarks all consume
the same stream shape regardless of where the packets come from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.devices.catalog import DEVICE_CATALOG, profile_of
from repro.devices.simulator import SetupTrace, SetupTrafficSimulator
from repro.exceptions import SimulationError
from repro.net.addresses import MACAddress
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.pcap import PcapReader


@runtime_checkable
class PacketSource(Protocol):
    """The contract every pipeline input satisfies: an ordered packet stream."""

    def packets(self) -> Iterator[Packet]:
        """Yield packets in non-decreasing timestamp order."""
        ...


@dataclass
class IterableSource:
    """Wraps any pre-built packet iterable (lists, generators, traces)."""

    items: Iterable[Packet]

    def packets(self) -> Iterator[Packet]:
        yield from self.items


@dataclass
class PcapReplaySource:
    """Replays a classic pcap capture file as a packet stream.

    Packets are dissected lazily, one record at a time, so arbitrarily
    large captures can be streamed without holding them in memory -- the
    property the offline ``read_pcap`` helper deliberately does not have.
    """

    path: Union[str, Path]

    def packets(self) -> Iterator[Packet]:
        yield from PcapReader(self.path).packets()

    def packet_batches(self, batch_size: int = 256) -> Iterator[PacketBatch]:
        """Columnar fast path: raw frames go straight into PacketBatches.

        No :class:`~repro.net.packet.Packet` objects are built for frames
        the struct-batched parser handles; the per-packet view stays
        available via :meth:`PacketBatch.packet` (lazy dissection).
        """
        chunk: list = []
        for captured in PcapReader(self.path):
            chunk.append(captured)
            if len(chunk) >= batch_size:
                yield PacketBatch.from_frames(chunk)
                chunk = []
        if chunk:
            yield PacketBatch.from_frames(chunk)


class SimulatedSource:
    """Renders device setup traces and interleaves them into one stream.

    This reproduces what the Security Gateway actually sees: many devices
    joining the network at staggered times, their setup procedures
    overlapping on the wire.  Traces can either be passed in directly or
    generated on the fly from catalog profile names.
    """

    def __init__(
        self,
        traces: Optional[Sequence[SetupTrace]] = None,
        device_names: Optional[Sequence[str]] = None,
        devices: int = 0,
        arrival_gap: float = 2.0,
        simulator: Optional[SetupTrafficSimulator] = None,
        seed: Optional[int] = None,
    ):
        self.simulator = simulator or SetupTrafficSimulator(seed=seed)
        self.traces: list[SetupTrace] = list(traces or [])
        if devices:
            names = list(device_names) if device_names is not None else sorted(DEVICE_CATALOG)
            if not names:
                raise SimulationError("no device names to simulate")
            for index in range(devices):
                profile = profile_of(names[index % len(names)])
                self.traces.append(
                    self.simulator.simulate(profile, start_time=index * arrival_gap)
                )
        if not self.traces:
            raise SimulationError("SimulatedSource needs traces or a device count")

    def packets(self) -> Iterator[Packet]:
        yield from interleave_traces(self.traces)

    @property
    def device_macs(self) -> list[MACAddress]:
        return [trace.device_mac for trace in self.traces]

    def __len__(self) -> int:
        return sum(len(trace) for trace in self.traces)


def iter_packet_batches(source: PacketSource, batch_size: int = 256) -> Iterator[PacketBatch]:
    """Adapt any :class:`PacketSource` into a stream of PacketBatches.

    Sources exposing a native ``packet_batches`` method (the pcap replay
    adapter's zero-object fast path) are used directly; everything else is
    chunked through :meth:`PacketBatch.from_packets`, one attribute-read
    pass per batch.
    """
    if batch_size <= 0:
        raise SimulationError(f"batch size must be positive, got {batch_size}")
    native = getattr(source, "packet_batches", None)
    if native is not None:
        yield from native(batch_size)
        return
    chunk: list[Packet] = []
    for packet in source.packets():
        chunk.append(packet)
        if len(chunk) >= batch_size:
            yield PacketBatch.from_packets(chunk)
            chunk = []
    if chunk:
        yield PacketBatch.from_packets(chunk)


def interleave_traces(traces: Iterable[SetupTrace]) -> Iterator[Packet]:
    """Merge per-device traces into one timestamp-ordered packet stream.

    Equal timestamps order by trace position (then packet order), so the
    merge key is always unique and ``Packet`` objects are never compared.
    """

    def stream(index: int, trace: SetupTrace):
        return (
            (packet.timestamp, index, order, packet)
            for order, packet in enumerate(trace.packets)
        )

    streams = [stream(index, trace) for index, trace in enumerate(traces)]
    for _, _, _, packet in heapq.merge(*streams):
        yield packet


def replay_trace(trace: SetupTrace, device_mac: MACAddress, time_offset: float) -> SetupTrace:
    """Re-emit a recorded trace as if a second identical device performed it.

    The packets are shallow-copied with the source MAC rewritten and the
    timestamps shifted; everything the feature extractor reads (sizes,
    ports, destination order) is untouched, so the replay produces exactly
    the same fingerprint content.  This models identical device models
    joining the network at different times -- the workload the dispatcher's
    result cache exists for.
    """
    packets = [
        replace(
            packet,
            ethernet=replace(packet.ethernet, src=device_mac),
            timestamp=packet.timestamp + time_offset,
        )
        for packet in trace.packets
    ]
    return SetupTrace(
        profile=trace.profile,
        device_mac=device_mac,
        device_ip=trace.device_ip,
        packets=packets,
    )
