"""Multi-process shard workers behind the assembler's sharding scheme.

The single-process assembler already partitions devices into
``hash(mac) % shards`` buckets precisely so the partition can later be
split across workers without re-keying (see
:class:`~repro.streaming.assembler.ShardedFingerprintAssembler`).  This
module is that split: :class:`ParallelShardAssembler` runs ``workers``
child processes, each owning one single-bucket assembler, and routes every
device group of an incoming :class:`~repro.net.batch.PacketBatch` to the
worker its MAC hashes to.  Because :class:`~repro.net.addresses.MACAddress`
hashes on its integer value, the routing is identical in every process and
under every ``PYTHONHASHSEED``.

Determinism is preserved by construction:

* a device's packets all hash to one worker, which folds them in stream
  order with the same :meth:`observe_batch_indexed` the in-process path
  uses -- so every fingerprint matrix is bitwise-identical;
* workers tag each emission with the in-batch index of its trigger
  packet, and the facade merges the per-worker emission lists by that
  global index -- so the emission *order* equals the single-process
  order, not the workers' completion order.

What crosses the pipe per dispatch is six flat arrays and a token list
(:meth:`PacketBatch.take` with ``with_backing=False``), never the packet
object trees, keeping pickling cost proportional to the columns.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.net.addresses import MACAddress
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.streaming.assembler import (
    AssemblerStats,
    ReadyFingerprint,
    ShardedFingerprintAssembler,
)


def _worker_main(connection, assembler_kwargs: dict) -> None:
    """Child-process loop: one single-bucket assembler, a command pipe.

    Commands are ``(verb, *payload)`` tuples; every command produces
    exactly one reply, so the parent can interleave sends to all workers
    before collecting replies (true parallel assembly).
    """
    assembler = ShardedFingerprintAssembler(shards=1, **assembler_kwargs)
    while True:
        try:
            command = connection.recv()
        except EOFError:  # parent died; nothing left to assemble for
            break
        verb = command[0]
        if verb == "observe":
            connection.send(assembler.observe_batch_indexed(command[1]))
        elif verb == "evict":
            connection.send(assembler.evict_idle(command[1]))
        elif verb == "flush":
            connection.send(assembler.flush(command[1]))
        elif verb == "stats":
            connection.send((assembler.stats, assembler.active_devices))
        elif verb == "close":
            connection.send(None)
            break
        else:  # pragma: no cover - protocol misuse guard
            connection.send(SimulationError(f"unknown worker command: {verb!r}"))


class ParallelShardAssembler:
    """Drop-in assembler facade fanning shards out to worker processes.

    Exposes the surface the :class:`~repro.streaming.pipeline.StreamingPipeline`
    drives -- ``observe``/``observe_batch``/``evict_idle``/``flush``/
    ``stats``/``shards`` -- so swapping it in needs no pipeline changes:
    eviction sweeps rotate over workers exactly as they rotate over
    buckets in-process.

    Worth knowing before reaching for it: the Python work a worker saves
    must outweigh one pickle round-trip per dispatch, so this pays off for
    sustained high device counts per batch, not for the small streams the
    unit tests replay.  Use :meth:`close` (or the context-manager form)
    when done; an unclosed facade reaps its children in ``__del__`` as a
    best effort.
    """

    def __init__(
        self,
        workers: int = 4,
        start_method: Optional[str] = None,
        **assembler_kwargs,
    ):
        if workers <= 0:
            raise SimulationError(f"worker count must be positive, got {workers}")
        self.shards = workers
        # The same knobs as ShardedFingerprintAssembler minus `shards`
        # (each child is its own single bucket).
        if "shards" in assembler_kwargs:
            raise SimulationError("pass workers=, not shards=, to ParallelShardAssembler")
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(start_method)
        self._connections = []
        self._processes = []
        for _ in range(workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_end, assembler_kwargs), daemon=True
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        self._closed = False

    # ------------------------------------------------------------------ #
    # Routing (identical to the in-process assembler's).
    # ------------------------------------------------------------------ #
    def shard_of(self, mac: MACAddress) -> int:
        return hash(mac) % self.shards

    # ------------------------------------------------------------------ #
    # Stream input.
    # ------------------------------------------------------------------ #
    def observe(self, packet: Packet) -> Optional[ReadyFingerprint]:
        """Single-packet compatibility path (a one-packet batch)."""
        ready = self.observe_batch(PacketBatch.from_packets([packet]))
        return ready[0] if ready else None

    def observe_batch(self, batch: PacketBatch) -> list[ReadyFingerprint]:
        return [ready for _, ready in self.observe_batch_indexed(batch)]

    def observe_batch_indexed(
        self, batch: PacketBatch
    ) -> list[tuple[int, ReadyFingerprint]]:
        """Fan the batch out by shard, merge emissions by trigger index."""
        self._ensure_open()
        if len(batch) == 0:
            return []
        # Partition device groups across workers; concatenating a worker's
        # group index arrays and sorting restores stream order for the
        # packets that worker owns.
        per_worker: list[list[np.ndarray]] = [[] for _ in range(self.shards)]
        for mac_value, indices in batch.device_runs():
            per_worker[self.shard_of(MACAddress(mac_value))].append(indices)
        dispatched: list[tuple[int, np.ndarray]] = []
        for worker, groups in enumerate(per_worker):
            if not groups:
                continue
            indices = np.sort(np.concatenate(groups))
            self._connections[worker].send(
                ("observe", batch.take(indices, with_backing=False))
            )
            dispatched.append((worker, indices))
        emissions: list[tuple[int, ReadyFingerprint]] = []
        for worker, indices in dispatched:
            for local_index, ready in self._connections[worker].recv():
                emissions.append((int(indices[local_index]), ready))
        emissions.sort(key=lambda pair: pair[0])
        return emissions

    # ------------------------------------------------------------------ #
    # Eviction, flushing, stats.
    # ------------------------------------------------------------------ #
    def evict_idle(self, now: float, shard: Optional[int] = None) -> list[ReadyFingerprint]:
        self._ensure_open()
        workers = range(self.shards) if shard is None else [shard % self.shards]
        for worker in workers:
            self._connections[worker].send(("evict", now))
        ready: list[ReadyFingerprint] = []
        for worker in workers:
            ready.extend(self._connections[worker].recv())
        return ready

    def flush(self, now: float = 0.0) -> list[ReadyFingerprint]:
        self._ensure_open()
        for connection in self._connections:
            connection.send(("flush", now))
        ready: list[ReadyFingerprint] = []
        for connection in self._connections:
            ready.extend(connection.recv())
        return ready

    @property
    def stats(self) -> AssemblerStats:
        """Aggregated lifetime counters across every worker."""
        self._ensure_open()
        for connection in self._connections:
            connection.send(("stats",))
        total = AssemblerStats()
        self._active_devices = 0
        for connection in self._connections:
            stats, active = connection.recv()
            total.packets_observed += stats.packets_observed
            total.fingerprints_emitted += stats.fingerprints_emitted
            total.budget_emissions += stats.budget_emissions
            total.idle_emissions += stats.idle_emissions
            total.flush_emissions += stats.flush_emissions
            total.min_signal_drops += stats.min_signal_drops
            self._active_devices += active
        return total

    @property
    def active_devices(self) -> int:
        self.stats  # refreshes the cached per-worker device counts
        return self._active_devices

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("close",))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SimulationError("ParallelShardAssembler is closed")

    def __enter__(self) -> "ParallelShardAssembler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown path
        try:
            self.close()
        # repro-lint: disable=exception-hygiene -- __del__ runs during interpreter teardown where modules may already be torn down; raising here aborts GC with an unraisable error
        except Exception:
            pass


__all__ = ["ParallelShardAssembler"]
