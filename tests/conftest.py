"""Shared fixtures for the test suite.

Expensive artefacts (the synthetic dataset and a trained identifier) are
session-scoped and deliberately smaller than the paper-scale configuration
so that the full suite stays fast; the benchmarks exercise full scale.
"""

from __future__ import annotations

import pytest

from repro.datasets.builder import DatasetBuilder
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import LabEnvironment, SetupTrafficSimulator
from repro.identification.identifier import DeviceTypeIdentifier
from repro.net.addresses import MACAddress
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.layers.tcp import TCPSegment
from repro.net.layers.udp import UDPDatagram
from repro.net.packet import Packet

#: A small but representative subset of device-types used by the fast tests:
#: a few distinctive devices plus two confusable families.
SMALL_DEVICE_SET = (
    "Aria",
    "HueBridge",
    "EdnetCam",
    "WeMoSwitch",
    "D-LinkCam",
    "TP-LinkPlugHS110",
    "TP-LinkPlugHS100",
    "SmarterCoffee",
    "iKettle2",
)


@pytest.fixture(scope="session")
def small_dataset():
    """A reduced synthetic fingerprint dataset (9 types x 8 runs)."""
    builder = DatasetBuilder(runs_per_type=8, seed=1234)
    return builder.build_synthetic(SMALL_DEVICE_SET)


@pytest.fixture(scope="session")
def trained_identifier(small_dataset):
    """An identifier trained on the full small dataset."""
    return DeviceTypeIdentifier.train(small_dataset.to_registry(), random_state=7)


@pytest.fixture()
def lab_environment():
    return LabEnvironment()


@pytest.fixture()
def simulator(lab_environment):
    return SetupTrafficSimulator(environment=lab_environment, seed=99)


@pytest.fixture()
def aria_trace(simulator):
    """One simulated setup run of the Fitbit Aria profile."""
    return simulator.simulate(DEVICE_CATALOG["Aria"])


def make_device_mac(index: int = 1) -> MACAddress:
    return MACAddress.from_string(f"02:aa:bb:cc:dd:{index:02x}")


def make_tcp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: str,
    dst_ip: str,
    dst_port: int = 443,
    src_port: int = 51000,
    payload: bytes = b"",
) -> Packet:
    """A plain TCP packet between two endpoints (helper for gateway tests)."""
    return Packet(
        ethernet=EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE.IPV4),
        ipv4=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP),
        tcp=TCPSegment(src_port=src_port, dst_port=dst_port, payload=payload),
    )


def make_udp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: str,
    dst_ip: str,
    dst_port: int = 53,
    src_port: int = 50000,
    payload: bytes = b"",
) -> Packet:
    """A plain UDP packet between two endpoints."""
    return Packet(
        ethernet=EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE.IPV4),
        ipv4=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_UDP),
        udp=UDPDatagram(src_port=src_port, dst_port=dst_port, payload=payload),
    )
