"""Tests for MAC/IP address helpers."""

import pytest

from repro.exceptions import PacketDecodeError
from repro.net.addresses import (
    MACAddress,
    ip_to_int,
    ipv4_from_bytes,
    ipv4_to_bytes,
    ipv6_from_bytes,
    ipv6_to_bytes,
    is_ipv4,
    is_ipv6,
    is_multicast_ip,
    is_private_ipv4,
)


class TestMACAddress:
    def test_parse_colon_notation(self):
        mac = MACAddress.from_string("b0:c5:54:01:02:03")
        assert str(mac) == "b0:c5:54:01:02:03"

    def test_parse_dash_notation(self):
        mac = MACAddress.from_string("13-73-74-7E-A9-C2")
        assert str(mac) == "13:73:74:7e:a9:c2"

    def test_invalid_string_rejected(self):
        with pytest.raises(ValueError):
            MACAddress.from_string("not-a-mac")

    def test_bytes_roundtrip(self):
        mac = MACAddress.from_string("de:ad:be:ef:00:01")
        assert MACAddress.from_bytes(mac.to_bytes()) == mac

    def test_from_bytes_wrong_length(self):
        with pytest.raises(PacketDecodeError):
            MACAddress.from_bytes(b"\x00\x01\x02")

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            MACAddress(1 << 48)

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast
        assert MACAddress.broadcast().is_multicast

    def test_zero_is_not_broadcast(self):
        assert not MACAddress.zero().is_broadcast

    def test_multicast_bit(self):
        assert MACAddress.from_string("01:00:5e:00:00:01").is_multicast
        assert not MACAddress.from_string("00:00:5e:00:00:01").is_multicast

    def test_locally_administered_bit(self):
        assert MACAddress.from_string("02:00:00:00:00:01").is_locally_administered
        assert not MACAddress.from_string("00:17:88:00:00:01").is_locally_administered

    def test_oui_prefix(self):
        assert MACAddress.from_string("00:17:88:aa:bb:cc").oui == "00:17:88"

    def test_usable_as_dict_key(self):
        mac = MACAddress.from_string("aa:bb:cc:dd:ee:ff")
        table = {mac: "rule"}
        assert table[MACAddress.from_string("AA-BB-CC-DD-EE-FF")] == "rule"

    def test_ordering(self):
        low = MACAddress.from_string("00:00:00:00:00:01")
        high = MACAddress.from_string("00:00:00:00:00:02")
        assert low < high


class TestIPHelpers:
    def test_is_ipv4(self):
        assert is_ipv4("192.168.0.1")
        assert not is_ipv4("999.1.1.1")
        assert not is_ipv4("fe80::1")

    def test_is_ipv6(self):
        assert is_ipv6("fe80::1")
        assert not is_ipv6("192.168.0.1")

    def test_ip_to_int(self):
        assert ip_to_int("0.0.0.1") == 1
        assert ip_to_int("::2") == 2

    def test_ipv4_bytes_roundtrip(self):
        assert ipv4_from_bytes(ipv4_to_bytes("10.1.2.3")) == "10.1.2.3"

    def test_ipv4_from_bytes_wrong_length(self):
        with pytest.raises(PacketDecodeError):
            ipv4_from_bytes(b"\x01\x02")

    def test_ipv6_bytes_roundtrip(self):
        assert ipv6_from_bytes(ipv6_to_bytes("fe80::abcd")) == "fe80::abcd"

    def test_ipv6_from_bytes_wrong_length(self):
        with pytest.raises(PacketDecodeError):
            ipv6_from_bytes(b"\x01" * 5)

    def test_private_and_multicast(self):
        assert is_private_ipv4("192.168.1.5")
        assert not is_private_ipv4("8.8.8.8")
        assert is_multicast_ip("239.255.255.250")
        assert is_multicast_ip("ff02::fb")
        assert not is_multicast_ip("1.2.3.4")
