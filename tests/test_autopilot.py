"""Tests for the lifecycle autopilot: triggers, durable quarantine, re-profiling."""

from __future__ import annotations

import pytest

from repro.datasets.builder import DatasetBuilder
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import AutopilotError
from repro.features.fingerprint import Fingerprint
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.autopilot import (
    PROVISIONAL_LABEL_PREFIX,
    LifecycleAutopilot,
    ReprofileScheduler,
    TriggerPolicy,
    provisional_label,
)
from repro.identification.identifier import DeviceTypeIdentifier, UNKNOWN_DEVICE_TYPE
from repro.identification.lifecycle import LifecycleCoordinator
from repro.net.addresses import MACAddress
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService
from repro.streaming import BatchDispatcher, GatewayEnforcementSink
from repro.streaming.assembler import ReadyFingerprint

#: Training set deliberately missing "HomeMaticPlug": its devices identify
#: as unknown until the autopilot (or an operator) learns the type.
KNOWN_TYPES = ("Aria", "HueBridge", "EdnetCam")
UNKNOWN_MODEL = "HomeMaticPlug"


@pytest.fixture(scope="module")
def known_dataset():
    return DatasetBuilder(runs_per_type=6, seed=1234).build_synthetic(KNOWN_TYPES)


@pytest.fixture()
def identifier(known_dataset):
    """A fresh identifier per test: learning mutates the bank."""
    return DeviceTypeIdentifier.train(known_dataset.to_registry(), random_state=7)


def cluster_mac(index: int) -> MACAddress:
    return MACAddress.from_string(f"02:aa:bb:cc:dd:{index:02x}")


def cluster_fingerprint(seed: int = 55, mac: MACAddress | None = None) -> Fingerprint:
    """One member of an identical-setup unknown-model cluster.

    A fresh simulator per call with the same seed replays the exact same
    setup procedure, so distinct MACs share one fingerprint content key
    (same model, same firmware) -- the sharing cluster detection keys on.
    """
    trace = SetupTrafficSimulator(seed=seed).simulate(
        DEVICE_CATALOG[UNKNOWN_MODEL], device_mac=mac
    )
    return Fingerprint.from_packets(trace.packets)


def quarantine_cluster(coordinator, size: int, seed: int = 55, now: float = 0.0, base: int = 1):
    """Park ``size`` identical-model devices; returns their MACs."""
    macs = []
    for index in range(size):
        mac = cluster_mac(base + index)
        coordinator.quarantine.record(
            mac, cluster_fingerprint(seed=seed, mac=mac), now=now, completion_reason="idle"
        )
        macs.append(mac)
    return macs


def build_stack(identifier, tmp_path=None, policy=None, confirm=None):
    """Gateway + coordinator + sink + dispatcher + autopilot, fully wired."""
    service = IoTSecurityService(identifier=identifier)
    gateway = SecurityGateway(security_service=service)
    coordinator = LifecycleCoordinator(
        identifier=identifier,
        store_path=(tmp_path / "model.npz") if tmp_path is not None else None,
        quarantine_path=(tmp_path / "quarantine.npz") if tmp_path is not None else None,
    )
    sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, lifecycle=coordinator
    )
    coordinator.sink = sink
    gateway.attach_lifecycle(coordinator)
    dispatcher = BatchDispatcher(identifier, max_batch=1, cache=coordinator.make_cache())
    autopilot = LifecycleAutopilot(
        coordinator,
        policy=policy or TriggerPolicy(min_cluster_size=3),
        confirm=confirm,
        security_service=service,
    )
    return service, gateway, coordinator, sink, dispatcher, autopilot


def identify_through(dispatcher, sink, mac, fingerprint):
    ready = ReadyFingerprint(mac=mac, fingerprint=fingerprint, reason="budget")
    results = dispatcher.submit(ready)
    results.extend(dispatcher.drain())
    for item in results:
        sink(item)
    return results


# --------------------------------------------------------------------- #
# Trigger-policy edge cases.
# --------------------------------------------------------------------- #
class TestTriggerPolicy:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(AutopilotError):
            TriggerPolicy(min_cluster_size=0)
        with pytest.raises(AutopilotError):
            TriggerPolicy(min_dwell_seconds=-1.0)
        with pytest.raises(AutopilotError):
            TriggerPolicy(cooldown_seconds=-0.5)
        with pytest.raises(AutopilotError):
            TriggerPolicy(max_pending=0)

    def test_cluster_below_threshold_does_not_fire(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(coordinator, TriggerPolicy(min_cluster_size=3))
        quarantine_cluster(coordinator, 2)
        assert autopilot.poll(now=10.0) == []
        assert autopilot.triggers_fired == 0
        assert len(coordinator.quarantine) == 2  # nothing was learned

    def test_distinct_models_do_not_pool_into_one_cluster(self, identifier):
        # Three unknown devices of *different* setups share no key; no
        # cluster reaches the threshold.
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(coordinator, TriggerPolicy(min_cluster_size=3))
        for index, seed in enumerate((11, 22, 33)):
            mac = cluster_mac(index + 1)
            coordinator.quarantine.record(mac, cluster_fingerprint(seed=seed, mac=mac))
        assert len(autopilot.clusters()) == 3
        assert autopilot.poll(now=10.0) == []

    def test_dwell_time_debounces_fresh_clusters(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator,
            TriggerPolicy(min_cluster_size=2, min_dwell_seconds=30.0),
            confirm=lambda proposal: None,  # park instead of training
        )
        quarantine_cluster(coordinator, 2, now=100.0)
        assert autopilot.poll(now=110.0) == []  # dwell not yet served
        decisions = autopilot.poll(now=130.0)
        assert [decision.action for decision in decisions] == ["pending"]

    def test_cooldown_rate_limits_triggers(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator,
            TriggerPolicy(min_cluster_size=2, cooldown_seconds=60.0),
            confirm=lambda proposal: None,
        )
        quarantine_cluster(coordinator, 2, seed=55, base=1)
        quarantine_cluster(coordinator, 2, seed=77, base=10)  # a second model
        first = autopilot.poll(now=0.0)
        assert len(first) == 1  # one trigger per cooldown window
        assert autopilot.poll(now=30.0) == []  # still inside the window
        second = autopilot.poll(now=61.0)
        assert len(second) == 1
        assert first[0].proposal.cluster_key != second[0].proposal.cluster_key

    def test_max_pending_caps_unconfirmed_learns(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator,
            TriggerPolicy(min_cluster_size=2, max_pending=1),
            confirm=lambda proposal: None,
        )
        quarantine_cluster(coordinator, 2, seed=55, base=1)
        quarantine_cluster(coordinator, 2, seed=77, base=10)
        decisions = autopilot.poll(now=0.0)
        assert len(decisions) == 1  # the second cluster must wait
        assert len(autopilot.pending) == 1
        autopilot.reject(decisions[0].proposal.cluster_key)
        assert len(autopilot.poll(now=1.0)) == 1  # slot freed, second fires

    def test_cluster_dissolving_below_threshold_cancels_pending(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator,
            TriggerPolicy(min_cluster_size=2),
            confirm=lambda proposal: None,
        )
        macs = quarantine_cluster(coordinator, 2)
        assert autopilot.poll(now=0.0)[0].action == "pending"
        coordinator.quarantine.discard(macs[0])  # the device identified/left
        assert autopilot.poll(now=1.0) == []
        assert autopilot.pending == ()
        assert autopilot.cancelled == 1


# --------------------------------------------------------------------- #
# Proposal lifecycle: confirm, approve, reject, promote.
# --------------------------------------------------------------------- #
class TestProposals:
    def test_confirm_hook_label_overrides_provisional(self, identifier):
        seen = []

        def confirm(proposal):
            seen.append(proposal)
            return UNKNOWN_MODEL  # the operator knows the real name

        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=confirm
        )
        quarantine_cluster(coordinator, 2)
        decisions = autopilot.poll(now=0.0)
        assert decisions[0].action == "learned"
        assert decisions[0].report.device_type == UNKNOWN_MODEL
        assert seen[0].label.startswith(PROVISIONAL_LABEL_PREFIX)
        assert seen[0].cluster_size == 2
        assert UNKNOWN_MODEL in identifier.known_device_types

    def test_deferred_proposal_approved_later(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: None
        )
        quarantine_cluster(coordinator, 2)
        proposal = autopilot.poll(now=0.0)[0].proposal
        report = autopilot.approve(proposal.cluster_key, label=UNKNOWN_MODEL)
        assert report.device_type == UNKNOWN_MODEL
        assert len(report.upgraded) == 2
        assert len(coordinator.quarantine) == 0
        assert autopilot.pending == ()

    def test_reject_keeps_the_fleet_quarantined(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: None
        )
        quarantine_cluster(coordinator, 2)
        proposal = autopilot.poll(now=0.0)[0].proposal
        rejected = autopilot.reject(proposal.cluster_key)
        assert rejected.cluster_key == proposal.cluster_key
        assert autopilot.rejected == 1
        assert len(coordinator.quarantine) == 2
        assert UNKNOWN_MODEL not in identifier.known_device_types

    def test_confirm_hook_veto_is_sticky(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: False
        )
        quarantine_cluster(coordinator, 2)
        decisions = autopilot.poll(now=0.0)
        assert [decision.action for decision in decisions] == ["rejected"]
        assert autopilot.rejected == 1
        assert len(coordinator.quarantine) == 2  # fleet stays parked
        assert autopilot.poll(now=10.0) == []  # never re-proposed

    def test_operator_reject_is_also_sticky(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: None
        )
        quarantine_cluster(coordinator, 2)
        proposal = autopilot.poll(now=0.0)[0].proposal
        autopilot.reject(proposal.cluster_key)
        assert autopilot.poll(now=10.0) == []  # no proposal churn after a veto

    def test_provisional_cap_applies_via_sink_carried_service(
        self, identifier, tmp_path
    ):
        # Autopilot constructed WITHOUT security_service: the cap must
        # still apply through the sink's service (same fallback promote
        # uses), or auto-minted types come out trusted.
        service, gateway, coordinator, sink, dispatcher, _ = build_stack(
            identifier, tmp_path
        )
        autopilot = LifecycleAutopilot(coordinator, TriggerPolicy(min_cluster_size=3))
        for index in range(3):
            mac = cluster_mac(index + 1)
            identify_through(dispatcher, sink, mac, cluster_fingerprint(mac=mac))
        decision = autopilot.poll(now=50.0)[0]
        assert decision.proposal.label in service.provisional_types
        for mac in decision.proposal.macs:
            assert gateway.device_record(mac).isolation_level is IsolationLevel.RESTRICTED

    def test_unknown_cluster_key_raises(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(coordinator)
        with pytest.raises(AutopilotError):
            autopilot.approve(b"missing-key-1234")
        with pytest.raises(AutopilotError):
            autopilot.reject(b"missing-key-1234")

    def test_provisional_label_is_deterministic(self):
        key = bytes(range(20))
        assert provisional_label(key) == provisional_label(key)
        assert provisional_label(key).startswith(PROVISIONAL_LABEL_PREFIX)


class TestProvisionalLabelCollisions:
    def test_digest_widened_to_twelve_hex(self):
        key = bytes(range(20))
        assert provisional_label(key) == PROVISIONAL_LABEL_PREFIX + key.hex()[:12]

    def test_collision_disambiguated_with_numeric_suffix(self):
        key_a = bytes.fromhex("ab12cd34ef56") + bytes(14)
        key_b = bytes.fromhex("ab12cd34ef56") + bytes([1]) * 14
        label_a = provisional_label(key_a)
        assert provisional_label(key_b, taken={label_a}) == label_a + "-2"
        assert provisional_label(key_b, taken={label_a, label_a + "-2"}) == label_a + "-3"
        # A non-colliding key is unaffected by taken labels.
        other = bytes.fromhex("0011223344556677") + bytes(12)
        assert provisional_label(other, taken={label_a}) == (
            PROVISIONAL_LABEL_PREFIX + "001122334455"
        )

    def test_autopilot_forced_collision_mints_distinct_labels(self, identifier):
        """Regression: two *different* models whose cluster keys share a
        label prefix must not be merged into one provisional type."""
        from repro.features.fingerprint import fingerprint_key

        def colliding_key(fingerprint: Fingerprint) -> bytes:
            # Force every cluster key to share its first 6 bytes (the 12
            # label hex digits) while remaining distinct beyond them --
            # the hash-prefix collision the ROADMAP warned about.
            return b"\xab" * 6 + fingerprint_key(fingerprint)[6:]

        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator,
            policy=TriggerPolicy(min_cluster_size=2),
            cluster_key=colliding_key,
        )
        for index in range(2):
            mac = cluster_mac(index + 1)
            coordinator.quarantine.record(mac, cluster_fingerprint(mac=mac))
        for index in range(2):
            mac = cluster_mac(index + 10)
            trace = SetupTrafficSimulator(seed=99).simulate(
                DEVICE_CATALOG["SmarterCoffee"], device_mac=mac
            )
            coordinator.quarantine.record(mac, Fingerprint.from_packets(trace.packets))

        decisions = autopilot.poll(now=100.0)
        learned = [decision for decision in decisions if decision.action == "learned"]
        assert len(learned) == 2
        labels = [decision.proposal.label for decision in learned]
        assert labels[0] == PROVISIONAL_LABEL_PREFIX + "abababababab"
        assert labels[1] == labels[0] + "-2"
        # Both minted labels really exist as distinct classifiers.
        assert set(labels) <= set(identifier.known_device_types)

    def test_auto_learned_type_capped_below_trusted_until_promoted(
        self, identifier, tmp_path
    ):
        # HomeMaticPlug assesses clean -> trusted when learned by an
        # operator; an autopilot-minted provisional label must not.
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        for index in range(3):
            mac = cluster_mac(index + 1)
            identify_through(dispatcher, sink, mac, cluster_fingerprint(mac=mac))
        decision = autopilot.poll(now=50.0)[0]
        label = decision.proposal.label
        assert label in service.provisional_types
        for mac in decision.proposal.macs:
            assert gateway.device_record(mac).isolation_level is IsolationLevel.RESTRICTED

        upgraded = autopilot.promote(label)
        assert upgraded == 3
        assert label not in service.provisional_types
        for mac in decision.proposal.macs:
            assert gateway.device_record(mac).isolation_level is IsolationLevel.TRUSTED


# --------------------------------------------------------------------- #
# Disconnect coupling (gateway -> lifecycle -> autopilot).
# --------------------------------------------------------------------- #
class TestDisconnectCoupling:
    def test_disconnect_sheds_pending_proposal_member(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: None
        )
        macs = quarantine_cluster(coordinator, 3)
        proposal = autopilot.poll(now=0.0)[0].proposal
        assert proposal.cluster_size == 3
        coordinator.note_disconnected(macs[0])
        assert autopilot.pending[0].cluster_size == 2
        assert macs[0] not in autopilot.pending[0].macs
        assert macs[0] not in coordinator.quarantine

    def test_disconnect_dissolving_cluster_cancels_proposal(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        autopilot = LifecycleAutopilot(
            coordinator, TriggerPolicy(min_cluster_size=2), confirm=lambda p: None
        )
        macs = quarantine_cluster(coordinator, 2)
        autopilot.poll(now=0.0)
        coordinator.note_disconnected(macs[0])
        assert autopilot.pending == ()
        assert autopilot.cancelled == 1


# --------------------------------------------------------------------- #
# Steady-state re-profiling.
# --------------------------------------------------------------------- #
class TestReprofile:
    def onboarded_aria(self, gateway, service, dispatcher, sink, seed=813):
        trace = SetupTrafficSimulator(seed=seed).simulate(DEVICE_CATALOG["Aria"])
        fingerprint = Fingerprint.from_packets(trace.packets)
        identify_through(dispatcher, sink, trace.device_mac, fingerprint)
        return trace.device_mac, fingerprint

    def test_invalid_scheduler_knobs_rejected(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        with pytest.raises(AutopilotError):
            ReprofileScheduler(coordinator, interval=0)
        with pytest.raises(AutopilotError):
            ReprofileScheduler(coordinator, batch_budget=0)

    def test_due_respects_interval(self, identifier):
        coordinator = LifecycleCoordinator(identifier=identifier)
        scheduler = ReprofileScheduler(coordinator, interval=100.0)
        assert scheduler.due(now=0.0)  # never ran
        scheduler.run([], now=0.0)
        assert not scheduler.due(now=50.0)
        assert scheduler.due(now=100.0)

    def test_drift_downgrades_and_quarantines(self, identifier, tmp_path):
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        mac, _ = self.onboarded_aria(gateway, service, dispatcher, sink)
        assert gateway.device_record(mac).isolation_level is IsolationLevel.TRUSTED

        # A firmware update shifts the device's setup behaviour to a
        # pattern no classifier knows.
        drifted_fingerprint = cluster_fingerprint(seed=77, mac=mac)
        scheduler = ReprofileScheduler(coordinator, interval=10.0)
        report = scheduler.run([(mac, drifted_fingerprint)], now=1000.0)
        assert report.drifted == (mac,)
        assert report.examined == 1
        record = gateway.device_record(mac)
        assert record.device_type == UNKNOWN_DEVICE_TYPE
        assert record.isolation_level is IsolationLevel.STRICT
        assert mac in coordinator.quarantine
        assert sink.sticky  # restored after the pass
        # From quarantine the device flows through the normal learn path:
        # two more drifted units form a cluster and the autopilot fires.
        for index in range(2):
            peer = cluster_mac(40 + index)
            identify_through(dispatcher, sink, peer, cluster_fingerprint(seed=77, mac=peer))
        decisions = autopilot.poll(now=1100.0)
        assert decisions[0].action == "learned"
        assert mac in decisions[0].report.upgraded

    def test_unchanged_devices_cause_no_rule_churn(self, identifier, tmp_path):
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        mac, fingerprint = self.onboarded_aria(gateway, service, dispatcher, sink)
        enforced_before = sink.enforced
        scheduler = ReprofileScheduler(coordinator, interval=10.0)
        report = scheduler.run([(mac, fingerprint)], now=1000.0)
        assert report.unchanged == (mac,)
        assert report.drifted == ()
        assert sink.enforced == enforced_before  # verdict agreed: no re-enforcement
        assert gateway.device_record(mac).isolation_level is IsolationLevel.TRUSTED

    def test_still_unknown_devices_keep_their_cluster_evidence(
        self, identifier, tmp_path
    ):
        # A re-profiling pass over already-quarantined devices must not
        # replace their clustered *setup* fingerprints with per-device
        # steady-state ones (or reset the dwell clock) -- that would
        # dissolve the cluster and starve the trigger forever.
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        macs = []
        for index in range(2):  # below threshold: they stay parked
            mac = cluster_mac(index + 1)
            identify_through(dispatcher, sink, mac, cluster_fingerprint(mac=mac))
            macs.append(mac)
        before = {entry.mac: entry for entry in coordinator.quarantine.devices()}

        # Steady-state traffic differs per device (distinct seeds).
        fleet = [
            (mac, cluster_fingerprint(seed=200 + index, mac=mac))
            for index, mac in enumerate(macs)
        ]
        scheduler = ReprofileScheduler(coordinator, interval=10.0)
        report = scheduler.run(fleet, now=5_000.0)
        assert set(report.still_unknown) == set(macs)
        after = {entry.mac: entry for entry in coordinator.quarantine.devices()}
        for mac in macs:
            assert (
                after[mac].fingerprint.vectors == before[mac].fingerprint.vectors
            ).all()
            assert after[mac].quarantined_at == before[mac].quarantined_at
        assert len(autopilot.clusters()) == 1  # still one cluster of two

    def test_budget_defers_and_cursor_resumes(self, identifier, tmp_path):
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        fleet = []
        for seed in (813, 814, 815):
            mac, fingerprint = self.onboarded_aria(
                gateway, service, dispatcher, sink, seed=seed
            )
            fleet.append((mac, fingerprint))
        scheduler = ReprofileScheduler(coordinator, interval=10.0, batch_budget=2)
        first = scheduler.run(fleet, now=0.0)
        assert first.examined == 2
        assert first.deferred == 1
        second = scheduler.run(fleet, now=10.0)
        assert second.examined == 1  # the deferred device, via the cursor
        examined = set(first.unchanged) | set(second.unchanged)
        assert examined == {mac for mac, _ in fleet}  # full coverage in two passes


# --------------------------------------------------------------------- #
# The end-to-end acceptance scenario: restart mid-quarantine.
# --------------------------------------------------------------------- #
class TestEndToEnd:
    def test_restart_mid_quarantine_then_autopilot_learns(self, identifier, tmp_path):
        # --- first gateway process: two unknown devices arrive, then die.
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        coordinator.save_snapshot()  # boot-time bundle at epoch 0
        for index in range(2):
            mac = cluster_mac(index + 1)
            identify_through(dispatcher, sink, mac, cluster_fingerprint(mac=mac))
        assert len(coordinator.quarantine) == 2
        assert autopilot.poll(now=10.0) == []  # below the 3-device threshold
        # The process dies here.  Nothing is flushed explicitly: the
        # quarantine path is write-through.

        # --- restarted process: resume from the persisted bundle + log.
        resumed = LifecycleCoordinator.resume(
            tmp_path / "model.npz", tmp_path / "quarantine.npz"
        )
        assert len(resumed.quarantine) == 2  # no lost pending devices
        assert resumed.epoch.generation == 0
        service2 = IoTSecurityService(identifier=resumed.identifier)
        gateway2 = SecurityGateway(security_service=service2)
        sink2 = GatewayEnforcementSink(
            gateway=gateway2, security_service=service2, lifecycle=resumed
        )
        resumed.sink = sink2
        gateway2.attach_lifecycle(resumed)
        dispatcher2 = BatchDispatcher(
            resumed.identifier, max_batch=1, cache=resumed.make_cache()
        )
        autopilot2 = LifecycleAutopilot(
            resumed, TriggerPolicy(min_cluster_size=3), security_service=service2
        )
        # The restored devices re-onboard on the new gateway (their strict
        # records died with the old process; the quarantine log did not).
        for index in range(2):
            mac = cluster_mac(index + 1)
            identify_through(dispatcher2, sink2, mac, cluster_fingerprint(mac=mac))

        # --- a third identical device arrives; the cluster crosses the
        # threshold and the autopilot drives the whole learn flow.
        third = cluster_mac(3)
        identify_through(dispatcher2, sink2, third, cluster_fingerprint(mac=third))
        assert len(resumed.quarantine) == 3
        decisions = autopilot2.poll(now=500.0)
        assert [decision.action for decision in decisions] == ["learned"]
        report = decisions[0].report
        assert len(report.upgraded) == 3
        assert report.still_unknown == ()
        assert len(resumed.quarantine) == 0
        for index in range(3):
            record = gateway2.device_record(cluster_mac(index + 1))
            assert record.device_type.startswith(PROVISIONAL_LABEL_PREFIX)
            assert record.isolation_level is not IsolationLevel.STRICT

        # The post-learn state is durable: a third process resumes at the
        # new epoch with an empty quarantine.
        final = LifecycleCoordinator.resume(
            tmp_path / "model.npz", tmp_path / "quarantine.npz"
        )
        assert final.epoch.generation == report.generation
        assert len(final.quarantine) == 0
        assert report.device_type in final.identifier.known_device_types

    def test_disconnect_mid_cluster_prevents_the_trigger(self, identifier, tmp_path):
        service, gateway, coordinator, sink, dispatcher, autopilot = build_stack(
            identifier, tmp_path
        )
        macs = []
        for index in range(3):
            mac = cluster_mac(index + 1)
            identify_through(dispatcher, sink, mac, cluster_fingerprint(mac=mac))
            macs.append(mac)
        gateway.disconnect_device(macs[0])  # departed before the poll
        assert macs[0] not in coordinator.quarantine
        assert autopilot.poll(now=10.0) == []  # 2 < min_cluster_size
        assert len(coordinator.quarantine) == 2
