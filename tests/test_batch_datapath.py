"""Differential and property tests of the columnar (batch-first) datapath.

Every batch component has a scalar reference oracle kept in-tree, and this
file is the contract between them: the vectorised edit-distance kernel must
be bitwise-equal to the per-pair dynamic program, a :class:`PacketBatch`
must carry exactly the columns the per-packet parser would have produced,
the batched assembler must emit the same fingerprints as per-packet
observation, and the batched pipeline must hand every device the same
verdict as the per-packet run -- including through the multi-process shard
workers.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.distance.damerau_levenshtein import (
    GLOBAL_INTERNER,
    damerau_levenshtein,
    damerau_levenshtein_matrix,
    normalized_damerau_levenshtein,
    normalized_distances,
)
from repro.exceptions import FingerprintError, SimulationError
from repro.features.packet_features import (
    FEATURE_INDEX,
    PacketFeatureExtractor,
    batch_feature_matrix,
)
from repro.net.batch import PacketBatch
from repro.net.pcap import PcapReader, read_pcap, write_pcap
from repro.streaming import (
    BatchDispatcher,
    IdentificationCache,
    ParallelShardAssembler,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
    iter_packet_batches,
)

_COUNTER = FEATURE_INDEX["dst_ip_counter"]


def _random_words(rng: random.Random, count: int, alphabet: int = 6, max_len: int = 9):
    """Short words over a small alphabet: dense in edit/transposition cases."""
    words = []
    for _ in range(count):
        length = rng.randrange(0, max_len + 1)
        words.append(tuple(rng.randrange(alphabet) for _ in range(length)))
    return words


# --------------------------------------------------------------------- #
# Distance layer: the vectorised kernel against the per-pair oracle.
# --------------------------------------------------------------------- #
class TestBatchDistanceKernel:
    def test_matrix_matches_scalar_on_random_words(self):
        rng = random.Random(1234)
        queries = _random_words(rng, 40)
        references = _random_words(rng, 25)
        encoded_refs = [GLOBAL_INTERNER.encode(ref) for ref in references]
        for query in queries:
            expected = np.array(
                [damerau_levenshtein(query, ref) for ref in references], dtype=np.int64
            )
            got = damerau_levenshtein_matrix(GLOBAL_INTERNER.encode(query), encoded_refs)
            assert got.dtype == np.int64
            np.testing.assert_array_equal(got, expected)

    def test_normalized_is_bitwise_equal_to_scalar(self):
        rng = random.Random(99)
        queries = _random_words(rng, 20)
        references = [word for word in _random_words(rng, 20) if word]
        encoded_refs = [GLOBAL_INTERNER.encode(ref) for ref in references]
        for query in queries:
            got = normalized_distances(
                GLOBAL_INTERNER.encode(query), len(query), encoded_refs
            )
            for value, reference in zip(got, references):
                # Same division of the same two machine numbers: `==`, not
                # approx -- bitwise float parity is the whole point.
                assert value == normalized_damerau_levenshtein(query, reference)

    def test_empty_sequence_contract_matches_scalar(self):
        word = GLOBAL_INTERNER.encode(("a", "b"))
        empty = GLOBAL_INTERNER.encode(())
        # One empty side: distance is the other side's length, norm is 1.0.
        np.testing.assert_array_equal(
            damerau_levenshtein_matrix(word, [empty]), np.array([2])
        )
        np.testing.assert_array_equal(
            damerau_levenshtein_matrix(empty, [word]), np.array([2])
        )
        assert normalized_distances(word, 2, [empty]) == [1.0]
        assert normalized_distances(empty, 0, [word]) == [1.0]
        # Both sides empty: the scalar function raises, so must the batch.
        with pytest.raises(FingerprintError):
            normalized_damerau_levenshtein((), ())
        with pytest.raises(FingerprintError):
            normalized_distances(empty, 0, [word, empty])

    def test_reference_set_edges(self):
        word = GLOBAL_INTERNER.encode(("x", "y", "z"))
        assert damerau_levenshtein_matrix(word, []).shape == (0,)
        empties = [GLOBAL_INTERNER.encode(()) for _ in range(3)]
        np.testing.assert_array_equal(
            damerau_levenshtein_matrix(word, empties), np.full(3, 3)
        )


# --------------------------------------------------------------------- #
# Net layer: batch columns vs the per-packet parser and extractor.
# --------------------------------------------------------------------- #
def _setup_packets(seed: int = 21, names=("Aria", "HueBridge", "EdnetCam", "WeMoSwitch")):
    simulator = SetupTrafficSimulator(seed=seed)
    packets = []
    for index, name in enumerate(names):
        trace = simulator.simulate(DEVICE_CATALOG[name], start_time=index * 1.5)
        packets.extend(trace.packets)
    packets.sort(key=lambda packet: packet.timestamp)
    return packets


def _expected_columns(packets):
    """Per-packet oracle: one fresh extractor per packet, counter zeroed."""
    extractor = PacketFeatureExtractor()
    rows = []
    for packet in packets:
        extractor.reset()
        row = extractor.extract(packet)
        row[_COUNTER] = 0  # stateful column is the assembler's job
        rows.append(row)
    return np.stack(rows)


class TestPacketBatchColumns:
    def test_from_packets_matches_per_packet_extractor(self):
        packets = _setup_packets()
        batch = PacketBatch.from_packets(packets)
        assert len(batch) == len(packets)
        np.testing.assert_array_equal(batch_feature_matrix(batch), _expected_columns(packets))
        for index, packet in enumerate(packets):
            assert batch.dst_ips[index] == packet.dst_ip
            assert batch.src_macs[index] == packet.ethernet.src.value
            assert batch.timestamps[index] == packet.timestamp
            assert batch.src_ports[index] == (
                packet.src_port if packet.src_port is not None else -1
            )
            assert batch.dst_ports[index] == (
                packet.dst_port if packet.dst_port is not None else -1
            )

    def test_from_frames_pcap_matches_per_packet_dissection(self, tmp_path):
        """The struct-batched frame parser against Packet.dissect, via a
        real pcap round trip (LLC, EAPOL, ARP, options and DHCP frames all
        exercise the fast parser's fallback decisions)."""
        path = tmp_path / "setup.pcap"
        write_pcap(path, _setup_packets())
        frames = list(PcapReader(path))
        assert frames
        from_frames = PacketBatch.from_frames(frames)
        from_packets = PacketBatch.from_packets(read_pcap(path))
        np.testing.assert_array_equal(from_frames.flags, from_packets.flags)
        np.testing.assert_array_equal(from_frames.src_macs, from_packets.src_macs)
        np.testing.assert_array_equal(from_frames.src_ports, from_packets.src_ports)
        np.testing.assert_array_equal(from_frames.dst_ports, from_packets.dst_ports)
        np.testing.assert_array_equal(from_frames.sizes, from_packets.sizes)
        np.testing.assert_array_equal(from_frames.timestamps, from_packets.timestamps)
        assert from_frames.dst_ips == from_packets.dst_ips
        # The thin per-packet view dissects lazily to the same packets.
        assert from_frames.packet(0).to_bytes() == frames[0].data

    def test_simulator_stream_batches_match_source_packets(self):
        source = SimulatedSource(devices=6, seed=3)
        packets = list(source.packets())
        batches = list(iter_packet_batches(SimulatedSource(devices=6, seed=3), 32))
        assert sum(len(batch) for batch in batches) == len(packets)
        stitched = np.concatenate([batch_feature_matrix(batch) for batch in batches])
        np.testing.assert_array_equal(stitched, _expected_columns(packets))

    def test_batch_size_edges(self):
        packets = _setup_packets(seed=4, names=("Aria",))
        empty = PacketBatch.from_packets([])
        assert len(empty) == 0
        assert empty.device_runs() == []
        assert batch_feature_matrix(empty).shape == (0, 23)

        single = PacketBatch.from_packets(packets[:1])
        assert len(single) == 1
        np.testing.assert_array_equal(
            batch_feature_matrix(single), _expected_columns(packets[:1])
        )

        whole = PacketBatch.from_packets(packets)  # one max-size batch
        view = whole.slice(0, len(whole))
        np.testing.assert_array_equal(view.flags, whole.flags)
        taken = whole.take(np.arange(len(whole)), with_backing=False)
        assert taken.packets is None and taken.frames is None
        np.testing.assert_array_equal(taken.sizes, whole.sizes)

    def test_device_runs_preserve_stream_order(self):
        packets = _setup_packets(seed=8, names=("Aria", "HueBridge"))
        batch = PacketBatch.from_packets(packets)
        seen = []
        for mac_value, indices in batch.device_runs():
            assert (np.diff(indices) > 0).all() or len(indices) == 1
            assert (batch.src_macs[indices] == mac_value).all()
            seen.extend(int(i) for i in indices)
        assert sorted(seen) == list(range(len(batch)))

    def test_iter_packet_batches_rejects_bad_size(self):
        with pytest.raises(SimulationError):
            list(iter_packet_batches(SimulatedSource(devices=1, seed=0), 0))


# --------------------------------------------------------------------- #
# Assembler and pipeline: emission and verdict parity across paths.
# --------------------------------------------------------------------- #
def _emission_map(emissions):
    return {
        str(item.mac): (
            item.reason,
            item.completed_at,
            item.fingerprint.vectors.shape,
            item.fingerprint.vectors.tobytes(),
        )
        for item in emissions
    }


def _drive_per_packet(source):
    assembler = ShardedFingerprintAssembler(shards=4)
    emissions = [
        ready for packet in source.packets() if (ready := assembler.observe(packet))
    ]
    emissions.extend(assembler.flush(10_000.0))
    return emissions, assembler.stats


class TestBatchedAssembler:
    @pytest.mark.parametrize("batch_size", [1, 17, 100_000])
    def test_observe_batch_equals_per_packet_observe(self, batch_size):
        baseline, base_stats = _drive_per_packet(SimulatedSource(devices=12, seed=5))
        assembler = ShardedFingerprintAssembler(shards=4)
        emissions = []
        for batch in iter_packet_batches(SimulatedSource(devices=12, seed=5), batch_size):
            emissions.extend(assembler.observe_batch(batch))
        emissions.extend(assembler.flush(10_000.0))
        assert _emission_map(emissions) == _emission_map(baseline)
        assert assembler.stats == base_stats


class TestParallelShardWorkers:
    def test_worker_emissions_match_in_process_assembler(self):
        baseline, base_stats = _drive_per_packet(SimulatedSource(devices=12, seed=5))
        with ParallelShardAssembler(workers=4) as parallel:
            emissions = []
            for batch in iter_packet_batches(SimulatedSource(devices=12, seed=5), 64):
                emissions.extend(parallel.observe_batch(batch))
            emissions.extend(parallel.flush(10_000.0))
            stats = parallel.stats
        assert _emission_map(emissions) == _emission_map(baseline)
        assert stats == base_stats

    def test_single_packet_observe_and_lifecycle(self):
        source = SimulatedSource(devices=2, seed=1)
        parallel = ParallelShardAssembler(workers=2)
        try:
            for packet in source.packets():
                parallel.observe(packet)
            assert parallel.active_devices == 2
            flushed = parallel.flush(10_000.0)
            assert len(flushed) == 2
        finally:
            parallel.close()
        parallel.close()  # idempotent
        with pytest.raises(SimulationError):
            parallel.flush(0.0)

    def test_constructor_guards(self):
        with pytest.raises(SimulationError):
            ParallelShardAssembler(workers=0)
        with pytest.raises(SimulationError):
            ParallelShardAssembler(workers=2, shards=4)


class TestBatchedPipeline:
    @staticmethod
    def _verdicts(identifier, batch_size=None):
        delivered = []
        pipeline = StreamingPipeline(
            source=SimulatedSource(devices=12, seed=11),
            dispatcher=BatchDispatcher(
                identifier, max_batch=4, cache=IdentificationCache(capacity=64)
            ),
            assembler=ShardedFingerprintAssembler(shards=4),
            on_identified=delivered.append,
        )
        if batch_size is None:
            stats = pipeline.run()
        else:
            stats = pipeline.run_batched(batch_size=batch_size)
        return delivered, stats

    def test_batched_run_gives_every_device_the_same_verdict(self, trained_identifier):
        baseline, base_stats = self._verdicts(trained_identifier)
        expected = {
            str(item.mac): (
                item.result.device_type,
                item.result.matched_types,
                item.result.discrimination_scores,
                item.fingerprint.vectors.tobytes(),
            )
            for item in baseline
        }
        for batch_size in (1, 33, 100_000):
            delivered, stats = self._verdicts(trained_identifier, batch_size=batch_size)
            got = {
                str(item.mac): (
                    item.result.device_type,
                    item.result.matched_types,
                    item.result.discrimination_scores,
                    item.fingerprint.vectors.tobytes(),
                )
                for item in delivered
            }
            assert got == expected
            assert stats.packets == base_stats.packets
            assert stats.fingerprints == base_stats.fingerprints
            assert stats.identified == base_stats.identified

    def test_batched_and_scalar_distance_kernels_agree_end_to_end(
        self, small_dataset, trained_identifier
    ):
        """The kernel knob is purely a performance choice: whole verdict
        streams are equal either way."""
        import copy
        import dataclasses

        assert trained_identifier.discriminator.kernel == "batched"
        scalar = copy.copy(trained_identifier)
        scalar.discriminator = dataclasses.replace(
            trained_identifier.discriminator, kernel="scalar"
        )
        probes = small_dataset.fingerprints[::3]
        for fast, slow in zip(
            trained_identifier.identify_many(probes), scalar.identify_many(probes)
        ):
            assert fast.device_type == slow.device_type
            assert fast.matched_types == slow.matched_types
            assert fast.discrimination_scores == slow.discrimination_scores

# --------------------------------------------------------------------- #
# Fuzz: the struct-batched frame parser vs Packet.dissect on hostile
# input -- truncated, byte-flipped and garbage frames (the wire the
# scenario harness stresses must parse identically either way).
# --------------------------------------------------------------------- #
class TestFromFramesFuzz:
    ROUNDS = 4

    def _base_frames(self, seed):
        from repro.net.pcap import CapturedPacket

        packets = _setup_packets(seed=seed)
        return [
            CapturedPacket(packet.timestamp, packet.to_bytes(), 0)
            for packet in packets
        ]

    def _mutate(self, rng, frame):
        from repro.net.pcap import CapturedPacket

        data = bytearray(frame.data)
        choice = rng.randrange(5)
        if choice == 0:  # truncation anywhere, including sub-Ethernet
            data = data[: rng.randrange(len(data))]
        elif choice == 1:  # random byte flips in place
            for _ in range(rng.randrange(1, 8)):
                data[rng.randrange(len(data))] = rng.randrange(256)
        elif choice == 2:  # pure garbage (possibly empty)
            data = bytearray(rng.randbytes(rng.randrange(0, 80)))
        elif choice == 3:  # Ethernet header kept, upper layers cut short
            data = data[: rng.randrange(14, len(data) + 1)]
        else:  # trailing garbage appended
            data = data + bytearray(rng.randbytes(rng.randrange(1, 40)))
        return CapturedPacket(frame.timestamp, bytes(data), 0)

    def test_fast_parse_matches_full_dissect_on_mutated_frames(self):
        from repro.exceptions import PacketDecodeError
        from repro.net.packet import Packet

        rng = random.Random(20260808)
        for round_index in range(self.ROUNDS):
            frames = self._base_frames(seed=60 + round_index)
            mutants = [self._mutate(rng, frame) for frame in frames]
            parseable, rejected = [], []
            oracle_packets = []
            for frame in frames + mutants:
                try:
                    oracle_packets.append(
                        Packet.dissect(frame.data, timestamp=frame.timestamp)
                    )
                    parseable.append(frame)
                except PacketDecodeError:
                    rejected.append(frame)

            # Frames the full dissector rejects must not slip through the
            # fast path either (silently mis-parsed hostile frames would
            # poison fingerprints downstream).
            for frame in rejected:
                with pytest.raises(PacketDecodeError):
                    PacketBatch.from_frames([frame])

            batch = PacketBatch.from_frames(parseable)
            oracle = PacketBatch.from_packets(oracle_packets)
            assert len(batch) == len(parseable)
            np.testing.assert_array_equal(batch.flags, oracle.flags)
            np.testing.assert_array_equal(batch.src_macs, oracle.src_macs)
            np.testing.assert_array_equal(batch.src_ports, oracle.src_ports)
            np.testing.assert_array_equal(batch.dst_ports, oracle.dst_ports)
            np.testing.assert_array_equal(batch.sizes, oracle.sizes)
            np.testing.assert_array_equal(batch.timestamps, oracle.timestamps)
            assert batch.dst_ips == oracle.dst_ips
            np.testing.assert_array_equal(
                batch_feature_matrix(batch), batch_feature_matrix(oracle)
            )

    def test_truncated_ethernet_header_raises_like_dissect(self):
        from repro.exceptions import PacketDecodeError
        from repro.net.packet import Packet
        from repro.net.pcap import CapturedPacket

        for size in (0, 1, 7, 13):
            raw = bytes(range(size))
            with pytest.raises(PacketDecodeError):
                Packet.dissect(raw)
            with pytest.raises(PacketDecodeError):
                PacketBatch.from_frames([CapturedPacket(0.0, raw, 0)])
