"""Tests for the 27-device catalog of Table II."""

from repro.devices.catalog import (
    CONFUSABLE_FAMILIES,
    DEVICE_CATALOG,
    DEVICE_NAMES,
    TABLE_III_DEVICES,
    build_catalog,
    profile_of,
)
from repro.devices.profiles import Connectivity, StepKind

import pytest


class TestCatalogShape:
    def test_27_device_types(self):
        assert len(DEVICE_NAMES) == 27
        assert len(DEVICE_CATALOG) == 27

    def test_names_match_catalog_keys(self):
        assert set(DEVICE_NAMES) == set(DEVICE_CATALOG)

    def test_no_duplicate_names(self):
        assert len(set(DEVICE_NAMES)) == 27

    def test_build_catalog_is_reproducible(self):
        rebuilt = build_catalog()
        assert set(rebuilt) == set(DEVICE_CATALOG)
        assert rebuilt["Aria"].steps == DEVICE_CATALOG["Aria"].steps

    def test_profile_of_lookup(self):
        assert profile_of("HueBridge").vendor == "Philips"
        with pytest.raises(KeyError):
            profile_of("Nonexistent")

    def test_every_profile_has_steps_and_hostname(self):
        for profile in DEVICE_CATALOG.values():
            assert profile.step_count >= 4
            assert profile.hostname

    def test_table_iii_devices_are_the_last_ten(self):
        assert len(TABLE_III_DEVICES) == 10
        assert TABLE_III_DEVICES[0] == "D-LinkSwitch"
        assert TABLE_III_DEVICES[-1] == "iKettle2"


class TestConnectivityColumns:
    def test_wifi_devices(self):
        assert Connectivity.WIFI in DEVICE_CATALOG["Aria"].connectivity
        assert Connectivity.WIFI in DEVICE_CATALOG["TP-LinkPlugHS110"].connectivity

    def test_ethernet_devices(self):
        assert Connectivity.ETHERNET in DEVICE_CATALOG["MAXGateway"].connectivity
        assert Connectivity.ETHERNET in DEVICE_CATALOG["HueBridge"].connectivity

    def test_zigbee_and_zwave_devices(self):
        assert Connectivity.ZIGBEE in DEVICE_CATALOG["HueSwitch"].connectivity
        assert Connectivity.ZWAVE in DEVICE_CATALOG["D-LinkDoorSensor"].connectivity


class TestConfusableFamilies:
    def test_families_cover_table_iii(self):
        members = [name for family in CONFUSABLE_FAMILIES.values() for name in family]
        assert sorted(members) == sorted(TABLE_III_DEVICES)

    def test_family_labels_set_on_profiles(self):
        for family, names in CONFUSABLE_FAMILIES.items():
            for name in names:
                assert DEVICE_CATALOG[name].family == family

    def test_family_members_share_step_structure(self):
        """Devices of a confusable family must emit the same kinds of steps
        in the same order -- only sizes/probabilities may differ."""
        for names in CONFUSABLE_FAMILIES.values():
            reference = [step.kind for step in DEVICE_CATALOG[names[0]].steps]
            for name in names[1:]:
                kinds = [step.kind for step in DEVICE_CATALOG[name].steps]
                assert kinds == reference

    def test_non_family_devices_have_distinct_structures(self):
        aria = [step.kind for step in DEVICE_CATALOG["Aria"].steps]
        hue = [step.kind for step in DEVICE_CATALOG["HueBridge"].steps]
        assert aria != hue


class TestProfileRealism:
    def test_wifi_only_devices_start_with_wpa_handshake(self):
        for name in ("Aria", "WeMoSwitch", "TP-LinkPlugHS100", "SmarterCoffee"):
            assert DEVICE_CATALOG[name].steps[0].kind == StepKind.EAPOL_HANDSHAKE

    def test_wired_devices_do_not_do_wpa(self):
        for name in ("MAXGateway", "HueBridge", "D-LinkHomeHub"):
            kinds = {step.kind for step in DEVICE_CATALOG[name].steps}
            assert StepKind.EAPOL_HANDSHAKE not in kinds

    def test_every_profile_obtains_an_address_or_uses_the_hub(self):
        for name, profile in DEVICE_CATALOG.items():
            kinds = {step.kind for step in profile.steps}
            obtains_address = StepKind.DHCP_DISCOVER in kinds or StepKind.BOOTP_REQUEST in kinds
            hub_proxied = name in ("HueSwitch", "D-LinkDoorSensor")
            assert obtains_address or hub_proxied
