"""Tests for the per-device-type classifier bank."""

import pytest

from repro.exceptions import IdentificationError
from repro.identification.classifier_bank import ClassifierBank
from repro.identification.registry import FingerprintRegistry


@pytest.fixture(scope="module")
def small_registry(request):
    dataset = request.getfixturevalue("small_dataset")
    return dataset.to_registry()


class TestTraining:
    def test_one_classifier_per_type(self, small_dataset):
        registry = small_dataset.to_registry()
        bank = ClassifierBank(n_estimators=5, random_state=0)
        bank.train_from_registry(registry)
        assert bank.device_types == registry.device_types
        assert len(bank) == len(registry.device_types)

    def test_negative_subsample_ratio_respected(self, small_dataset):
        registry = small_dataset.to_registry()
        bank = ClassifierBank(negative_ratio=3.0, n_estimators=3, random_state=0)
        device_type = registry.device_types[0]
        classifier = bank.train_type(
            device_type,
            registry.fingerprints_of(device_type),
            registry.fingerprints_excluding(device_type),
        )
        assert classifier.positive_count == registry.count(device_type)
        assert classifier.negative_count == min(
            3 * registry.count(device_type),
            registry.total_fingerprints - registry.count(device_type),
        )

    def test_training_empty_registry_rejected(self):
        bank = ClassifierBank()
        with pytest.raises(IdentificationError):
            bank.train_from_registry(FingerprintRegistry())

    def test_training_without_positives_rejected(self, small_dataset):
        registry = small_dataset.to_registry()
        bank = ClassifierBank()
        with pytest.raises(IdentificationError):
            bank.train_type("X", [], registry.fingerprints_excluding("Aria"))

    def test_training_without_negatives_rejected(self, small_dataset):
        registry = small_dataset.to_registry()
        bank = ClassifierBank()
        with pytest.raises(IdentificationError):
            bank.train_type("Aria", registry.fingerprints_of("Aria"), [])

    def test_incremental_add_does_not_touch_existing(self, small_dataset):
        registry = small_dataset.to_registry()
        types = registry.device_types
        bank = ClassifierBank(n_estimators=3, random_state=0)
        first_type, second_type = types[0], types[1]
        bank.train_type(
            first_type,
            registry.fingerprints_of(first_type),
            registry.fingerprints_excluding(first_type),
        )
        existing = bank.classifier_of(first_type)
        bank.train_type(
            second_type,
            registry.fingerprints_of(second_type),
            registry.fingerprints_excluding(second_type),
        )
        assert bank.classifier_of(first_type) is existing

    def test_remove_type(self, small_dataset):
        registry = small_dataset.to_registry()
        bank = ClassifierBank(n_estimators=3, random_state=0)
        bank.train_from_registry(registry)
        target = registry.device_types[0]
        bank.remove_type(target)
        assert target not in bank
        with pytest.raises(IdentificationError):
            bank.classifier_of(target)


class TestMatching:
    def test_own_type_usually_accepted(self, small_dataset, trained_identifier):
        bank = trained_identifier.bank
        hits = 0
        fingerprints = small_dataset.of_type("Aria")
        for fingerprint in fingerprints:
            if "Aria" in bank.matching_types(fingerprint):
                hits += 1
        assert hits / len(fingerprints) >= 0.7

    def test_acceptance_probabilities_in_range(self, small_dataset, trained_identifier):
        fingerprint = small_dataset.fingerprints[0]
        probabilities = trained_identifier.bank.acceptance_probabilities(fingerprint)
        assert set(probabilities) == set(trained_identifier.bank.device_types)
        assert all(0.0 <= value <= 1.0 for value in probabilities.values())

    def test_unknown_classifier_lookup_rejected(self, trained_identifier):
        with pytest.raises(IdentificationError):
            trained_identifier.bank.classifier_of("NotADevice")
