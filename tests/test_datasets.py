"""Tests for dataset construction (synthetic and pcap ingestion) and storage."""

import numpy as np
import pytest

from repro.datasets.builder import DatasetBuilder, FingerprintDataset, generate_fingerprint_dataset
from repro.datasets.storage import load_fingerprints, save_fingerprints
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import DatasetError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import FEATURE_COUNT
from repro.net.pcap import write_pcap


class TestSyntheticBuilder:
    def test_paper_shape(self):
        dataset = generate_fingerprint_dataset(runs_per_type=2, device_names=["Aria", "HueBridge"], seed=0)
        assert len(dataset) == 4
        assert dataset.counts() == {"Aria": 2, "HueBridge": 2}

    def test_default_covers_all_27_types(self):
        dataset = generate_fingerprint_dataset(runs_per_type=2, seed=0)
        assert len(dataset.device_types) == 27
        assert len(dataset) == 54

    def test_unknown_device_rejected(self):
        builder = DatasetBuilder(runs_per_type=2)
        with pytest.raises(DatasetError):
            builder.build_synthetic(["NoSuchDevice"])

    def test_zero_runs_rejected(self):
        with pytest.raises(DatasetError):
            DatasetBuilder(runs_per_type=0).build_synthetic(["Aria"])

    def test_reproducible_with_seed(self):
        first = generate_fingerprint_dataset(runs_per_type=2, device_names=["Aria"], seed=11)
        second = generate_fingerprint_dataset(runs_per_type=2, device_names=["Aria"], seed=11)
        assert np.array_equal(first.fingerprints[0].vectors, second.fingerprints[0].vectors)

    def test_metadata_recorded(self):
        dataset = generate_fingerprint_dataset(runs_per_type=2, device_names=["Aria"], seed=3)
        assert dataset.metadata["source"] == "synthetic"
        assert dataset.metadata["runs_per_type"] == 2


class TestDatasetOperations:
    def test_subset_and_registry(self, small_dataset):
        subset = small_dataset.subset([0, 1, 2])
        assert len(subset) == 3
        registry = small_dataset.to_registry([0, 1])
        assert registry.total_fingerprints == 2

    def test_fixed_matrix_shape(self, small_dataset):
        matrix = small_dataset.fixed_matrix()
        assert matrix.shape == (len(small_dataset), 12 * FEATURE_COUNT)

    def test_labels_and_of_type(self, small_dataset):
        assert len(small_dataset.labels) == len(small_dataset)
        assert all(f.device_type == "Aria" for f in small_dataset.of_type("Aria"))

    def test_validation_catches_empty(self):
        with pytest.raises(DatasetError):
            FingerprintDataset().validate()

    def test_validation_catches_unlabelled(self):
        row = [0] * FEATURE_COUNT
        dataset = FingerprintDataset(fingerprints=[Fingerprint.from_feature_rows([row])])
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_validation_catches_singleton_class(self):
        row = [0] * FEATURE_COUNT
        row[18] = 1
        dataset = FingerprintDataset(
            fingerprints=[
                Fingerprint.from_feature_rows([row], device_type="A"),
                Fingerprint.from_feature_rows([row], device_type="A"),
                Fingerprint.from_feature_rows([row], device_type="B"),
            ]
        )
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_empty_fixed_matrix_rejected(self):
        with pytest.raises(DatasetError):
            FingerprintDataset().fixed_matrix()


class TestPcapIngestion:
    def test_directory_layout(self, tmp_path):
        simulator = SetupTrafficSimulator(seed=21)
        for name in ("Aria", "HueBridge"):
            type_dir = tmp_path / name
            type_dir.mkdir()
            for run in range(2):
                trace = simulator.simulate(DEVICE_CATALOG[name])
                write_pcap(type_dir / f"setup_{run}.pcap", trace.packets)
        dataset = DatasetBuilder().build_from_pcap_directory(tmp_path)
        assert dataset.counts() == {"Aria": 2, "HueBridge": 2}
        assert dataset.metadata["source"] == "pcap"

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            DatasetBuilder().build_from_pcap_directory(tmp_path / "nope")

    def test_pcap_and_synthetic_fingerprints_agree(self, tmp_path):
        """Extracting from a written pcap must equal extracting in memory."""
        simulator = SetupTrafficSimulator(seed=33)
        trace = simulator.simulate(DEVICE_CATALOG["WeMoSwitch"])
        direct = Fingerprint.from_packets(trace.packets, device_type="WeMoSwitch")

        type_dir = tmp_path / "WeMoSwitch"
        type_dir.mkdir()
        write_pcap(type_dir / "run.pcap", trace.packets)
        # A second run so validation (>= 2 per type) passes.
        write_pcap(type_dir / "run2.pcap", simulator.simulate(DEVICE_CATALOG["WeMoSwitch"]).packets)
        dataset = DatasetBuilder().build_from_pcap_directory(tmp_path)
        from_pcap = dataset.fingerprints[0]
        assert np.array_equal(from_pcap.vectors, direct.vectors)


class TestStorage:
    def test_roundtrip(self, tmp_path, small_dataset):
        path = tmp_path / "fingerprints.json"
        save_fingerprints(path, small_dataset)
        loaded = load_fingerprints(path)
        assert len(loaded) == len(small_dataset)
        assert loaded.device_types == small_dataset.device_types
        assert np.array_equal(loaded.fingerprints[0].vectors, small_dataset.fingerprints[0].vectors)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_fingerprints(tmp_path / "missing.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_fingerprints(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "fingerprints": []}')
        with pytest.raises(DatasetError):
            load_fingerprints(path)
