"""Reproducibility suite: verdicts are deterministic across calls,
save/load round-trips, processes and ``PYTHONHASHSEED`` values.

This is the regression net for the borderline-fingerprint bug: the
discrimination stage used to sample references from a shared mutable
generator, so a fingerprint near the novelty threshold could flip between
``unknown`` and a near-miss type across calls (and two gateways serving
one bundle disagreed after divergent traffic histories).  CI runs this
file twice under different ``PYTHONHASHSEED`` values (the determinism
gate); the subprocess tests below additionally compare verdicts across
*fresh interpreters* with differing hash seeds inside a single run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.identification.identifier import DeviceTypeIdentifier
from repro.identification.model_store import load_identifier, save_identifier

REPEATED_CALLS = 100

#: The replay script a fresh interpreter runs: load the bundle, identify
#: the scripted probe traffic, print one canonical JSON document of every
#: verdict (type, matched types, scores, provenance).  Any
#: hash-seed-dependent ordering or selection anywhere in the pipeline
#: shows up as a byte diff between two subprocess runs.
REPLAY_SCRIPT = """
import json, sys
import numpy as np
from repro.features.fingerprint import Fingerprint
from repro.identification.model_store import load_identifier

bundle_path, probes_path = sys.argv[1], sys.argv[2]
archive = np.load(probes_path)
vectors, lengths = archive["vectors"], archive["lengths"]
probes, offset = [], 0
for length in lengths:
    probes.append(Fingerprint(vectors=vectors[offset : offset + int(length)]))
    offset += int(length)

identifier = load_identifier(bundle_path)
verdicts = []
for result in identifier.identify_many(probes):
    verdicts.append(
        {
            "device_type": result.device_type,
            "matched_types": list(result.matched_types),
            "scores": [
                [
                    score.device_type,
                    score.score,
                    score.comparisons,
                    list(score.reference_indices),
                    score.selection_seed,
                ]
                for score in result.discrimination_scores
            ],
        }
    )
print(json.dumps(verdicts, sort_keys=True))
"""


def _verdict_signature(result):
    """Everything a verdict consumer can observe, as a comparable value."""
    return (
        result.device_type,
        result.matched_types,
        result.discrimination_scores,
    )


@pytest.fixture(scope="module")
def probes(small_dataset):
    """Scripted replay traffic: every fingerprint of the small dataset.

    Includes the confusable-family fingerprints (multi-match, borderline)
    alongside clean single-match and unknown cases.
    """
    return list(small_dataset.fingerprints)


class TestRepeatedCalls:
    def test_hundred_calls_identical(self, trained_identifier, probes):
        """The acceptance headline: 100 repeated identify() calls agree."""
        baseline = [_verdict_signature(r) for r in trained_identifier.identify_many(probes)]
        # Borderline coverage: the replay must include multi-match
        # fingerprints, otherwise this test proves nothing about the
        # discrimination stage.
        assert any(len(matched) > 1 for _, matched, _ in baseline)

        borderline = [
            index for index, (_, matched, _) in enumerate(baseline) if len(matched) > 1
        ]
        for _ in range(REPEATED_CALLS):
            for index in borderline:
                result = trained_identifier.identify(probes[index])
                assert _verdict_signature(result) == baseline[index]

    def test_batch_and_single_paths_agree(self, trained_identifier, probes):
        batched = trained_identifier.identify_many(probes)
        for probe, from_batch in zip(probes, batched):
            single = trained_identifier.identify(probe)
            assert _verdict_signature(single) == _verdict_signature(from_batch)

    def test_call_order_does_not_leak_between_fingerprints(
        self, trained_identifier, probes
    ):
        """Identifying A must not change B's verdict (no shared rng state)."""
        forward = [_verdict_signature(r) for r in trained_identifier.identify_many(probes)]
        backward = [
            _verdict_signature(trained_identifier.identify(probe))
            for probe in reversed(probes)
        ]
        assert forward == list(reversed(backward))


class TestSaveLoadRoundTrip:
    def test_v3_round_trip_verdicts_bit_identical(
        self, trained_identifier, probes, tmp_path
    ):
        bundle = tmp_path / "identifier.npz"
        save_identifier(bundle, trained_identifier)
        loaded = load_identifier(bundle)

        original = trained_identifier.identify_many(probes)
        reloaded = loaded.identify_many(probes)
        for first, second in zip(original, reloaded):
            assert _verdict_signature(first) == _verdict_signature(second)

    def test_round_trip_after_incremental_learning(self, small_dataset, tmp_path):
        """The persisted revision keeps the draw salt aligned after reload."""
        registry = small_dataset.to_registry()
        identifier = DeviceTypeIdentifier.train(registry, n_estimators=5, random_state=0)
        donor_type = identifier.known_device_types[0]
        donors = [
            np.asarray(fingerprint.vectors)
            for fingerprint in small_dataset.fingerprints
            if fingerprint.device_type == donor_type
        ][:3]
        from repro.features.fingerprint import Fingerprint

        renamed = [
            Fingerprint(vectors=vectors, device_type="RelabelledDevice")
            for vectors in donors
        ]
        identifier.add_device_type("RelabelledDevice", renamed)
        assert identifier.revision == 1

        bundle = tmp_path / "learned.npz"
        save_identifier(bundle, identifier)
        loaded = load_identifier(bundle)
        assert loaded.revision == 1

        probes = small_dataset.fingerprints[::4]
        for first, second in zip(
            identifier.identify_many(probes), loaded.identify_many(probes)
        ):
            assert _verdict_signature(first) == _verdict_signature(second)


class TestCrossProcess:
    def _replay(self, bundle: Path, probes_file: Path, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", REPLAY_SCRIPT, str(bundle), str(probes_file)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        return completed.stdout

    @pytest.fixture(scope="class")
    def replay_inputs(self, trained_identifier, probes, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("replay")
        bundle = tmp_path / "identifier.npz"
        save_identifier(bundle, trained_identifier)
        vectors = np.concatenate([probe.vectors for probe in probes], axis=0)
        lengths = np.array([probe.packet_count for probe in probes], dtype=np.int64)
        probes_file = tmp_path / "probes.npz"
        np.savez(probes_file, vectors=vectors, lengths=lengths)
        return bundle, probes_file

    def test_two_processes_two_hash_seeds_byte_identical(self, replay_inputs):
        """The seed matrix: fresh interpreters with different hash seeds
        must print byte-identical verdict streams."""
        bundle, probes_file = replay_inputs
        first = self._replay(bundle, probes_file, hash_seed="0")
        second = self._replay(bundle, probes_file, hash_seed="4242")
        assert first == second
        verdicts = json.loads(first)
        assert len(verdicts) > 0
        # Borderline coverage crossed the process boundary too.
        assert any(len(verdict["matched_types"]) > 1 for verdict in verdicts)

    def test_subprocess_agrees_with_in_process_verdicts(
        self, replay_inputs, trained_identifier, probes
    ):
        bundle, probes_file = replay_inputs
        replayed = json.loads(self._replay(bundle, probes_file, hash_seed="1"))
        local = trained_identifier.identify_many(probes)
        assert len(replayed) == len(local)
        for remote, result in zip(replayed, local):
            assert remote["device_type"] == result.device_type
            assert tuple(remote["matched_types"]) == result.matched_types
            assert len(remote["scores"]) == len(result.discrimination_scores)
            for row, score in zip(remote["scores"], result.discrimination_scores):
                assert row[0] == score.device_type
                assert row[1] == score.score
                assert tuple(row[3]) == score.reference_indices
                assert row[4] == score.selection_seed


# --------------------------------------------------------------------- #
# The columnar datapath is inside the determinism contract too: the
# vectorised distance kernel, the splitmix reference draw and the batched
# pipeline must reproduce the scalar path's verdicts under any hash seed
# (CI runs this file under two PYTHONHASHSEED values).
# --------------------------------------------------------------------- #
class TestBatchKernelDeterminism:
    def test_batched_kernel_bitwise_equals_scalar_kernel(self, trained_identifier, probes):
        import copy
        import dataclasses

        assert trained_identifier.discriminator.kernel == "batched"
        scalar = copy.copy(trained_identifier)
        scalar.discriminator = dataclasses.replace(
            trained_identifier.discriminator, kernel="scalar"
        )
        fast_results = trained_identifier.identify_many(probes)
        slow_results = scalar.identify_many(probes)
        for fast, slow in zip(fast_results, slow_results):
            assert _verdict_signature(fast) == _verdict_signature(slow)

    def test_splitmix_draw_is_pinned(self):
        """The draw is a specification, not an implementation detail:
        these literals must survive every numpy and Python upgrade
        (schema-v4 bundles replay against them)."""
        from repro.distance.damerau_levenshtein import splitmix64, splitmix_subset

        assert splitmix64(1)[1] == 10451216379200822465
        assert splitmix_subset(12345, population=10, size=5) == (1, 2, 3, 4, 7)
        assert splitmix_subset(0, population=40, size=5) == (1, 15, 19, 21, 35)

    def test_batched_pipeline_replays_byte_identical(self, trained_identifier):
        from repro.streaming import (
            BatchDispatcher,
            IdentificationCache,
            ShardedFingerprintAssembler,
            SimulatedSource,
            StreamingPipeline,
        )

        def drive():
            delivered = []
            StreamingPipeline(
                source=SimulatedSource(devices=10, seed=31),
                dispatcher=BatchDispatcher(
                    trained_identifier, max_batch=4, cache=IdentificationCache(capacity=64)
                ),
                assembler=ShardedFingerprintAssembler(shards=4),
                on_identified=delivered.append,
            ).run_batched(batch_size=64)
            return [
                (str(item.mac), _verdict_signature(item.result), item.fingerprint.vectors.tobytes())
                for item in delivered
            ]

        assert drive() == drive()


# --------------------------------------------------------------------- #
# The observability surface is part of the determinism contract: two
# identically-driven gateways must produce byte-identical evidence
# ledgers and byte-identical (timing-free) metric snapshots.
# --------------------------------------------------------------------- #
class TestObservabilityDeterminism:
    @staticmethod
    def _drive_observed_pipeline(identifier, ledger_path):
        from repro.devices.catalog import DEVICE_CATALOG
        from repro.devices.simulator import SetupTrafficSimulator
        from repro.net.addresses import MACAddress
        from repro.obs import Observability, VerdictLedger
        from repro.streaming import (
            BatchDispatcher,
            IdentificationCache,
            ShardedFingerprintAssembler,
            SimulatedSource,
            StreamingPipeline,
            replay_trace,
        )

        simulator = SetupTrafficSimulator(seed=5)
        traces = [
            simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
            for index, name in enumerate(("Aria", "HueBridge", "EdnetCam"))
        ]
        quiet = max(p.timestamp for trace in traces for p in trace.packets)
        # A replayed clone so the LRU cache path (from_cache records) runs.
        clone_mac = MACAddress.from_string("02:0d:e7:00:00:01")
        traces.append(replay_trace(traces[0], clone_mac, quiet + 40.0))

        hub = Observability(ledger=VerdictLedger(ledger_path))
        pipeline = StreamingPipeline(
            source=SimulatedSource(traces=traces),
            # max_batch=1: each fingerprint is identified (and cached) the
            # moment it emits, so the clone's lookup always finds the
            # original regardless of shard emission order -- the cache-hit
            # path (from_cache verdict records) is part of the compared
            # bytes.
            dispatcher=BatchDispatcher(
                identifier, max_batch=1, cache=IdentificationCache(capacity=32)
            ),
            assembler=ShardedFingerprintAssembler(shards=4),
            on_identified=lambda item: None,
            observability=hub,
        )
        pipeline.run()
        snapshot = hub.snapshot(include_timings=False)
        hub.ledger.close()
        return snapshot

    def test_snapshots_and_ledgers_byte_identical(self, trained_identifier, tmp_path):
        """Two identically-driven pipelines: same snapshot bytes, same
        ledger bytes (timings excluded -- wall clock is the one
        legitimately nondeterministic input)."""
        first_path = tmp_path / "one" / "ledger.ndjson"
        second_path = tmp_path / "two" / "ledger.ndjson"
        first = self._drive_observed_pipeline(trained_identifier, first_path)
        second = self._drive_observed_pipeline(trained_identifier, second_path)

        first_json = json.dumps(first, sort_keys=True)
        second_json = json.dumps(second, sort_keys=True)
        assert first_json == second_json
        # The filter left real work visible and no wall-clock keys behind.
        assert first["ledger.verdict_records"] == 4
        assert first["identification_cache.hits"] >= 1
        assert not any("seconds" in key for key in first)

        assert first_path.read_bytes() == second_path.read_bytes()
