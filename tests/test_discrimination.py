"""Tests for the edit-distance discrimination stage."""

import numpy as np
import pytest

from repro.distance.discrimination import (
    RANDOM_SELECTION,
    EditDistanceDiscriminator,
    selection_seed,
)
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import FEATURE_COUNT


def fingerprint_from_sizes(sizes, device_type=None):
    rows = []
    for size in sizes:
        row = [0] * FEATURE_COUNT
        row[18] = size
        rows.append(row)
    return Fingerprint.from_feature_rows(rows, device_type=device_type, deduplicate=False)


class TestScoreType:
    def test_zero_score_for_identical_references(self):
        target = fingerprint_from_sizes([1, 2, 3, 4])
        references = [fingerprint_from_sizes([1, 2, 3, 4]) for _ in range(5)]
        discriminator = EditDistanceDiscriminator()
        score = discriminator.score_type(target, "typeA", references)
        assert score.score == 0.0
        assert score.comparisons == 5

    def test_score_bounded_by_reference_count(self):
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([9, 8, 7]) for _ in range(5)]
        discriminator = EditDistanceDiscriminator()
        score = discriminator.score_type(target, "typeA", references)
        assert 0.0 <= score.score <= 5.0

    def test_uses_at_most_references_per_type(self):
        target = fingerprint_from_sizes([1, 2])
        references = [fingerprint_from_sizes([1, 2]) for _ in range(20)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        assert discriminator.score_type(target, "t", references).comparisons == 5

    def test_fewer_references_than_requested(self):
        target = fingerprint_from_sizes([1, 2])
        references = [fingerprint_from_sizes([1, 2])] * 2
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        assert discriminator.score_type(target, "t", references).comparisons == 2

    def test_empty_references_rejected(self):
        discriminator = EditDistanceDiscriminator()
        with pytest.raises(IdentificationError):
            discriminator.score_type(fingerprint_from_sizes([1]), "t", [])

    def test_invalid_reference_count(self):
        with pytest.raises(IdentificationError):
            EditDistanceDiscriminator(references_per_type=0)


class TestDiscriminate:
    def test_picks_closest_type(self):
        target = fingerprint_from_sizes([1, 2, 3, 4, 5])
        candidates = {
            "near": [fingerprint_from_sizes([1, 2, 3, 4, 6]) for _ in range(5)],
            "far": [fingerprint_from_sizes([9, 9, 9]) for _ in range(5)],
        }
        discriminator = EditDistanceDiscriminator()
        winner, scores = discriminator.discriminate(target, candidates)
        assert winner == "near"
        assert scores[0].device_type == "near"
        assert scores[0].score < scores[1].score

    def test_scores_sorted_ascending(self):
        target = fingerprint_from_sizes([1, 2, 3])
        candidates = {
            "a": [fingerprint_from_sizes([1, 2, 3])],
            "b": [fingerprint_from_sizes([4, 5, 6])],
            "c": [fingerprint_from_sizes([1, 2, 9])],
        }
        discriminator = EditDistanceDiscriminator()
        _, scores = discriminator.discriminate(target, candidates)
        values = [score.score for score in scores]
        assert values == sorted(values)

    def test_no_candidates_rejected(self):
        discriminator = EditDistanceDiscriminator()
        with pytest.raises(IdentificationError):
            discriminator.discriminate(fingerprint_from_sizes([1]), {})

    def test_single_candidate(self):
        target = fingerprint_from_sizes([1, 2])
        discriminator = EditDistanceDiscriminator()
        winner, scores = discriminator.discriminate(target, {"only": [fingerprint_from_sizes([3, 4])]})
        assert winner == "only"
        assert len(scores) == 1

    def test_exact_ties_break_lexicographically(self):
        """Documented contract: equal scores order by device_type, never by
        candidate-dict insertion order."""
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([1, 2, 3])]
        for candidates in (
            {"zebra": references, "alpha": references},
            {"alpha": references, "zebra": references},
        ):
            discriminator = EditDistanceDiscriminator()
            winner, scores = discriminator.discriminate(target, candidates)
            assert winner == "alpha"
            assert [score.device_type for score in scores] == ["alpha", "zebra"]
            assert scores[0].score == scores[1].score


class TestDeterministicSelection:
    def test_same_fingerprint_meets_same_references(self):
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(20)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        first = discriminator.score_type(target, "t", references)
        for _ in range(25):
            again = discriminator.score_type(target, "t", references)
            assert again.reference_indices == first.reference_indices
            assert again.selection_seed == first.selection_seed
            assert again.score == first.score

    def test_call_history_does_not_change_the_draw(self):
        """Unlike the shared-generator draw, scoring other fingerprints in
        between must not perturb this fingerprint's subset."""
        target = fingerprint_from_sizes([1, 2, 3])
        other = fingerprint_from_sizes([7, 8, 9])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(20)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        first = discriminator.score_type(target, "t", references)
        for _ in range(5):
            discriminator.score_type(other, "t", references)
        assert discriminator.score_type(target, "t", references) == first

    def test_two_discriminator_instances_agree(self):
        """No per-instance state: two gateways draw identical subsets."""
        target = fingerprint_from_sizes([4, 5, 6])
        references = [fingerprint_from_sizes([size]) for size in range(30)]
        one = EditDistanceDiscriminator(references_per_type=5)
        two = EditDistanceDiscriminator(references_per_type=5)
        assert one.score_type(target, "t", references) == two.score_type(
            target, "t", references
        )

    def test_salt_rerandomises_the_draw(self):
        """A registry change (revision bump) must re-draw the subset."""
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(50)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        subsets = {
            discriminator.score_type(target, "t", references, salt=salt).reference_indices
            for salt in range(8)
        }
        assert len(subsets) > 1

    def test_pool_growth_rerandomises_the_draw(self):
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(50)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        before = discriminator.score_type(target, "t", references)
        grown = references + [fingerprint_from_sizes([99])]
        after = discriminator.score_type(target, "t", grown)
        assert before.selection_seed != after.selection_seed

    def test_provenance_recorded(self):
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(20)]
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        score = discriminator.score_type(target, "t", references, salt=3)
        assert len(score.reference_indices) == 5
        assert score.reference_indices == tuple(sorted(score.reference_indices))
        assert all(0 <= index < 20 for index in score.reference_indices)
        assert score.selection_seed == selection_seed(target, "t", 20, 5, salt=3)

    def test_whole_pool_has_no_draw_seed(self):
        target = fingerprint_from_sizes([1, 2])
        references = [fingerprint_from_sizes([1, 2])] * 3
        discriminator = EditDistanceDiscriminator(references_per_type=5)
        score = discriminator.score_type(target, "t", references)
        assert score.reference_indices == (0, 1, 2)
        assert score.selection_seed is None

    def test_seed_independent_of_mac_and_label(self):
        rows = np.zeros((3, FEATURE_COUNT), dtype=np.int64)
        rows[:, 18] = (1, 2, 3)
        one = Fingerprint(vectors=rows, device_mac="02:00:00:00:00:01", device_type="a")
        two = Fingerprint(vectors=rows.copy(), device_mac="02:00:00:00:00:02")
        assert selection_seed(one, "t", 20, 5) == selection_seed(two, "t", 20, 5)

    def test_invalid_selection_mode_rejected(self):
        with pytest.raises(IdentificationError):
            EditDistanceDiscriminator(selection="sometimes")

    def test_rng_with_deterministic_selection_warns_and_is_dropped(self):
        """A pre-migration caller seeding the old shared generator is told
        about the semantics change instead of silently losing it."""
        with pytest.warns(RuntimeWarning, match="ignores rng"):
            discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        assert discriminator.rng is None
        assert discriminator.is_deterministic


class TestRandomSelectionMode:
    def test_random_mode_draws_from_shared_generator(self):
        """The paper-style ablation mode: subsets drift with call history."""
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([size, size + 1]) for size in range(50)]
        discriminator = EditDistanceDiscriminator(
            references_per_type=5, selection=RANDOM_SELECTION, rng=np.random.default_rng(0)
        )
        subsets = {
            discriminator.score_type(target, "t", references).reference_indices
            for _ in range(10)
        }
        assert len(subsets) > 1
        assert discriminator.score_type(target, "t", references).selection_seed is None

    def test_random_mode_gets_default_rng(self):
        discriminator = EditDistanceDiscriminator(selection=RANDOM_SELECTION)
        assert discriminator.rng is not None
